//! # partitionable-services
//!
//! A from-scratch Rust reproduction of *Partitionable Services: A
//! Framework for Seamlessly Adapting Distributed Applications to
//! Heterogeneous Environments* (Ivan, Harman, Allen, Karamcheti,
//! HPDC 2002).
//!
//! This facade crate re-exports every workspace crate under one stable
//! namespace:
//!
//! | module | crate | what it is |
//! |---|---|---|
//! | [`spec`] | `ps-spec` | declarative service specifications (§3.1) |
//! | [`net`] | `ps-net` | the network model + BRITE-style generators (§3.3) |
//! | [`sim`] | `ps-sim` | the deterministic discrete-event substrate (§4) |
//! | [`planner`] | `ps-planner` | linkage enumeration + mapping search (§3.3) |
//! | [`smock`] | `ps-smock` | the Smock run-time (§3.2) |
//! | [`mail`] | `ps-mail` | the security-sensitive mail case study (§2, §4) |
//! | [`drbac`] | `ps-drbac` | trust management (§6 future work) |
//! | [`monitor`] | `ps-monitor` | monitoring + re-planning (§6 future work) |
//! | [`trace`] | `ps-trace` | sim-time-aware tracing + metrics (observability) |
//! | [`core`] | `ps-core` | the assembled [`core::Framework`] |
//!
//! ```
//! use partitionable_services::mail::{mail_spec, mail_translator};
//! use partitionable_services::net::default_case_study;
//! use partitionable_services::planner::{Planner, ServiceRequest};
//!
//! // Reproduce the paper's New York deployment decision in five lines.
//! let cs = default_case_study();
//! let planner = Planner::new(mail_spec());
//! let request = ServiceRequest::new("ClientInterface", cs.ny_client)
//!     .pin("MailServer", cs.mail_server)
//!     .require("TrustLevel", 4i64);
//! let plan = planner.plan(&cs.network, &mail_translator(), &request).unwrap();
//! assert_eq!(plan.graph.to_string(), "MailClient -> MailServer");
//! ```

pub use ps_core as core;
pub use ps_drbac as drbac;
pub use ps_mail as mail;
pub use ps_monitor as monitor;
pub use ps_net as net;
pub use ps_planner as planner;
pub use ps_sim as sim;
pub use ps_smock as smock;
pub use ps_spec as spec;
pub use ps_trace as trace;
