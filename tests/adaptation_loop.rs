//! The full adaptation loop the paper's title promises, end to end and
//! mid-workload: clients run against a deployment, the environment
//! changes underneath them, the monitor detects it, the planner computes
//! a better deployment, the run-time redeploys — and the *same* client
//! proxy keeps working, faster, without the application noticing.

use partitionable_services::core::Framework;
use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::workload::{ClusterConfig, ClusterDriver, OpKind};
use partitionable_services::mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use partitionable_services::monitor::NetworkMonitor;
use partitionable_services::net::casestudy::default_case_study;
use partitionable_services::planner::ServiceRequest;
use partitionable_services::sim::SimDuration;
use partitionable_services::smock::{CoherencePolicy, ServiceRegistration};
use partitionable_services::spec::Behavior;

#[test]
fn degraded_link_triggers_redeployment_clients_keep_running() {
    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(
        &mut fw.server.registry,
        Keyring::new(21),
        CoherencePolicy::None,
    );
    fw.register_service(ServiceRegistration::new(mail_spec()));
    fw.install_primary("mail", MAIL_SERVER, cs.mail_server)
        .unwrap();

    // Initial conditions: San Diego is a fully trusted branch (trust 5,
    // so the (1,3)-windowed view server cannot be installed there) and
    // the NY-SD WAN is a fast *secure* leased line. The planner deploys
    // the simplest thing — a direct MailClient -> MailServer connection.
    let wan = cs
        .network
        .link_between(cs.ny_gateway, cs.sd_gateway)
        .unwrap()
        .id;
    let sd_nodes: Vec<_> = cs.network.site_nodes("SanDiego");
    for &n in &sd_nodes {
        let mut creds = fw.world.network().node(n).credentials.clone();
        creds.set("TrustRating", 5i64);
        fw.world.update_node_credentials(n, creds);
    }
    {
        let l = fw.world.network().link(wan).clone();
        fw.world
            .update_link(wan, SimDuration::from_millis(5), l.bandwidth_bps);
        let mut creds = l.credentials.clone();
        creds.set("Secure", true);
        fw.world.update_link_credentials(wan, creds);
    }

    let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let initial = fw.connect("mail", &request).unwrap();
    assert_eq!(
        initial.plan.graph.to_string(),
        "MailClient -> MailServer",
        "fast secure WAN: no cache needed\n{}",
        initial.plan
    );

    // Monitor watches from this baseline.
    let mut monitor = NetworkMonitor::new(fw.world.network().clone());

    // A long-running client workload.
    let driver = {
        let d = ClusterDriver::new(ClusterConfig {
            sends: 400,
            receives: 0,
            ..ClusterConfig::paper("alice", "bob", 1 << 40)
        });
        let id = fw.world.instantiate(
            "driver",
            cs.sd_client,
            Default::default(),
            Behavior::new(),
            Box::new(d),
            initial.ready_at,
        );
        fw.world.wire(id, vec![initial.root]);
        id
    };

    // Phase 1: run a while under good conditions.
    let phase1_end = initial.ready_at + SimDuration::from_millis(600);
    fw.run_until(phase1_end);

    // The provider's leased line is cut over to the public internet
    // (400 ms, 8 Mb/s, insecure), and the branch is simultaneously
    // demoted to standard branch trust — which *enables* the cache.
    fw.world
        .update_link(wan, SimDuration::from_millis(400), 8e6);
    {
        let mut creds = fw.world.network().link(wan).credentials.clone();
        creds.set("Secure", false);
        fw.world.update_link_credentials(wan, creds);
    }
    for &n in &sd_nodes {
        let mut creds = fw.world.network().node(n).credentials.clone();
        creds.set("TrustRating", 3i64);
        fw.world.update_node_credentials(n, creds);
    }

    // Phase 2: let the client suffer for a bit.
    fw.run_until(phase1_end + SimDuration::from_millis(3000));

    // The monitor notices; the framework replans and redeploys. The
    // MailClient instance is reused, so the running driver's wiring is
    // untouched — the chain behind it changes.
    let changes = monitor.observe(fw.world.network());
    assert!(
        changes.len() >= 2,
        "latency/bandwidth + credential changes detected: {changes:?}"
    );
    let (adapted, _retired) = fw.reconnect("mail", &request, &initial).unwrap();
    assert_eq!(
        adapted.plan.graph.to_string(),
        "MailClient -> ViewMailServer -> Encryptor -> Decryptor -> MailServer",
        "insecure slow WAN: cache + crypto deployed\n{}",
        adapted.plan
    );
    assert_eq!(
        adapted.root, initial.root,
        "the client-facing instance is the same object"
    );

    // Phase 3: drain the workload under the adapted deployment.
    fw.run();

    let d = fw
        .world
        .logic_mut(driver)
        .as_any()
        .unwrap()
        .downcast_ref::<ClusterDriver>()
        .unwrap();
    assert!(d.is_done(), "the client never noticed the redeployment");
    assert_eq!(d.denied, 0);

    // Latency history tells the adaptation story: fast, then degraded,
    // then recovered (sends absorbed by the local cache).
    let sends: Vec<f64> = d
        .completed
        .iter()
        .filter(|(k, _)| *k == OpKind::Send)
        .map(|(_, ms)| *ms)
        .collect();
    assert_eq!(sends.len(), 400);
    // ~15 ms per op in phase 1: the first ~20 ops complete well inside
    // the 600 ms window.
    let early: f64 = sends[2..20].iter().sum::<f64>() / 18.0;
    let late: f64 = sends[sends.len() - 40..].iter().sum::<f64>() / 40.0;
    let degraded = sends.iter().cloned().fold(0.0f64, f64::max);
    assert!(early < 40.0, "phase 1 is fast: {early:.2} ms");
    assert!(
        degraded > 700.0,
        "phase 2 suffered the degraded WAN: {degraded:.1} ms"
    );
    assert!(
        late < 10.0,
        "phase 3 recovered via the deployed cache: {late:.2} ms"
    );
}
