//! Monitoring + re-planning integration (Section 6, future work #1).

use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::{mail_spec, mail_translator};
use partitionable_services::monitor::{
    affected_edges, plan_delta, NetworkMonitor, ReplanDecision, Replanner,
};
use partitionable_services::net::casestudy::default_case_study;
use partitionable_services::planner::{Planner, PlannerConfig, ServiceRequest};
use partitionable_services::sim::SimDuration;

fn sd_request(cs: &partitionable_services::net::CaseStudy) -> ServiceRequest {
    ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(2.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64)
}

#[test]
fn small_changes_keep_the_plan() {
    let cs = default_case_study();
    let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
    let request = sd_request(&cs);
    let plan = planner
        .plan(&cs.network, &mail_translator(), &request)
        .unwrap();

    let mut degraded = cs.network.clone();
    let wan = degraded
        .link_between(cs.ny_gateway, cs.sd_gateway)
        .unwrap()
        .id;
    degraded.link_mut(wan).latency = SimDuration::from_millis(450);

    let replanner = Replanner::new(planner);
    let decision = replanner.evaluate(&degraded, &mail_translator(), &request, &plan);
    assert!(matches!(decision, ReplanDecision::Keep));
}

#[test]
fn credential_loss_invalidates_and_redeploys() {
    let cs = default_case_study();
    let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
    let request = sd_request(&cs);
    let plan = planner
        .plan(&cs.network, &mail_translator(), &request)
        .unwrap();

    // The client's own node keeps its trust, but the rest of San Diego
    // drops to partner level: the cache must stay on the client node, so
    // nothing changes there — instead degrade only the node hosting the
    // cache... which is the client node. So degrade everything else and
    // raise the client node's trust out of the view's window instead.
    let mut changed = cs.network.clone();
    for id in changed.node_ids().collect::<Vec<_>>() {
        if changed.node(id).site == "SanDiego" {
            changed.node_mut(id).credentials.set("TrustRating", 5i64);
        }
    }
    // Trust 5 is outside the ViewMailServer's (1,3) installation window:
    // the deployed cache is no longer legal anywhere in San Diego.
    let replanner = Replanner::new(planner);
    let decision = replanner.evaluate(&changed, &mail_translator(), &request, &plan);
    match decision {
        ReplanDecision::Redeploy {
            plan: new_plan,
            delta,
        } => {
            assert!(
                new_plan.placement_of(VIEW_MAIL_SERVER).is_none(),
                "no trust-1..3 node remains in San Diego"
            );
            assert!(!delta.removed.is_empty());
            assert!(delta
                .removed
                .iter()
                .any(|p| p.component == VIEW_MAIL_SERVER));
        }
        other => panic!("expected redeploy, got {other:?}"),
    }
}

#[test]
fn monitor_diffs_drive_edge_attribution() {
    let cs = default_case_study();
    let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
    let request = sd_request(&cs);
    let plan = planner
        .plan(&cs.network, &mail_translator(), &request)
        .unwrap();

    let mut monitor = NetworkMonitor::new(cs.network.clone());
    let mut changed = cs.network.clone();
    // Touch the Seattle-SanDiego link: the San Diego plan never uses it.
    let side = changed
        .link_between(cs.seattle_gateway, cs.sd_gateway)
        .unwrap()
        .id;
    changed.link_mut(side).latency = SimDuration::from_millis(900);
    let changes = monitor.observe(&changed);
    assert_eq!(changes.len(), 1);
    assert!(affected_edges(&plan, &changes).is_empty());

    // Touch the NY-SD link: the Encryptor->Decryptor edge rides it.
    let mut changed2 = changed.clone();
    let wan = changed2
        .link_between(cs.ny_gateway, cs.sd_gateway)
        .unwrap()
        .id;
    changed2.link_mut(wan).bandwidth_bps = 4e6;
    let changes = monitor.observe(&changed2);
    let hit = affected_edges(&plan, &changes);
    assert_eq!(hit.len(), 1);
    let edge = &plan.edges[hit[0]];
    assert_eq!(plan.placements[edge.from].component, ENCRYPTOR);
    assert_eq!(plan.placements[edge.to].component, DECRYPTOR);
}

#[test]
fn plan_delta_classifies_placements() {
    let cs = default_case_study();
    let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
    let request = sd_request(&cs);
    let a = planner
        .plan(&cs.network, &mail_translator(), &request)
        .unwrap();
    // Same request, same network: delta must be empty except kept.
    let b = planner
        .plan(&cs.network, &mail_translator(), &request)
        .unwrap();
    let delta = plan_delta(&a, &b);
    assert_eq!(delta.kept.len(), a.placements.len());
    assert!(delta.added.is_empty());
    assert!(delta.removed.is_empty());
}

#[test]
fn framework_reconnect_redeploys_and_retires() {
    use partitionable_services::core::Framework;
    use partitionable_services::mail::{register_mail_components, Keyring};
    use partitionable_services::smock::{CoherencePolicy, ServiceRegistration};

    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(
        &mut fw.server.registry,
        Keyring::new(3),
        CoherencePolicy::None,
    );
    fw.register_service(ServiceRegistration::new(mail_spec()));
    fw.install_primary("mail", MAIL_SERVER, cs.mail_server)
        .unwrap();

    let request = sd_request(&cs);
    let old = fw.connect("mail", &request).unwrap();
    assert!(old.plan.placement_of(VIEW_MAIL_SERVER).is_some());

    // The branch is promoted to full trust: the request environment
    // raises TrustLevel to 5 everywhere, pushing every node out of the
    // view's (1,3) installation window — reconnect must drop the cache
    // and retire its chain.
    let trusted_request = request
        .clone()
        .env(partitionable_services::spec::Environment::new().with("TrustLevel", 5i64));
    let (new, retired) = fw.reconnect("mail", &trusted_request, &old).unwrap();
    assert!(
        new.plan.placement_of(VIEW_MAIL_SERVER).is_none(),
        "no cache under the raised trust environment: {}",
        new.plan
    );
    assert!(!retired.is_empty(), "the old cache chain was retired");
    for id in &retired {
        assert!(fw.world.is_retired(*id));
    }
    // The primary survived.
    let primary = fw
        .world
        .find_instance(MAIL_SERVER, cs.mail_server, &Default::default())
        .unwrap();
    assert!(!fw.world.is_retired(primary));
}

#[test]
fn retired_view_flushes_unpropagated_state_upstream() {
    use partitionable_services::core::Framework;
    use partitionable_services::mail::components::MailServerLogic;
    use partitionable_services::mail::workload::{ClusterConfig, ClusterDriver};
    use partitionable_services::mail::{register_mail_components, Keyring};
    use partitionable_services::smock::{CoherencePolicy, ServiceRegistration};
    use partitionable_services::spec::Behavior;

    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    // Policy None: nothing propagates during normal operation.
    register_mail_components(
        &mut fw.server.registry,
        Keyring::new(9),
        CoherencePolicy::None,
    );
    fw.register_service(ServiceRegistration::new(mail_spec()));
    let primary = fw
        .install_primary("mail", MAIL_SERVER, cs.mail_server)
        .unwrap();

    let request = sd_request(&cs);
    let conn = fw.connect("mail", &request).unwrap();
    let driver = ClusterDriver::new(ClusterConfig {
        sends: 12,
        receives: 0,
        ..ClusterConfig::paper("alice", "bob", 1 << 40)
    });
    let id = fw.world.instantiate(
        "driver",
        cs.sd_client,
        Default::default(),
        Behavior::new(),
        Box::new(driver),
        conn.ready_at,
    );
    fw.world.wire(id, vec![conn.root]);
    fw.run();

    // Redeploy without the cache (trust raised): the view is retired and
    // must flush its 12 absorbed messages to the primary on the way out.
    let trusted = request
        .clone()
        .env(partitionable_services::spec::Environment::new().with("TrustLevel", 5i64));
    let (_, retired) = fw.reconnect("mail", &trusted, &conn).unwrap();
    assert!(!retired.is_empty());
    fw.run();

    let server = fw
        .world
        .logic_mut(primary)
        .as_any()
        .unwrap()
        .downcast_ref::<MailServerLogic>()
        .unwrap();
    assert_eq!(
        server.store().delivered(),
        12,
        "no mail was stranded in the retired cache"
    );
}
