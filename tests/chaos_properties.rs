//! Seeded fault-injection properties over the mail case study:
//!
//! * any single node crash leaves every managed connection either
//!   automatically recovered (driver finishes) or cleanly abandoned
//!   (the client's own host died) — never silently hung;
//! * any single link failure is survived by every connection;
//! * any correlated fault domain — a whole site crashing, or every WAN
//!   leg of a site's gateway severed at once — leaves every connection
//!   served-degraded, recovered, or cleanly abandoned, and the merge
//!   reconciles the degraded chains;
//! * two chaos-bench (and partition-bench) runs with the same seed
//!   produce byte-identical artifacts (the determinism contracts
//!   behind `BENCH_chaos.json` and `BENCH_partition.json`).

use partitionable_services::core::Framework;
use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::workload::{ClusterConfig, ClusterDriver};
use partitionable_services::mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use partitionable_services::net::casestudy::{default_case_study, NEW_YORK, SAN_DIEGO, SEATTLE};
use partitionable_services::net::{LinkId, NodeId};
use partitionable_services::planner::ServiceRequest;
use partitionable_services::sim::{FaultPlan, SimDuration, SimTime};
use partitionable_services::smock::{
    CoherencePolicy, InstanceId, LeaseConfig, RetryPolicy, ServiceRegistration,
};
use partitionable_services::spec::Behavior;
use ps_bench::chaos::{outcome_json, run_chaos, ChaosBenchConfig};
use ps_bench::partition::{partition_json, run_partition, PartitionBenchConfig};

enum Fault {
    Crash(NodeId),
    LinkDown(LinkId),
    /// Correlated: every WAN leg of `site`'s gateway goes down at the
    /// fault time and comes back at `RESTORE_AT_NS`.
    WanLegs(&'static str),
    /// Correlated: every host of `site` crashes at the fault time and
    /// restarts at `RESTORE_AT_NS`.
    SiteCrash(&'static str),
}

const FAULT_AT_NS: u64 = 20_000_000;
const RESTORE_AT_NS: u64 = 10_000_000_000;

struct ScenarioEnd {
    sd_abandoned: bool,
    sea_abandoned: bool,
    sd_done: bool,
    sea_done: bool,
    sd_degraded: bool,
    sea_degraded: bool,
    sd_reconciled: bool,
    sea_reconciled: bool,
}

/// Runs the two-client mail workload under one injected fault, healing
/// every 500 ms of virtual time, then drains the world completely.
fn run_fault_scenario(fault: &Fault, seed: u64) -> ScenarioEnd {
    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(
        &mut fw.server.registry,
        Keyring::new(5),
        CoherencePolicy::CountLimit(50),
    );
    fw.register_service(ServiceRegistration::new(mail_spec()).home_node(cs.mail_server));
    fw.install_primary("mail", MAIL_SERVER, cs.mail_server)
        .unwrap();
    fw.world.enable_retry(RetryPolicy::default());
    fw.world.enable_leases(LeaseConfig::default());
    fw.world.set_fault_seed(seed);

    let connect = |fw: &mut Framework, node: NodeId, trust: i64| {
        let request = ServiceRequest::new(CLIENT_INTERFACE, node)
            .rate(10.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", trust);
        let conn = fw.connect("mail", &request).unwrap();
        let root = conn.root;
        let handle = fw.manage("mail", request, conn);
        (root, handle)
    };
    let (sd_root, sd_handle) = connect(&mut fw, cs.sd_client, 4);
    let (sea_root, sea_handle) = connect(&mut fw, cs.seattle_client, 1);

    let spawn_driver = |fw: &mut Framework, node: NodeId, root: InstanceId, base: u64| {
        let driver = ClusterDriver::new(ClusterConfig {
            sends: 30,
            receives: 3,
            ..ClusterConfig::paper("alice", "bob", base)
        });
        let id = fw.world.instantiate(
            "driver",
            node,
            Default::default(),
            Behavior::new(),
            Box::new(driver),
            SimTime::ZERO,
        );
        fw.world.wire(id, vec![root]);
        id
    };
    let sd_driver = spawn_driver(&mut fw, cs.sd_client, sd_root, 1 << 40);
    let sea_driver = spawn_driver(&mut fw, cs.seattle_client, sea_root, 2 << 40);

    let fault_at = SimTime::from_nanos(FAULT_AT_NS);
    let restore_at = SimTime::from_nanos(RESTORE_AT_NS);
    let mut plan = FaultPlan::new();
    match fault {
        Fault::Crash(node) => {
            plan.crash(fault_at, node.0);
        }
        Fault::LinkDown(link) => {
            plan.link_down(fault_at, link.0);
        }
        Fault::WanLegs(site) => {
            let domain = cs.wan_leg_domain(site);
            plan.domain_down(fault_at, &domain);
            plan.domain_up(restore_at, &domain);
        }
        Fault::SiteCrash(site) => {
            let domain = cs.site_fault_domain(site);
            plan.domain_down(fault_at, &domain);
            plan.domain_up(restore_at, &domain);
        }
    }
    fw.world.install_fault_plan(&plan);

    let mut sd_degraded = false;
    let mut sea_degraded = false;
    let mut sd_reconciled = false;
    let mut sea_reconciled = false;
    let mut note = |report: &partitionable_services::core::HealReport| {
        sd_degraded |= report.degraded.contains(&sd_handle);
        sea_degraded |= report.degraded.contains(&sea_handle);
        sd_reconciled |= report.reconciled.contains(&sd_handle);
        sea_reconciled |= report.reconciled.contains(&sea_handle);
    };
    let mut now = fault_at;
    let deadline = SimTime::from_nanos(60_000_000_000);
    while now < deadline {
        now += SimDuration::from_millis(500);
        fw.run_until(now);
        note(&fw.heal());
    }
    fw.run();
    note(&fw.heal());

    let done = |fw: &mut Framework, id: InstanceId| {
        fw.world
            .logic_mut(id)
            .as_any()
            .and_then(|a| a.downcast_ref::<ClusterDriver>())
            .is_some_and(|d| d.is_done())
    };
    ScenarioEnd {
        sd_abandoned: fw.managed_connection(sd_handle).is_none(),
        sea_abandoned: fw.managed_connection(sea_handle).is_none(),
        sd_done: done(&mut fw, sd_driver),
        sea_done: done(&mut fw, sea_driver),
        sd_degraded,
        sea_degraded,
        sd_reconciled,
        sea_reconciled,
    }
}

#[test]
fn any_single_node_crash_recovers_or_cleanly_abandons() {
    let cs = default_case_study();
    for index in 0..cs.network.node_count() {
        let node = NodeId(index as u32);
        let end = run_fault_scenario(&Fault::Crash(node), 17 + index as u64);

        // A connection is abandoned exactly when its own client host
        // died; every other connection must finish its workload.
        assert_eq!(
            end.sd_abandoned,
            node == cs.sd_client,
            "SD abandonment after crashing node {node}"
        );
        assert_eq!(
            end.sea_abandoned,
            node == cs.seattle_client,
            "Seattle abandonment after crashing node {node}"
        );
        if node != cs.sd_client {
            assert!(end.sd_done, "SD workload hung after crashing node {node}");
        }
        if node != cs.seattle_client {
            assert!(
                end.sea_done,
                "Seattle workload hung after crashing node {node}"
            );
        }
    }
}

#[test]
fn any_single_link_failure_is_survived() {
    let cs = default_case_study();
    for link in cs.network.links() {
        let end = run_fault_scenario(&Fault::LinkDown(link.id), 170 + u64::from(link.id.0));
        assert!(!end.sd_abandoned, "SD abandoned after link {:?}", link.id);
        assert!(
            !end.sea_abandoned,
            "Seattle abandoned after link {:?}",
            link.id
        );
        assert!(
            end.sd_done,
            "SD workload hung after link {:?} failed",
            link.id
        );
        assert!(
            end.sea_done,
            "Seattle workload hung after link {:?} failed",
            link.id
        );
    }
}

#[test]
fn severing_any_sites_wan_legs_degrades_then_reconciles() {
    for (index, site) in [NEW_YORK, SAN_DIEGO, SEATTLE].into_iter().enumerate() {
        let end = run_fault_scenario(&Fault::WanLegs(site), 300 + index as u64);

        // No client host dies: nothing may be abandoned, and every
        // workload must finish once the legs are restored.
        assert!(!end.sd_abandoned, "SD abandoned after severing {site}");
        assert!(
            !end.sea_abandoned,
            "Seattle abandoned after severing {site}"
        );
        assert!(end.sd_done, "SD workload hung after severing {site}");
        assert!(end.sea_done, "Seattle workload hung after severing {site}");

        // The clients cut off from the pinned New York mail server are
        // served on degraded chains during the split, and reconciled
        // after the restore. (Severing a *client* site's legs cuts that
        // client; severing New York's cuts both.)
        if site == NEW_YORK || site == SAN_DIEGO {
            assert!(end.sd_degraded, "SD not degraded after severing {site}");
            assert!(end.sd_reconciled, "SD not reconciled after severing {site}");
        }
        if site == NEW_YORK || site == SEATTLE {
            assert!(
                end.sea_degraded,
                "Seattle not degraded after severing {site}"
            );
            assert!(
                end.sea_reconciled,
                "Seattle not reconciled after severing {site}"
            );
        }
    }
}

#[test]
fn site_crashes_abandon_only_their_own_clients() {
    for (index, site) in [NEW_YORK, SAN_DIEGO, SEATTLE].into_iter().enumerate() {
        let end = run_fault_scenario(&Fault::SiteCrash(site), 400 + index as u64);
        match site {
            // The whole primary site dies — including the pinned mail
            // server. Both clients survive on degraded local chains and
            // reconcile once the site restarts and rejoins.
            NEW_YORK => {
                assert!(!end.sd_abandoned, "SD abandoned after {site} crash");
                assert!(!end.sea_abandoned, "Seattle abandoned after {site} crash");
                assert!(end.sd_degraded, "SD not degraded after {site} crash");
                assert!(end.sea_degraded, "Seattle not degraded after {site} crash");
                assert!(end.sd_reconciled, "SD not reconciled after {site} crash");
                assert!(
                    end.sea_reconciled,
                    "Seattle not reconciled after {site} crash"
                );
                assert!(end.sd_done, "SD workload hung after {site} crash");
                assert!(end.sea_done, "Seattle workload hung after {site} crash");
            }
            // A client site crashing abandons exactly its own
            // connection; the other client must finish.
            SAN_DIEGO => {
                assert!(end.sd_abandoned, "SD should be abandoned with its site");
                assert!(!end.sea_abandoned, "Seattle abandoned after {site} crash");
                assert!(end.sea_done, "Seattle workload hung after {site} crash");
            }
            SEATTLE => {
                assert!(
                    end.sea_abandoned,
                    "Seattle should be abandoned with its site"
                );
                assert!(!end.sd_abandoned, "SD abandoned after {site} crash");
                assert!(end.sd_done, "SD workload hung after {site} crash");
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn same_seed_partition_runs_produce_identical_artifacts() {
    let config = PartitionBenchConfig {
        seed: 23,
        split_at: SimTime::from_nanos(50_000_000),
        restore_at: SimTime::from_nanos(5_000_000_000),
        seattle_ops: (60, 5),
        sd_ops: (60, 5),
        ..PartitionBenchConfig::default()
    };
    let (tracer_a, sink_a) = partitionable_services::trace::Tracer::memory();
    let (tracer_b, sink_b) = partitionable_services::trace::Tracer::memory();
    let a = run_partition(&config, &tracer_a);
    let b = run_partition(&config, &tracer_b);
    assert_eq!(
        partition_json(&a),
        partition_json(&b),
        "BENCH_partition.json must be byte-identical for one seed"
    );
    assert_eq!(
        sink_a.to_jsonl(),
        sink_b.to_jsonl(),
        "trace JSONL must be byte-identical for one seed"
    );

    // A different seed perturbs the workload draws.
    let other = PartitionBenchConfig { seed: 24, ..config };
    let c = run_partition(&other, &partitionable_services::trace::Tracer::disabled());
    assert_ne!(partition_json(&a), partition_json(&c));
}

#[test]
fn same_seed_chaos_runs_produce_identical_artifacts() {
    let config = ChaosBenchConfig {
        seed: 23,
        crash_at: SimTime::from_nanos(50_000_000),
        seattle_ops: (60, 5),
        sd_ops: (60, 5),
        ..ChaosBenchConfig::default()
    };
    let (tracer_a, sink_a) = partitionable_services::trace::Tracer::memory();
    let (tracer_b, sink_b) = partitionable_services::trace::Tracer::memory();
    let a = run_chaos(&config, &tracer_a);
    let b = run_chaos(&config, &tracer_b);
    assert_eq!(
        outcome_json(&a),
        outcome_json(&b),
        "BENCH_chaos.json must be byte-identical for one seed"
    );
    assert_eq!(
        sink_a.to_jsonl(),
        sink_b.to_jsonl(),
        "trace JSONL must be byte-identical for one seed"
    );

    // A different seed perturbs the workload and fault draws.
    let other = ChaosBenchConfig { seed: 24, ..config };
    let c = run_chaos(&other, &partitionable_services::trace::Tracer::disabled());
    assert_ne!(outcome_json(&a), outcome_json(&c));
}
