//! Live component migration under a running mail workload: the cache
//! replica moves to another branch machine mid-stream and the service
//! keeps answering, with its cached state intact.

use partitionable_services::core::Framework;
use partitionable_services::mail::components::ViewMailServerLogic;
use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::workload::{ClusterConfig, ClusterDriver};
use partitionable_services::mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use partitionable_services::net::casestudy::default_case_study;
use partitionable_services::planner::ServiceRequest;
use partitionable_services::sim::SimDuration;
use partitionable_services::smock::{CoherencePolicy, ServiceRegistration};
use partitionable_services::spec::Behavior;

#[test]
fn view_server_migrates_mid_workload_without_losing_state() {
    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(
        &mut fw.server.registry,
        Keyring::new(5),
        CoherencePolicy::None,
    );
    fw.register_service(ServiceRegistration::new(mail_spec()));
    fw.install_primary("mail", MAIL_SERVER, cs.mail_server)
        .unwrap();

    let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let conn = fw.connect("mail", &request).unwrap();
    let vms_placement = conn.plan.placement_of(VIEW_MAIL_SERVER).unwrap();
    let vms = conn.deployment.instances[vms_placement.graph_index];
    let vms_node = vms_placement.node;

    let driver = {
        let d = ClusterDriver::new(ClusterConfig {
            sends: 60,
            receives: 6,
            ..ClusterConfig::paper("alice", "bob", 1 << 40)
        });
        let id = fw.world.instantiate(
            "driver",
            cs.sd_client,
            Default::default(),
            Behavior::new(),
            Box::new(d),
            conn.ready_at,
        );
        fw.world.wire(id, vec![conn.root]);
        id
    };

    // Let roughly half the workload run, then migrate the cache to a
    // different San Diego machine.
    let half = conn.ready_at + SimDuration::from_millis(50);
    fw.run_until(half);
    let target = cs
        .network
        .site_nodes("SanDiego")
        .into_iter()
        .find(|&n| n != vms_node)
        .expect("another branch machine");
    let (new_vms, live_at) = fw.world.migrate(vms, target);
    assert!(live_at >= half);
    fw.run();

    // Workload completed, nothing denied.
    let d = fw
        .world
        .logic_mut(driver)
        .as_any()
        .unwrap()
        .downcast_ref::<ClusterDriver>()
        .unwrap();
    assert!(d.is_done(), "workload finished across the migration");
    assert_eq!(d.denied, 0);
    assert_eq!(d.completed.len(), 66);

    // The migrated replica holds all 60 absorbed messages.
    let logic = fw
        .world
        .logic_mut(new_vms)
        .as_any()
        .unwrap()
        .downcast_ref::<ViewMailServerLogic>()
        .unwrap();
    assert_eq!(logic.cached().delivered(), 60, "cache state moved intact");
    assert!(fw.world.is_retired(vms));
    assert_eq!(fw.world.instance(new_vms).node, target);
}
