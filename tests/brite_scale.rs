//! The framework on generated topologies: the mail service deploys and
//! runs on BRITE-style networks it has never seen, not just the
//! hand-built Figure 5 case study.

use partitionable_services::core::Framework;
use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::workload::{ClusterConfig, ClusterDriver};
use partitionable_services::mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use partitionable_services::net::brite::{hierarchical, FlatParams, HierParams};
use partitionable_services::net::{Credentials, Network, NodeId};
use partitionable_services::planner::ServiceRequest;
use partitionable_services::sim::Rng;
use partitionable_services::smock::{CoherencePolicy, ServiceRegistration};
use partitionable_services::spec::Behavior;

/// Decorates a generated network with mail credentials: AS 0 is the
/// trusted company HQ, odd ASes are branches, even (non-zero) ASes are
/// partners.
fn decorate(net: &mut Network) {
    for id in net.node_ids().collect::<Vec<_>>() {
        let site = net.node(id).site.clone();
        let asn: usize = site.trim_start_matches("as").parse().unwrap_or(0);
        let (trust, domain) = if asn == 0 {
            (5i64, "company")
        } else if asn % 2 == 1 {
            (3, "company")
        } else {
            (2, "partner")
        };
        net.node_mut(id).credentials = Credentials::new()
            .with("TrustRating", trust)
            .with("Domain", domain);
    }
}

fn generated(seed: u64, as_count: usize) -> Network {
    let mut rng = Rng::seed_from_u64(seed);
    let params = HierParams {
        as_count,
        router: FlatParams {
            nodes: 4,
            ..FlatParams::default()
        },
        ..HierParams::default()
    };
    let mut net = hierarchical(&mut rng, &params);
    decorate(&mut net);
    net
}

#[test]
fn mail_deploys_and_runs_on_generated_topologies() {
    for seed in [3u64, 17] {
        let net = generated(seed, 3);
        let hq: NodeId = net
            .node_ids()
            .find(|&n| net.trust_rating(n) == Some(5))
            .expect("an HQ node");

        let mut fw = Framework::new(net.clone(), hq, Box::new(mail_translator()));
        register_mail_components(
            &mut fw.server.registry,
            Keyring::new(seed),
            CoherencePolicy::CountLimit(20),
        );
        fw.register_service(ServiceRegistration::new(mail_spec()));
        fw.install_primary("mail", MAIL_SERVER, hq).unwrap();

        // One client per non-HQ AS, planned incrementally.
        let mut drivers = Vec::new();
        for asn in 1..3 {
            let client = net
                .node_ids()
                .find(|&n| net.node(n).site == format!("as{asn}"))
                .expect("as has nodes");
            let trust = if asn % 2 == 1 { 4 } else { 1 };
            let request = ServiceRequest::new(CLIENT_INTERFACE, client)
                .rate(5.0)
                .pin(MAIL_SERVER, hq)
                .origin(hq)
                .require("TrustLevel", trust);
            let conn = fw
                .connect("mail", &request)
                .unwrap_or_else(|e| panic!("seed {seed} as{asn}: {e}"));

            // Validity: every placement respects the spec's conditions.
            for p in &conn.plan.placements {
                let node_trust = fw.world.network().trust_rating(p.node).unwrap();
                match p.component.as_str() {
                    VIEW_MAIL_SERVER => assert!((1..=3).contains(&node_trust)),
                    MAIL_SERVER => assert!(node_trust >= 4),
                    DECRYPTOR => assert_eq!(
                        fw.world
                            .network()
                            .node(p.node)
                            .credentials
                            .get("Domain")
                            .unwrap()
                            .to_string(),
                        "company"
                    ),
                    _ => {}
                }
            }

            let driver = ClusterDriver::new(ClusterConfig {
                sends: 30,
                receives: 3,
                ..ClusterConfig::paper(
                    format!("user-as{asn}"),
                    "user-as1".to_owned(),
                    (asn as u64) << 40,
                )
            });
            let id = fw.world.instantiate(
                format!("driver-as{asn}"),
                client,
                Default::default(),
                Behavior::new(),
                Box::new(driver),
                conn.ready_at,
            );
            fw.world.wire(id, vec![conn.root]);
            drivers.push(id);
        }

        fw.run();
        for id in drivers {
            let d = fw
                .world
                .logic_mut(id)
                .as_any()
                .unwrap()
                .downcast_ref::<ClusterDriver>()
                .unwrap();
            assert!(d.is_done(), "seed {seed}: workload completed");
            assert_eq!(d.denied, 0, "seed {seed}: no denials");
        }
    }
}

#[test]
fn planning_effort_stays_bounded_on_larger_networks() {
    let net = generated(7, 4); // 16 nodes
    let hq = net
        .node_ids()
        .find(|&n| net.trust_rating(n) == Some(5))
        .unwrap();
    let client = net.node_ids().find(|&n| net.node(n).site == "as3").unwrap();
    let planner =
        partitionable_services::planner::Planner::with_config(mail_spec(), Default::default());
    let request = ServiceRequest::new(CLIENT_INTERFACE, client)
        .rate(2.0)
        .pin(MAIL_SERVER, hq)
        .origin(hq)
        .require("TrustLevel", 4i64);
    let start = partitionable_services::trace::WallTimer::start();
    let plan = planner
        .plan(&net, &mail_translator(), &request)
        .expect("feasible");
    let elapsed_ms = start.elapsed_ms();
    assert!(
        elapsed_ms < 120_000.0,
        "planning took {elapsed_ms:.0} ms — the branch-and-bound pruning regressed"
    );
    assert!(plan.stats.mappings_evaluated > 0);
}
