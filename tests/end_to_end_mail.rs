//! End-to-end semantic tests of the deployed mail service: messages sent
//! through the full San Diego chain (client encryption → view-server
//! caching → channel encryption over the WAN → re-encryption at the
//! primary) actually arrive, decrypt, and stay coherent.

use partitionable_services::core::Framework;
use partitionable_services::mail::components::{MailServerLogic, ViewMailServerLogic};
use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::workload::{ClusterConfig, ClusterDriver};
use partitionable_services::mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use partitionable_services::net::casestudy::{default_case_study, CaseStudy};
use partitionable_services::planner::ServiceRequest;
use partitionable_services::smock::{CoherencePolicy, Connection, InstanceId, ServiceRegistration};
use partitionable_services::spec::Behavior;

fn setup(policy: CoherencePolicy) -> (Framework, CaseStudy, InstanceId) {
    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(&mut fw.server.registry, Keyring::new(7), policy);
    fw.register_service(ServiceRegistration::new(mail_spec()));
    let primary = fw
        .install_primary("mail", MAIL_SERVER, cs.mail_server)
        .expect("primary");
    (fw, cs, primary)
}

fn connect_site(
    fw: &mut Framework,
    cs: &CaseStudy,
    client: ps_net::NodeId,
    trust: i64,
) -> Connection {
    let request = ServiceRequest::new(CLIENT_INTERFACE, client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", trust);
    fw.connect("mail", &request).expect("connects")
}

fn drive(
    fw: &mut Framework,
    node: ps_net::NodeId,
    root: InstanceId,
    config: ClusterConfig,
    start: partitionable_services::sim::SimTime,
) -> InstanceId {
    let driver = ClusterDriver::new(config);
    let id = fw.world.instantiate(
        "driver",
        node,
        Default::default(),
        Behavior::new(),
        Box::new(driver),
        start,
    );
    fw.world.wire(id, vec![root]);
    id
}

fn server_logic(fw: &mut Framework, primary: InstanceId) -> &MailServerLogic {
    fw.world
        .logic_mut(primary)
        .as_any()
        .expect("opted in")
        .downcast_ref::<MailServerLogic>()
        .expect("is the mail server")
}

#[test]
fn messages_survive_the_full_encrypted_chain() {
    let (mut fw, cs, primary) = setup(CoherencePolicy::CountLimit(10));
    let conn = connect_site(&mut fw, &cs, cs.sd_client, 4);

    // 25 sends from alice to bob through the cached, encrypted chain;
    // the count limit forces at least two flushes to the primary.
    let driver = drive(
        &mut fw,
        cs.sd_client,
        conn.root,
        ClusterConfig {
            sends: 25,
            receives: 0,
            ..ClusterConfig::paper("alice", "bob", 1 << 40)
        },
        conn.ready_at,
    );
    fw.run();

    let d = fw
        .world
        .logic_mut(driver)
        .as_any()
        .unwrap()
        .downcast_ref::<ClusterDriver>()
        .unwrap();
    assert!(d.is_done());
    assert_eq!(d.denied, 0);

    // The primary received the flushed batches: 20 of the 25 (two full
    // windows of 10); the remaining 5 still sit unpropagated at the view.
    let server = server_logic(&mut fw, primary);
    let store = server.store();
    assert_eq!(
        store.delivered(),
        20,
        "two flush windows reached the primary"
    );
    let bob = store.account("bob").expect("bob's account exists");
    assert_eq!(bob.inbox.len(), 20);
    // Every stored message was re-encrypted for bob and decrypts cleanly.
    for m in bob.inbox.messages() {
        assert_eq!(m.encrypted_for.as_deref(), Some("bob"));
        let body = store.open_body(m).expect("decrypts");
        assert!(!body.is_empty());
        assert_ne!(body, m.body, "stored body is ciphertext");
    }
}

#[test]
fn view_server_absorbs_and_flushes_per_policy() {
    let (mut fw, cs, _primary) = setup(CoherencePolicy::CountLimit(10));
    let conn = connect_site(&mut fw, &cs, cs.sd_client, 4);
    let vms = conn
        .plan
        .placement_of(VIEW_MAIL_SERVER)
        .expect("cache deployed");
    let vms_instance = conn.deployment.instances[vms.graph_index];

    drive(
        &mut fw,
        cs.sd_client,
        conn.root,
        ClusterConfig {
            sends: 35,
            receives: 5,
            ..ClusterConfig::paper("alice", "bob", 1 << 41)
        },
        conn.ready_at,
    );
    fw.run();

    let logic = fw
        .world
        .logic_mut(vms_instance)
        .as_any()
        .unwrap()
        .downcast_ref::<ViewMailServerLogic>()
        .unwrap();
    assert_eq!(logic.trust_level(), 3);
    assert_eq!(logic.coherence().flushes(), 3, "35 sends / window of 10");
    assert_eq!(logic.coherence().unpropagated(), 5);
    // The cache holds bob's locally delivered mail.
    assert!(logic.cached().has_account("bob"));
}

#[test]
fn no_coherence_policy_never_contacts_the_primary() {
    let (mut fw, cs, primary) = setup(CoherencePolicy::None);
    let conn = connect_site(&mut fw, &cs, cs.sd_client, 4);
    drive(
        &mut fw,
        cs.sd_client,
        conn.root,
        ClusterConfig {
            sends: 50,
            receives: 5,
            ..ClusterConfig::paper("alice", "bob", 1 << 42)
        },
        conn.ready_at,
    );
    fw.run();
    let server = server_logic(&mut fw, primary);
    assert_eq!(server.store().delivered(), 0, "nothing propagated upstream");
}

#[test]
fn invalidation_pushes_keep_remote_caches_coherent() {
    // Alice mails from New York directly to the primary; Carol reads at
    // San Diego through the cache. The directory must invalidate the
    // cache so Carol's receive pulls the fresh message.
    let (mut fw, cs, _primary) = setup(CoherencePolicy::CountLimit(1));
    let ny = connect_site(&mut fw, &cs, cs.ny_client, 4);
    let sd = connect_site(&mut fw, &cs, cs.sd_client, 4);

    // Carol does a couple of receives at SD first (registers her account
    // in the cache's scope), then alice sends, then carol reads again.
    drive(
        &mut fw,
        cs.sd_client,
        sd.root,
        ClusterConfig {
            sends: 2, // carol sends a little too, registering her scope
            receives: 2,
            ..ClusterConfig::paper("carol", "dave", 1 << 43)
        },
        sd.ready_at,
    );
    fw.run();

    // Alice (NY) sends 3 messages to carol, directly into the primary.
    let now = fw.world.now();
    let ny_driver = drive(
        &mut fw,
        cs.ny_client,
        ny.root,
        ClusterConfig {
            sends: 3,
            receives: 0,
            ..ClusterConfig::paper("alice", "carol", 1 << 44)
        },
        now,
    );
    fw.run();
    let d = fw
        .world
        .logic_mut(ny_driver)
        .as_any()
        .unwrap()
        .downcast_ref::<ClusterDriver>()
        .unwrap();
    assert!(d.is_done());

    // Carol reads at SD: the cache was invalidated, so this pull returns
    // alice's 3 messages.
    let now = fw.world.now();
    let carol_reader = drive(
        &mut fw,
        cs.sd_client,
        sd.root,
        ClusterConfig {
            sends: 0,
            receives: 1,
            ..ClusterConfig::paper("carol", "dave", 1 << 45)
        },
        now,
    );
    fw.run();
    let reader = fw
        .world
        .logic_mut(carol_reader)
        .as_any()
        .unwrap()
        .downcast_ref::<ClusterDriver>()
        .unwrap();
    assert!(reader.is_done());
    // (the pull returned messages; latency of a WAN pull shows it went
    // upstream rather than answering stale from the cache)
    let (_, latency) = reader.completed[0];
    assert!(
        latency > 500.0,
        "receive should have pulled across the WAN, took {latency} ms"
    );
}

#[test]
fn deployments_are_shared_between_clients_of_one_site() {
    let (mut fw, cs, _primary) = setup(CoherencePolicy::None);
    let first = connect_site(&mut fw, &cs, cs.sd_client, 4);
    let instances_before = fw.world.instance_count();
    let second = connect_site(&mut fw, &cs, cs.sd_client, 4);
    assert_eq!(
        fw.world.instance_count(),
        instances_before,
        "second client reuses every instance"
    );
    assert_eq!(first.root, second.root);
    assert_eq!(second.deployment.created, 0);
    assert!(second.deployment.reused >= 4);
}
