//! Observability integration: monitor change detection and re-planning
//! decisions must be mirrored faithfully in the trace stream — every
//! emitted event corresponds to a decision the code actually took, with
//! matching fields, sim-time stamps, and registry counters.

use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::{mail_spec, mail_translator};
use partitionable_services::monitor::{NetworkMonitor, ReplanDecision, Replanner};
use partitionable_services::net::casestudy::default_case_study;
use partitionable_services::planner::{Planner, PlannerConfig, ServiceRequest};
use partitionable_services::sim::{SimDuration, SimTime};
use partitionable_services::trace::{EventKind, Tracer};

fn sd_request(cs: &partitionable_services::net::CaseStudy) -> ServiceRequest {
    ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(2.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64)
}

#[test]
fn monitor_changes_emit_matching_trace_events() {
    let cs = default_case_study();
    let (tracer, sink) = Tracer::memory();
    let mut monitor = NetworkMonitor::new(cs.network.clone());
    monitor.set_tracer(tracer.clone());

    let mut changed = cs.network.clone();
    let wan = changed
        .link_between(cs.ny_gateway, cs.sd_gateway)
        .unwrap()
        .id;
    changed.link_mut(wan).latency = SimDuration::from_millis(600);
    changed.link_mut(wan).bandwidth_bps = 4e6;
    changed
        .node_mut(cs.seattle_client)
        .credentials
        .set("TrustRating", 5i64);

    let now = SimTime::from_nanos(7_000_000);
    let changes = monitor.observe_at(now, &changed);
    assert_eq!(changes.len(), 3);

    let events = sink.events();
    let change_events: Vec<_> = events
        .iter()
        .filter(|e| e.target == "monitor" && e.name == "change")
        .collect();
    // One event per detected change, all stamped at the observation time.
    assert_eq!(change_events.len(), changes.len());
    assert!(change_events.iter().all(|e| e.kind == EventKind::Instant));
    assert!(change_events.iter().all(|e| e.sim_ns == now.as_nanos()));
    let kinds: Vec<&str> = change_events
        .iter()
        .map(|e| e.field_str("kind").unwrap())
        .collect();
    assert_eq!(
        kinds,
        vec!["link_latency", "link_bandwidth", "node_credentials"]
    );
    assert_eq!(
        change_events[0].field_u64("subject"),
        Some(wan.0 as u64),
        "latency event names the WAN link"
    );
    let registry = tracer.registry().unwrap();
    assert_eq!(registry.counter("monitor.changes"), 3);

    // Baseline advanced: a quiet re-observation emits nothing new.
    assert!(monitor.observe_at(now, &changed).is_empty());
    assert_eq!(sink.events().len(), events.len());
    assert_eq!(registry.counter("monitor.changes"), 3);
}

#[test]
fn replanner_keep_decision_is_traced() {
    let cs = default_case_study();
    let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
    let request = sd_request(&cs);
    let plan = planner
        .plan(&cs.network, &mail_translator(), &request)
        .unwrap();

    // Mild WAN degradation: the deployed plan stays within the default
    // 1.25x degradation threshold.
    let mut degraded = cs.network.clone();
    let wan = degraded
        .link_between(cs.ny_gateway, cs.sd_gateway)
        .unwrap()
        .id;
    degraded.link_mut(wan).latency = SimDuration::from_millis(450);

    let (tracer, sink) = Tracer::memory();
    let mut replanner = Replanner::new(planner);
    replanner.set_tracer(tracer.clone());
    let now = SimTime::from_nanos(42);
    let decision = replanner.evaluate_at(now, &degraded, &mail_translator(), &request, &plan);
    assert!(matches!(decision, ReplanDecision::Keep));

    let events = sink.events();
    let replans: Vec<_> = events
        .iter()
        .filter(|e| e.target == "monitor" && e.name == "replan")
        .collect();
    assert_eq!(replans.len(), 1);
    assert_eq!(replans[0].field_str("decision"), Some("keep"));
    assert_eq!(replans[0].sim_ns, now.as_nanos());
    let registry = tracer.registry().unwrap();
    assert_eq!(registry.counter("replan.keep"), 1);
    assert_eq!(registry.counter("replan.redeploy"), 0);
}

#[test]
fn replanner_redeploy_decision_traces_the_delta() {
    let cs = default_case_study();
    let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
    let request = sd_request(&cs);
    let plan = planner
        .plan(&cs.network, &mail_translator(), &request)
        .unwrap();

    // Raise San Diego's trust out of the view server's (1,3) window: the
    // deployed cache becomes illegal and a redeploy is forced.
    let mut changed = cs.network.clone();
    for id in changed.node_ids().collect::<Vec<_>>() {
        if changed.node(id).site == "SanDiego" {
            changed.node_mut(id).credentials.set("TrustRating", 5i64);
        }
    }

    let (tracer, sink) = Tracer::memory();
    let mut replanner = Replanner::new(planner);
    replanner.set_tracer(tracer.clone());
    let now = SimTime::from_nanos(99);
    let decision = replanner.evaluate_at(now, &changed, &mail_translator(), &request, &plan);
    let delta = match &decision {
        ReplanDecision::Redeploy { delta, .. } => delta,
        other => panic!("expected redeploy, got {other:?}"),
    };

    let events = sink.events();
    let replans: Vec<_> = events
        .iter()
        .filter(|e| e.target == "monitor" && e.name == "replan")
        .collect();
    assert_eq!(replans.len(), 1);
    let event = replans[0];
    // The event's delta fields mirror the decision exactly.
    assert_eq!(event.field_str("decision"), Some("redeploy"));
    assert_eq!(event.field_u64("added"), Some(delta.added.len() as u64));
    assert_eq!(event.field_u64("kept"), Some(delta.kept.len() as u64));
    assert_eq!(event.field_u64("removed"), Some(delta.removed.len() as u64));
    assert!(delta
        .removed
        .iter()
        .any(|p| p.component == VIEW_MAIL_SERVER));
    assert_eq!(tracer.registry().unwrap().counter("replan.redeploy"), 1);
}

#[test]
fn degradation_threshold_flips_the_traced_decision() {
    let cs = default_case_study();
    let request = sd_request(&cs);
    let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
    let plan = planner
        .plan(&cs.network, &mail_translator(), &request)
        .unwrap();

    // Unchanged network: the old plan IS the fresh optimum. A factor
    // >= 1.0 keeps it; a factor < 1.0 can never be satisfied (the old
    // objective equals the optimum), forcing a redeploy whose delta
    // keeps every placement.
    for (factor, expect_keep) in [(1.25f64, true), (0.9, false)] {
        let (tracer, sink) = Tracer::memory();
        let mut replanner =
            Replanner::new(Planner::with_config(mail_spec(), PlannerConfig::default()));
        replanner.degradation_factor = factor;
        replanner.set_tracer(tracer.clone());
        let decision = replanner.evaluate_at(
            SimTime::ZERO,
            &cs.network,
            &mail_translator(),
            &request,
            &plan,
        );
        let events = sink.events();
        let event = events
            .iter()
            .find(|e| e.target == "monitor" && e.name == "replan")
            .expect("a replan event");
        let registry = tracer.registry().unwrap();
        if expect_keep {
            assert!(matches!(decision, ReplanDecision::Keep), "factor {factor}");
            assert_eq!(event.field_str("decision"), Some("keep"));
            assert_eq!(registry.counter("replan.keep"), 1);
        } else {
            let delta = match &decision {
                ReplanDecision::Redeploy { delta, .. } => delta,
                other => panic!("factor {factor}: expected redeploy, got {other:?}"),
            };
            assert_eq!(event.field_str("decision"), Some("redeploy"));
            assert!(delta.added.is_empty() && delta.removed.is_empty());
            assert_eq!(delta.kept.len(), plan.placements.len());
            assert_eq!(registry.counter("replan.redeploy"), 1);
        }
    }
}
