//! Shape assertions on the Figure 7 reproduction (small workload so the
//! test stays fast): the paper's three key observations must hold.

use ps_bench::{run_scenario, Fig7Config, Scenario};

fn mean(scenario: Scenario, clients: usize, msgs: u32) -> f64 {
    let r = run_scenario(
        scenario,
        &Fig7Config {
            clients,
            msgs_per_client: msgs,
            ..Default::default()
        },
    );
    r.send.mean()
}

#[test]
fn dynamic_deployments_match_their_static_counterparts() {
    // Point 1: automatically generated dynamic deployments incur
    // negligible overhead vs the hand-built static ones.
    for (dynamic, baseline) in [
        (Scenario::DF, Scenario::SF),
        (Scenario::DS0, Scenario::SS0),
        (Scenario::DS500, Scenario::SS500),
    ] {
        let d = mean(dynamic, 2, 600);
        let s = mean(baseline, 2, 600);
        let gap = (d - s).abs() / s.max(1e-9);
        assert!(
            gap < 0.05,
            "{dynamic} = {d:.3} ms vs {baseline} = {s:.3} ms (gap {:.1}%)",
            gap * 100.0
        );
    }
}

#[test]
fn caching_beats_the_naive_static_deployment_by_orders_of_magnitude() {
    // Point 2: deploying the cache before the slow link is a massive win
    // over SS (direct connection, unaware of the slow link).
    let cached = mean(Scenario::DS0, 1, 300);
    let naive = mean(Scenario::SS, 1, 300);
    assert!(
        naive / cached > 50.0,
        "SS {naive:.1} ms should dwarf DS0 {cached:.3} ms"
    );
}

#[test]
fn remote_access_approaches_local_to_the_extent_coherence_permits() {
    // Point 3: DS* approaches DF, degraded only by the coherence policy;
    // tighter flush windows cost more.
    let msgs = 1500;
    let local = mean(Scenario::DF, 1, msgs);
    let none = mean(Scenario::DS0, 1, msgs);
    let loose = mean(Scenario::DS1000, 1, msgs);
    let tight = mean(Scenario::DS500, 1, msgs);
    let naive = mean(Scenario::SS, 1, 300);
    // Same order of magnitude as local access...
    assert!(none < local * 4.0, "DS0 {none:.2} vs DF {local:.2}");
    // ...ordered by coherence tightness...
    assert!(
        none < loose && loose < tight,
        "ordering violated: DS0 {none:.3} / DS1000 {loose:.3} / DS500 {tight:.3}"
    );
    // ...and all far below the naive deployment (the four groups).
    assert!(tight < naive / 20.0);
}

#[test]
fn latency_grows_mildly_with_client_count() {
    let one = mean(Scenario::DS0, 1, 400);
    let five = mean(Scenario::DS0, 5, 400);
    assert!(five > one, "contention must cost something");
    assert!(
        five < one * 20.0,
        "but the local deployment must not collapse: {one:.3} -> {five:.3}"
    );
}

#[test]
fn scenario_runs_are_deterministic() {
    let a = run_scenario(
        Scenario::DS500,
        &Fig7Config {
            clients: 3,
            msgs_per_client: 600,
            ..Default::default()
        },
    );
    let b = run_scenario(
        Scenario::DS500,
        &Fig7Config {
            clients: 3,
            msgs_per_client: 600,
            ..Default::default()
        },
    );
    assert_eq!(a.send.count(), b.send.count());
    assert_eq!(a.send.mean(), b.send.mean());
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.completed_at, b.completed_at);
}
