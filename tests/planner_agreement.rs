//! Property tests: the three search algorithms agree.
//!
//! The exhaustive mapper is the oracle. The branch-and-bound solver must
//! match it exactly (same search space, sound pruning). The chain DP must
//! match on chain specifications without repeat-prone structure (its
//! labels cannot see path-wide instance-identity constraints — see
//! `ps_planner::dp`).

use proptest::prelude::*;
use ps_net::{Credentials, Network};
use ps_planner::{
    Algorithm, LinkageLimits, Objective, Planner, PlannerConfig, ServiceRequest,
};
use ps_sim::SimDuration;
use ps_spec::prelude::*;

/// A random linear-ish service spec: client -> relay* -> server, with a
/// cacheable view in the middle, randomized behaviours.
fn random_spec(relays: usize, rrf: f64, caps: bool) -> ServiceSpec {
    let mut spec = ServiceSpec::new("gen")
        .property(Property::boolean("Secure"))
        .property(Property::interval("Level", 1, 9))
        .interface(Interface::new("Api", ["Secure", "Level"]))
        .rule(ModificationRule::boolean_and("Secure"));
    // Server.
    spec = spec.component(
        Component::new("Server")
            .implements(InterfaceRef::with_bindings(
                "Api",
                Bindings::new().bind_lit("Secure", true).bind_lit("Level", 9i64),
            ))
            .behavior({
                let b = Behavior::new().cpu_per_request_ms(1.0).message_bytes(1024, 1024);
                if caps {
                    b.capacity(500.0)
                } else {
                    b
                }
            }),
    );
    // Relays that re-assert security (encryptor-like).
    for i in 0..relays {
        spec = spec.component(
            Component::new(format!("Relay{i}"))
                .implements(InterfaceRef::with_bindings(
                    "Api",
                    Bindings::new().bind_lit("Secure", true),
                ))
                .requires(InterfaceRef::with_bindings(
                    "Api",
                    Bindings::new().bind_lit("Secure", true).bind_lit("Level", 1i64),
                ))
                .behavior(Behavior::new().cpu_per_request_ms(0.5).rrf(rrf).message_bytes(1024, 1024)),
        );
    }
    // Client.
    spec.component(
        Component::new("Client")
            .implements(InterfaceRef::with_bindings(
                "Api",
                Bindings::new().bind_lit("Level", 1i64),
            ))
            .requires(InterfaceRef::with_bindings(
                "Api",
                Bindings::new().bind_lit("Secure", true).bind_lit("Level", 2i64),
            ))
            .behavior(Behavior::new().cpu_per_request_ms(0.2).message_bytes(1024, 1024)),
    )
}

/// A random two-to-four-site network with mixed link security.
fn random_net(sites: usize, per_site: usize, seeds: &[u8]) -> Network {
    let mut net = Network::new();
    let mut all = Vec::new();
    for s in 0..sites {
        let mut site_nodes = Vec::new();
        for n in 0..per_site {
            let id = net.add_node(
                format!("s{s}n{n}"),
                format!("site{s}"),
                1.0 + (seeds[(s * per_site + n) % seeds.len()] % 3) as f64,
                Credentials::new(),
            );
            site_nodes.push(id);
        }
        for w in site_nodes.windows(2) {
            net.add_link(
                w[0],
                w[1],
                SimDuration::from_micros(100),
                1e8,
                Credentials::new().with("Secure", true),
            );
        }
        all.push(site_nodes);
    }
    for s in 1..sites {
        let secure = seeds[s % seeds.len()].is_multiple_of(2);
        let latency = 10 + (seeds[(s * 3) % seeds.len()] as u64 % 200);
        net.add_link(
            all[s - 1][0],
            all[s][0],
            SimDuration::from_millis(latency),
            8e6 + (seeds[(s * 5) % seeds.len()] as f64) * 1e6,
            Credentials::new().with("Secure", secure),
        );
    }
    net
}

fn translator() -> ps_net::MappingTranslator {
    ps_net::MappingTranslator::new()
        .link_mapping(ps_net::Mapping::Copy {
            credential: "Secure".into(),
            property: "Secure".into(),
            default: ps_spec::PropertyValue::Bool(false),
        })
        .node_mapping(ps_net::Mapping::Constant {
            property: "Secure".into(),
            value: ps_spec::PropertyValue::Bool(true),
        })
}

fn plan_with(
    spec: &ServiceSpec,
    net: &Network,
    request: &ServiceRequest,
    algorithm: Algorithm,
    objective: Objective,
) -> Option<f64> {
    let planner = Planner::with_config(
        spec.clone(),
        PlannerConfig {
            algorithm,
            objective,
            limits: LinkageLimits {
                max_repeats: 1,
                max_depth: 6,
                max_graphs: 512,
            },
            ..Default::default()
        },
    );
    planner
        .plan(net, &translator(), request)
        .ok()
        .map(|p| p.objective_value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exhaustive_and_branch_and_bound_agree(
        sites in 2usize..4,
        per_site in 1usize..3,
        relays in 1usize..3,
        rrf in prop::sample::select(vec![0.1, 0.5, 1.0]),
        seeds in prop::collection::vec(any::<u8>(), 8..16),
    ) {
        let spec = random_spec(relays, rrf, true);
        let net = random_net(sites, per_site, &seeds);
        let server = net.find_node("s0n0").expect("exists");
        let client = net
            .node_ids()
            .last()
            .expect("nodes");
        let request = ServiceRequest::new("Api", client)
            .rate(2.0)
            .pin("Server", server)
            .origin(server);
        let a = plan_with(&spec, &net, &request, Algorithm::Exhaustive, Objective::MinLatency);
        let b = plan_with(&spec, &net, &request, Algorithm::PartialOrder, Objective::MinLatency);
        match (a, b) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6, "exhaustive {x} vs pop {y}"),
            (None, None) => {}
            other => prop_assert!(false, "feasibility disagreement: {other:?}"),
        }
    }

    #[test]
    fn chain_dp_matches_the_oracle(
        sites in 2usize..4,
        relays in 1usize..3,
        rrf in prop::sample::select(vec![0.2, 1.0]),
        seeds in prop::collection::vec(any::<u8>(), 8..16),
    ) {
        // No capacity constraints: the DP reasons per component.
        let spec = random_spec(relays, rrf, false);
        let net = random_net(sites, 2, &seeds);
        let server = net.find_node("s0n0").expect("exists");
        let client = net.node_ids().last().expect("nodes");
        let request = ServiceRequest::new("Api", client)
            .rate(1.0)
            .pin("Server", server)
            .origin(server);
        let a = plan_with(&spec, &net, &request, Algorithm::Exhaustive, Objective::MinLatency);
        let b = plan_with(&spec, &net, &request, Algorithm::DpChain, Objective::MinLatency);
        match (a, b) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6, "exhaustive {x} vs dp {y}"),
            (None, None) => {}
            other => prop_assert!(false, "feasibility disagreement: {other:?}"),
        }
    }

    #[test]
    fn min_cost_objective_agrees_too(
        sites in 2usize..3,
        relays in 1usize..3,
        seeds in prop::collection::vec(any::<u8>(), 8..16),
    ) {
        let spec = random_spec(relays, 0.5, false);
        let net = random_net(sites, 2, &seeds);
        let server = net.find_node("s0n0").expect("exists");
        let client = net.node_ids().last().expect("nodes");
        let request = ServiceRequest::new("Api", client)
            .rate(1.0)
            .pin("Server", server)
            .origin(server);
        let a = plan_with(&spec, &net, &request, Algorithm::Exhaustive, Objective::MinCost);
        let b = plan_with(&spec, &net, &request, Algorithm::PartialOrder, Objective::MinCost);
        match (a, b) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-6, "exhaustive {x} vs pop {y}"),
            (None, None) => {}
            other => prop_assert!(false, "feasibility disagreement: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The planner is total: arbitrary (well-formed) specs and requests
    /// produce `Ok` or a structured error, never a panic — including
    /// cyclic requirement structures kept finite by the linkage limits.
    #[test]
    fn planner_never_panics(
        sites in 1usize..4,
        per_site in 1usize..3,
        relays in 0usize..4,
        rrf in prop::sample::select(vec![0.0, 0.3, 1.0, 2.0]),
        rate in prop::sample::select(vec![0.0, 1.0, 1e6]),
        pin_server in any::<bool>(),
        seeds in prop::collection::vec(any::<u8>(), 8..16),
    ) {
        let mut spec = random_spec(relays, rrf, true);
        // Make the relay cycle-prone: the last relay requires Api, which
        // every relay implements — enumeration must stay bounded.
        if relays > 0 {
            spec = spec.component(
                Component::new("Loop")
                    .implements(InterfaceRef::plain("Api"))
                    .requires(InterfaceRef::plain("Api")),
            );
        }
        let net = random_net(sites, per_site, &seeds);
        let client = net.node_ids().last().expect("nodes");
        let mut request = ServiceRequest::new("Api", client).rate(rate);
        if pin_server {
            if let Some(server) = net.find_node("s0n0") {
                request = request.pin("Server", server);
            }
        }
        for algorithm in [Algorithm::Exhaustive, Algorithm::PartialOrder, Algorithm::Auto] {
            let _ = plan_with(&spec, &net, &request, algorithm, Objective::MinLatency);
            let _ = plan_with(&spec, &net, &request, algorithm, Objective::MaxCapacity);
        }
    }
}
