//! Fault handling across the stack: a host crash is *detected* by
//! lease expiry, the healer quarantines the node and automatically
//! re-plans the surviving connections (no manual `connect`), and the
//! workload completes on the replacement chain. A second test guards
//! the manual [`Framework::fail_node`] path, which retires instances
//! and reports a typed [`FailReport`] immediately.

use partitionable_services::core::Framework;
use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::workload::{ClusterConfig, ClusterDriver};
use partitionable_services::mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use partitionable_services::net::casestudy::default_case_study;
use partitionable_services::planner::ServiceRequest;
use partitionable_services::sim::{FaultPlan, SimDuration, SimTime};
use partitionable_services::smock::{
    CoherencePolicy, DetectionMode, LeaseConfig, RetryPolicy, ServiceRegistration,
};
use partitionable_services::spec::Behavior;

fn mail_framework() -> (partitionable_services::net::CaseStudy, Framework) {
    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(
        &mut fw.server.registry,
        Keyring::new(31),
        CoherencePolicy::CountLimit(5),
    );
    fw.register_service(ServiceRegistration::new(mail_spec()).home_node(cs.mail_server));
    fw.install_primary("mail", MAIL_SERVER, cs.mail_server)
        .unwrap();
    (cs, fw)
}

fn spawn_driver(
    fw: &mut Framework,
    node: partitionable_services::net::NodeId,
    root: partitionable_services::smock::InstanceId,
    id_base: u64,
    at: SimTime,
) -> partitionable_services::smock::InstanceId {
    let driver = ClusterDriver::new(ClusterConfig {
        sends: 30,
        receives: 3,
        ..ClusterConfig::paper("alice", "bob", id_base)
    });
    let id = fw.world.instantiate(
        "driver",
        node,
        Default::default(),
        Behavior::new(),
        Box::new(driver),
        at,
    );
    fw.world.wire(id, vec![root]);
    id
}

fn driver_done(fw: &mut Framework, id: partitionable_services::smock::InstanceId) -> bool {
    fw.world
        .logic_mut(id)
        .as_any()
        .and_then(|a| a.downcast_ref::<ClusterDriver>())
        .is_some_and(|d| d.is_done())
}

/// The tentpole path: crash → lease expiry → `NodeDown` → quarantine →
/// automatic re-plan — zero manual `connect` calls after the fault.
#[test]
fn lease_detection_auto_heals_the_partner_connection() {
    let (cs, mut fw) = mail_framework();
    fw.world.enable_retry(RetryPolicy::default());
    fw.world.enable_leases(LeaseConfig::default());
    fw.world.set_fault_seed(9);

    // San Diego deploys the shared view chain; Seattle chains onto it.
    let sd_request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let sd_conn = fw.connect("mail", &sd_request).unwrap();
    let sd_handle = fw.manage("mail", sd_request, sd_conn);

    let sea_request = ServiceRequest::new(CLIENT_INTERFACE, cs.seattle_client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 1i64);
    let sea_conn = fw.connect("mail", &sea_request).unwrap();
    let sea_root = sea_conn.root;
    let sea_uses_sd = sea_conn
        .plan
        .placements
        .iter()
        .any(|p| p.node == cs.sd_client);
    assert!(sea_uses_sd, "Seattle chains through the San Diego host");
    let sea_handle = fw.manage("mail", sea_request, sea_conn);

    let sea_driver = spawn_driver(&mut fw, cs.seattle_client, sea_root, 1 << 40, SimTime::ZERO);

    // The San Diego host crashes silently mid-workload.
    let crash_at = SimTime::from_nanos(100_000_000);
    let mut plan = FaultPlan::new();
    plan.crash(crash_at, cs.sd_client.0);
    fw.world.install_fault_plan(&plan);

    // Healing loop: step virtual time, drain liveness, re-plan.
    let mut now = crash_at;
    let mut recovered = false;
    let deadline = SimTime::from_nanos(60_000_000_000);
    while now < deadline {
        now += SimDuration::from_millis(500);
        fw.run_until(now);
        let report = fw.heal();
        if report.recovered.contains(&sea_handle) {
            recovered = true;
        }
        if recovered && driver_done(&mut fw, sea_driver) {
            break;
        }
    }
    fw.run();

    // The crashed client's own connection is abandoned...
    assert!(fw.managed_connection(sd_handle).is_none());
    // ...the node was quarantined out of the planner's network view...
    assert!(!fw.world.network().node(cs.sd_client).up);
    // ...and Seattle was re-deployed off the dead host, automatically.
    assert!(recovered, "healer must re-deploy the Seattle connection");
    let healed = fw.managed_connection(sea_handle).expect("still managed");
    assert!(
        healed
            .plan
            .placements
            .iter()
            .all(|p| p.node != cs.sd_client),
        "replacement plan avoids the quarantined host"
    );
    assert!(
        driver_done(&mut fw, sea_driver),
        "the Seattle workload completes on the replacement chain"
    );
}

/// The legacy manual path: `fail_node` retires the host's instances at
/// once, reports them in a typed [`FailReport`], and a fresh connection
/// re-plans around the dead machine.
#[test]
fn manual_fail_node_reports_and_replans_around_the_host() {
    let (cs, mut fw) = mail_framework();

    let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let conn = fw.connect("mail", &request).unwrap();
    let vms_node = conn.plan.placement_of(VIEW_MAIL_SERVER).unwrap().node;
    assert_eq!(vms_node, cs.sd_client, "cache colocates with the client");

    // Run a short workload, then the client's machine crashes (taking
    // the MailClient, cache, and encryptor with it).
    let id1 = spawn_driver(&mut fw, cs.sd_client, conn.root, 1 << 40, conn.ready_at);
    fw.run();
    assert!(driver_done(&mut fw, id1));

    let report = fw.fail_node(vms_node);
    assert_eq!(report.node, vms_node);
    assert_eq!(
        report.detection,
        DetectionMode::Immediate,
        "without leases the manual path reports synchronously"
    );
    assert!(
        report.retired.len() >= 3,
        "client, cache, encryptor died: {report:?}"
    );
    for id in &report.retired {
        assert!(fw.world.is_retired(*id));
    }
    // The primary (other node) survived.
    let primary = fw
        .world
        .find_instance(MAIL_SERVER, cs.mail_server, &Default::default())
        .unwrap();
    assert!(!fw.world.is_retired(primary));

    // The user reconnects from a surviving branch machine: dead
    // instances are not attachable, so a fresh chain deploys there.
    let fallback = cs
        .network
        .site_nodes("SanDiego")
        .into_iter()
        .find(|&n| n != vms_node)
        .unwrap();
    let request2 = ServiceRequest::new(CLIENT_INTERFACE, fallback)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let conn2 = fw.connect("mail", &request2).unwrap();
    let new_vms = conn2.plan.placement_of(VIEW_MAIL_SERVER).unwrap();
    assert_ne!(new_vms.node, vms_node, "the dead host is not reused");
    assert!(conn2.deployment.created >= 3, "fresh chain deployed");

    // Service resumes: the new workload completes.
    let id2 = spawn_driver(&mut fw, fallback, conn2.root, 1 << 41, conn2.ready_at);
    fw.run();
    let d = fw
        .world
        .logic_mut(id2)
        .as_any()
        .unwrap()
        .downcast_ref::<ClusterDriver>()
        .unwrap();
    assert!(d.is_done());
    assert_eq!(d.denied, 0);
}

/// Suspect pinning: when a host's leases expire *staggered* (instances
/// granted at different times), the first `InstanceDown` verdict lands
/// while the node still looks up — its remaining expiries are in
/// flight. Redeploying a replacement chain onto that host would court
/// an immediate second failure, so the healer holds it suspect for one
/// detection window and down-weights it in the repair solve. The
/// eventual `NodeDown` verdict supersedes the suspicion (quarantine
/// already excludes the host).
#[test]
fn half_expired_hosts_are_suspect_and_avoided_for_one_lease_window() {
    let (cs, mut fw) = mail_framework();
    let lease = LeaseConfig::default();
    fw.world.enable_retry(RetryPolicy::default());
    fw.world.enable_leases(lease);
    fw.world.set_fault_seed(7);

    // San Diego's chain deploys at t=0: its instances renew on the
    // epoch grid, so a crash at 3.0s leaves their last renewal at 3.0s
    // and their leases run until 5.0s.
    let sd_request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let sd_conn = fw.connect("mail", &sd_request).unwrap();
    let sd_handle = fw.manage("mail", sd_request, sd_conn);

    // Seattle chains onto it 300ms later: its *new* instance on the
    // San Diego host (the chained decryptor) renews on a grid offset
    // by 300ms, so after the same crash its lease expires at 4.8s —
    // 200ms before the host's other leases.
    fw.run_until(SimTime::from_nanos(300_000_000));
    let sea_request = ServiceRequest::new(CLIENT_INTERFACE, cs.seattle_client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 1i64);
    let sea_conn = fw.connect("mail", &sea_request).unwrap();
    assert!(
        sea_conn
            .plan
            .placements
            .iter()
            .any(|p| p.node == cs.sd_client),
        "Seattle chains through the San Diego host"
    );
    let sea_handle = fw.manage("mail", sea_request, sea_conn);

    let crash_at = SimTime::from_nanos(3_000_000_000);
    let mut plan = FaultPlan::new();
    plan.crash(crash_at, cs.sd_client.0);
    fw.world.install_fault_plan(&plan);

    // Heal between the first expiry (~4.8s — grant times sit at each
    // deploy's ready time, so the exact grid offset is the code
    // transfer's) and the rest (5.0s): the detector has declared only
    // Seattle's decryptor dead, and the host still looks up.
    fw.run_until(SimTime::from_nanos(4_900_000_000));
    let report = fw.heal();
    assert!(
        report.quarantined.is_empty(),
        "no NodeDown verdict yet: {report:?}"
    );
    assert!(
        report.recovered.contains(&sea_handle),
        "the implicated connection redeploys immediately: {report:?}"
    );

    // The half-expired host is suspect until its *latest* reported
    // expiry plus one full detection window (each verdict refreshes
    // the clock — the host keeps failing leases)...
    let expiry = report
        .liveness
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                partitionable_services::smock::LivenessKind::InstanceDown { .. }
            )
        })
        .map(|e| e.at)
        .max()
        .expect("an InstanceDown verdict landed");
    assert!(expiry > crash_at && expiry < SimTime::from_nanos(5_000_000_000));
    assert_eq!(
        fw.suspected_hosts(),
        vec![(cs.sd_client, expiry + lease.max_detection_latency())]
    );
    // ...and the replacement chain was steered off it even though the
    // planner's network model still shows the node up.
    assert!(fw.world.network().node(cs.sd_client).up);
    let healed = fw.managed_connection(sea_handle).expect("still managed");
    assert!(
        healed
            .plan
            .placements
            .iter()
            .all(|p| p.node != cs.sd_client),
        "replacement avoids the suspect host: {:?}",
        healed.plan.placements
    );

    // The remaining leases expire at 5.0s: the NodeDown verdict
    // quarantines the host and supersedes the suspicion, and the
    // crashed client's own connection is abandoned.
    fw.run_until(SimTime::from_nanos(5_500_000_000));
    let report = fw.heal();
    assert_eq!(report.quarantined, vec![cs.sd_client]);
    assert!(report.abandoned.contains(&sd_handle), "{report:?}");
    assert!(fw.suspected_hosts().is_empty(), "NodeDown clears suspicion");
    assert!(!fw.world.network().node(cs.sd_client).up);
}
