//! Fault handling (the paper lists it as a required integration for "a
//! complete practical system"): a host crash kills the cache replica;
//! the next connection re-plans around the dead instances and service
//! resumes on a surviving machine.

use partitionable_services::core::Framework;
use partitionable_services::mail::spec::names::*;
use partitionable_services::mail::workload::{ClusterConfig, ClusterDriver};
use partitionable_services::mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use partitionable_services::net::casestudy::default_case_study;
use partitionable_services::planner::ServiceRequest;
use partitionable_services::smock::{CoherencePolicy, ServiceRegistration};
use partitionable_services::spec::Behavior;

#[test]
fn crashed_cache_host_is_replanned_around() {
    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(
        &mut fw.server.registry,
        Keyring::new(31),
        CoherencePolicy::CountLimit(5),
    );
    fw.register_service(ServiceRegistration::new(mail_spec()));
    fw.install_primary("mail", MAIL_SERVER, cs.mail_server)
        .unwrap();

    let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let conn = fw.connect("mail", &request).unwrap();
    let vms_node = conn.plan.placement_of(VIEW_MAIL_SERVER).unwrap().node;
    assert_eq!(vms_node, cs.sd_client, "cache colocates with the client");

    // Run a short workload, then the client's machine crashes (taking
    // the MailClient, cache, and encryptor with it).
    let d1 = ClusterDriver::new(ClusterConfig {
        sends: 20,
        receives: 0,
        ..ClusterConfig::paper("alice", "bob", 1 << 40)
    });
    let id1 = fw.world.instantiate(
        "driver-1",
        cs.sd_client,
        Default::default(),
        Behavior::new(),
        Box::new(d1),
        conn.ready_at,
    );
    fw.world.wire(id1, vec![conn.root]);
    fw.run();

    let failed = fw.world.fail_node(vms_node);
    assert!(
        failed.len() >= 3,
        "client, cache, encryptor died: {failed:?}"
    );
    for id in &failed {
        assert!(fw.world.is_retired(*id));
    }
    // The primary (other node) survived.
    let primary = fw
        .world
        .find_instance(MAIL_SERVER, cs.mail_server, &Default::default())
        .unwrap();
    assert!(!fw.world.is_retired(primary));

    // The user reconnects from a surviving branch machine: dead
    // instances are not attachable, so a fresh chain deploys there.
    let fallback = cs
        .network
        .site_nodes("SanDiego")
        .into_iter()
        .find(|&n| n != vms_node)
        .unwrap();
    let request2 = ServiceRequest::new(CLIENT_INTERFACE, fallback)
        .rate(10.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let conn2 = fw.connect("mail", &request2).unwrap();
    let new_vms = conn2.plan.placement_of(VIEW_MAIL_SERVER).unwrap();
    assert_ne!(new_vms.node, vms_node, "the dead host is not reused");
    assert!(conn2.deployment.created >= 3, "fresh chain deployed");

    // Service resumes: the new workload completes.
    let d2 = ClusterDriver::new(ClusterConfig {
        sends: 20,
        receives: 2,
        ..ClusterConfig::paper("alice", "bob", 1 << 41)
    });
    let id2 = fw.world.instantiate(
        "driver-2",
        fallback,
        Default::default(),
        Behavior::new(),
        Box::new(d2),
        conn2.ready_at,
    );
    fw.world.wire(id2, vec![conn2.root]);
    fw.run();
    let d = fw
        .world
        .logic_mut(id2)
        .as_any()
        .unwrap()
        .downcast_ref::<ClusterDriver>()
        .unwrap();
    assert!(d.is_done());
    assert_eq!(d.denied, 0);
}
