//! # ps-drbac — decentralized role-based access control
//!
//! Section 6 of the paper sketches how its service-specific credential →
//! property translation should become service-independent: express
//! network properties, service properties, and the translation between
//! them as *credentials* in a trust-management system — their group's
//! dRBAC (Freudenthal et al., ICDCS 2002). This crate implements the
//! subset the framework needs:
//!
//! * **Roles** are named in an entity's namespace (`Company.member`).
//! * **Delegations** `[subject → role]` are issued by an entity; a
//!   delegation is *authorized* when its issuer owns the role's
//!   namespace or provably holds the role itself.
//! * **Proof search** ([`TrustStore::holds`]) answers whether an entity
//!   holds a role at a given time, walking entity→role and role→role
//!   delegations with cycle protection and validity checks.
//! * **Validity monitoring** ([`TrustStore::subscribe`],
//!   [`TrustStore::revoke`]): revocations invalidate proofs and notify
//!   subscribers, giving the framework its trigger for re-planning.
//! * **Property mapping** ([`RoleProperty`], [`DrbacTranslator`]): roles
//!   held by a node map to service-property values — the
//!   service-independent replacement for hand-written translators.

#![warn(missing_docs)]

use ps_net::{Link, Node, PropertyTranslator};
use ps_sim::SimTime;
use ps_spec::{Environment, PropertyValue};
use std::collections::BTreeSet;
use std::fmt;

/// A role in some entity's namespace, e.g. `Company.member`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Role {
    /// The namespace owner.
    pub owner: String,
    /// Role name within the namespace.
    pub name: String,
}

impl Role {
    /// `owner.name`.
    pub fn new(owner: impl Into<String>, name: impl Into<String>) -> Self {
        Role {
            owner: owner.into(),
            name: name.into(),
        }
    }

    /// Parses `Owner.Name`.
    pub fn parse(s: &str) -> Option<Role> {
        let (owner, name) = s.split_once('.')?;
        (!owner.is_empty() && !name.is_empty()).then(|| Role::new(owner, name))
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.owner, self.name)
    }
}

/// The subject of a delegation: a concrete entity or another role (role
/// → role delegation extends everyone holding the subject role).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Subject {
    /// A concrete entity (a node, a user, an organization).
    Entity(String),
    /// Everyone holding this role.
    Role(Role),
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Entity(e) => write!(f, "{e}"),
            Subject::Role(r) => write!(f, "{r}"),
        }
    }
}

/// Identifier of an issued delegation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DelegationId(pub u64);

/// A delegation credential `[subject → role]` issued by `issuer`.
#[derive(Debug, Clone)]
pub struct Delegation {
    /// Credential id.
    pub id: DelegationId,
    /// Who receives the role.
    pub subject: Subject,
    /// The role granted.
    pub role: Role,
    /// The issuing entity (must be authorized for the role).
    pub issuer: String,
    /// Expiry (None = unbounded).
    pub expires: Option<SimTime>,
    /// Whether the credential has been revoked.
    pub revoked: bool,
}

impl Delegation {
    fn is_live(&self, at: SimTime) -> bool {
        !self.revoked && self.expires.is_none_or(|e| at < e)
    }
}

/// A mapping credential: holding `role` grants the service property
/// `property = value` — the service-independent translation of Section 6.
#[derive(Debug, Clone)]
pub struct RoleProperty {
    /// The role that conveys the property.
    pub role: Role,
    /// Service property name.
    pub property: String,
    /// Value conveyed.
    pub value: PropertyValue,
}

/// The decentralized trust store: issued delegations plus property
/// mapping credentials.
#[derive(Debug, Default)]
pub struct TrustStore {
    delegations: Vec<Delegation>,
    properties: Vec<RoleProperty>,
    next_id: u64,
    /// Subscriptions: (subscriber label, delegation watched).
    subscriptions: Vec<(String, DelegationId)>,
    /// Notifications produced by revocations/expiry sweeps.
    pending_notifications: Vec<(String, DelegationId)>,
}

impl TrustStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a delegation `[subject → role]` by `issuer`. Fails when the
    /// issuer is not authorized for the role at issue time (`at`).
    pub fn delegate(
        &mut self,
        issuer: impl Into<String>,
        subject: Subject,
        role: Role,
        expires: Option<SimTime>,
        at: SimTime,
    ) -> Result<DelegationId, DelegationError> {
        let issuer = issuer.into();
        if issuer != role.owner && !self.holds(&issuer, &role, at) {
            return Err(DelegationError::Unauthorized {
                issuer,
                role: role.to_string(),
            });
        }
        let id = DelegationId(self.next_id);
        self.next_id += 1;
        self.delegations.push(Delegation {
            id,
            subject,
            role,
            issuer,
            expires,
            revoked: false,
        });
        Ok(id)
    }

    /// Adds a role → property mapping credential (issued by the role's
    /// namespace owner by construction; the caller asserts authority).
    pub fn map_property(
        &mut self,
        role: Role,
        property: impl Into<String>,
        value: impl Into<PropertyValue>,
    ) {
        self.properties.push(RoleProperty {
            role,
            property: property.into(),
            value: value.into(),
        });
    }

    /// Revokes a delegation, notifying subscribers.
    pub fn revoke(&mut self, id: DelegationId) -> bool {
        let Some(d) = self.delegations.iter_mut().find(|d| d.id == id) else {
            return false;
        };
        if d.revoked {
            return false;
        }
        d.revoked = true;
        for (who, watched) in &self.subscriptions {
            if *watched == id {
                self.pending_notifications.push((who.clone(), id));
            }
        }
        true
    }

    /// Subscribes `who` to validity changes of a delegation (the
    /// continuous-monitoring hook the paper wants for re-planning).
    pub fn subscribe(&mut self, who: impl Into<String>, id: DelegationId) {
        self.subscriptions.push((who.into(), id));
    }

    /// Drains pending revocation notifications.
    pub fn take_notifications(&mut self) -> Vec<(String, DelegationId)> {
        std::mem::take(&mut self.pending_notifications)
    }

    /// Whether `entity` provably holds `role` at time `at`.
    pub fn holds(&self, entity: &str, role: &Role, at: SimTime) -> bool {
        let mut visited = BTreeSet::new();
        self.holds_inner(entity, role, at, &mut visited)
    }

    fn holds_inner(
        &self,
        entity: &str,
        role: &Role,
        at: SimTime,
        on_path: &mut BTreeSet<(String, Role)>,
    ) -> bool {
        // Cycle guard keyed by (entity, role). The set tracks the goals
        // on the *current* proof path only — entries are removed on
        // return, so one failed sub-proof cannot poison an independent
        // sibling branch of the search.
        let key = (entity.to_owned(), role.clone());
        if !on_path.insert(key.clone()) {
            return false;
        }
        let mut proved = false;
        for d in &self.delegations {
            if &d.role != role || !d.is_live(at) {
                continue;
            }
            // Issuer authority: owner, or provably holds the role via
            // other credentials.
            if d.issuer != role.owner && !self.holds_inner(&d.issuer, role, at, on_path) {
                continue;
            }
            match &d.subject {
                Subject::Entity(e) if e == entity => {
                    proved = true;
                    break;
                }
                Subject::Role(sub_role) if self.holds_inner(entity, sub_role, at, on_path) => {
                    proved = true;
                    break;
                }
                _ => {}
            }
        }
        on_path.remove(&key);
        proved
    }

    /// All roles `entity` holds at `at` (over the roles mentioned in any
    /// credential).
    pub fn roles_of(&self, entity: &str, at: SimTime) -> Vec<Role> {
        let mut roles: BTreeSet<Role> = BTreeSet::new();
        for d in &self.delegations {
            roles.insert(d.role.clone());
        }
        roles
            .into_iter()
            .filter(|r| self.holds(entity, r, at))
            .collect()
    }

    /// The service-property environment `entity` derives from its roles
    /// (the Section 6 replacement for hand-written translators).
    pub fn derive_env(&self, entity: &str, at: SimTime) -> Environment {
        let mut env = Environment::new();
        for mapping in &self.properties {
            if self.holds(entity, &mapping.role, at) {
                // For ordered (integer) properties, keep the strongest.
                let stronger = match (env.get(&mapping.property), &mapping.value) {
                    (Some(PropertyValue::Int(old)), PropertyValue::Int(new)) => new > old,
                    (Some(_), _) => false,
                    (None, _) => true,
                };
                if stronger {
                    env.set(&mapping.property, mapping.value.clone());
                }
            }
        }
        env
    }

    /// Number of live (unrevoked, unexpired) delegations at `at`.
    pub fn live_count(&self, at: SimTime) -> usize {
        self.delegations.iter().filter(|d| d.is_live(at)).count()
    }
}

/// Why a delegation could not be issued.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DelegationError {
    /// The issuer neither owns the namespace nor holds the role.
    Unauthorized {
        /// The offending issuer.
        issuer: String,
        /// The role it tried to delegate.
        role: String,
    },
}

impl fmt::Display for DelegationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelegationError::Unauthorized { issuer, role } => {
                write!(f, "`{issuer}` is not authorized to delegate `{role}`")
            }
        }
    }
}

impl std::error::Error for DelegationError {}

/// A [`PropertyTranslator`] backed by a trust store: node identities are
/// their names, link security derives from a per-link `Secure`
/// credential exactly as with the mapping translator (links are not
/// dRBAC entities in the paper either).
pub struct DrbacTranslator<'a> {
    /// The trust store consulted for node roles.
    pub store: &'a TrustStore,
    /// Evaluation time.
    pub at: SimTime,
}

impl PropertyTranslator for DrbacTranslator<'_> {
    fn node_env(&self, node: &Node) -> Environment {
        self.store.derive_env(&node.name, self.at)
    }

    fn link_env(&self, link: &Link) -> Environment {
        let secure = link
            .credentials
            .get("Secure")
            .and_then(PropertyValue::as_bool)
            .unwrap_or(false);
        Environment::new().with("Confidentiality", secure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: SimTime = SimTime::ZERO;

    fn t(secs: u64) -> SimTime {
        SimTime::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn owner_can_delegate_directly() {
        let mut store = TrustStore::new();
        let member = Role::new("Company", "member");
        store
            .delegate(
                "Company",
                Subject::Entity("alice".into()),
                member.clone(),
                None,
                T0,
            )
            .unwrap();
        assert!(store.holds("alice", &member, T0));
        assert!(!store.holds("bob", &member, T0));
    }

    #[test]
    fn non_owner_cannot_delegate_unheld_role() {
        let mut store = TrustStore::new();
        let member = Role::new("Company", "member");
        let err = store
            .delegate(
                "mallory",
                Subject::Entity("mallory2".into()),
                member,
                None,
                T0,
            )
            .unwrap_err();
        assert!(matches!(err, DelegationError::Unauthorized { .. }));
    }

    #[test]
    fn holder_can_extend_the_role() {
        let mut store = TrustStore::new();
        let member = Role::new("Company", "member");
        store
            .delegate(
                "Company",
                Subject::Entity("alice".into()),
                member.clone(),
                None,
                T0,
            )
            .unwrap();
        // Alice (a holder) extends membership to bob.
        store
            .delegate(
                "alice",
                Subject::Entity("bob".into()),
                member.clone(),
                None,
                T0,
            )
            .unwrap();
        assert!(store.holds("bob", &member, T0));
    }

    #[test]
    fn role_to_role_delegation_chains() {
        let mut store = TrustStore::new();
        let partner = Role::new("Partner", "staff");
        let guest = Role::new("Company", "guest");
        store
            .delegate(
                "Partner",
                Subject::Entity("carol".into()),
                partner.clone(),
                None,
                T0,
            )
            .unwrap();
        // Company grants its guest role to all Partner.staff holders.
        store
            .delegate("Company", Subject::Role(partner), guest.clone(), None, T0)
            .unwrap();
        assert!(store.holds("carol", &guest, T0));
        assert!(!store.holds("dave", &guest, T0));
    }

    #[test]
    fn expiry_invalidates_proofs() {
        let mut store = TrustStore::new();
        let member = Role::new("Company", "member");
        store
            .delegate(
                "Company",
                Subject::Entity("alice".into()),
                member.clone(),
                Some(t(10)),
                T0,
            )
            .unwrap();
        assert!(store.holds("alice", &member, t(9)));
        assert!(!store.holds("alice", &member, t(10)));
    }

    #[test]
    fn revocation_invalidates_and_notifies() {
        let mut store = TrustStore::new();
        let member = Role::new("Company", "member");
        let id = store
            .delegate(
                "Company",
                Subject::Entity("alice".into()),
                member.clone(),
                None,
                T0,
            )
            .unwrap();
        store.subscribe("planner", id);
        assert!(store.revoke(id));
        assert!(!store.holds("alice", &member, T0));
        assert_eq!(store.take_notifications(), vec![("planner".into(), id)]);
        // Second revoke is a no-op.
        assert!(!store.revoke(id));
    }

    #[test]
    fn revoking_the_middle_of_a_chain_breaks_it() {
        let mut store = TrustStore::new();
        let member = Role::new("Company", "member");
        let alice_id = store
            .delegate(
                "Company",
                Subject::Entity("alice".into()),
                member.clone(),
                None,
                T0,
            )
            .unwrap();
        store
            .delegate(
                "alice",
                Subject::Entity("bob".into()),
                member.clone(),
                None,
                T0,
            )
            .unwrap();
        assert!(store.holds("bob", &member, T0));
        // Alice loses membership: her issuance of bob no longer proves.
        store.revoke(alice_id);
        assert!(!store.holds("bob", &member, T0));
    }

    #[test]
    fn cyclic_role_delegations_terminate() {
        let mut store = TrustStore::new();
        let a = Role::new("A", "r");
        let b = Role::new("B", "r");
        store
            .delegate("A", Subject::Role(b.clone()), a.clone(), None, T0)
            .unwrap();
        store
            .delegate("B", Subject::Role(a.clone()), b.clone(), None, T0)
            .unwrap();
        assert!(!store.holds("nobody", &a, T0));
    }

    #[test]
    fn derive_env_keeps_strongest_value() {
        let mut store = TrustStore::new();
        let member = Role::new("Company", "member");
        let officer = Role::new("Company", "officer");
        store
            .delegate(
                "Company",
                Subject::Entity("ny-0".into()),
                member.clone(),
                None,
                T0,
            )
            .unwrap();
        store
            .delegate(
                "Company",
                Subject::Entity("ny-0".into()),
                officer.clone(),
                None,
                T0,
            )
            .unwrap();
        store.map_property(member, "TrustLevel", 3i64);
        store.map_property(officer, "TrustLevel", 5i64);
        let env = store.derive_env("ny-0", T0);
        assert_eq!(env.get("TrustLevel"), Some(&PropertyValue::Int(5)));
    }

    #[test]
    fn roles_of_lists_held_roles() {
        let mut store = TrustStore::new();
        let member = Role::new("Company", "member");
        let guest = Role::new("Company", "guest");
        store
            .delegate(
                "Company",
                Subject::Entity("alice".into()),
                member.clone(),
                None,
                T0,
            )
            .unwrap();
        store
            .delegate("Company", Subject::Entity("bob".into()), guest, None, T0)
            .unwrap();
        assert_eq!(store.roles_of("alice", T0), vec![member]);
    }

    #[test]
    fn role_parsing() {
        assert_eq!(
            Role::parse("Company.member"),
            Some(Role::new("Company", "member"))
        );
        assert_eq!(Role::parse("nodot"), None);
        assert_eq!(Role::new("A", "b").to_string(), "A.b");
    }
}

impl TrustStore {
    /// Sweeps for credentials that expired by `now`, notifying their
    /// subscribers once each (the "continuous monitoring of credential
    /// validity" hook of Section 6). Returns the expired ids.
    pub fn expire_sweep(&mut self, now: SimTime) -> Vec<DelegationId> {
        let mut expired = Vec::new();
        for d in &mut self.delegations {
            if d.revoked {
                continue;
            }
            if d.expires.is_some_and(|e| now >= e) {
                d.revoked = true;
                expired.push(d.id);
            }
        }
        for id in &expired {
            for (who, watched) in &self.subscriptions {
                if watched == id {
                    self.pending_notifications.push((who.clone(), *id));
                }
            }
        }
        expired
    }
}

#[cfg(test)]
mod expiry_tests {
    use super::*;

    #[test]
    fn expire_sweep_notifies_and_invalidates() {
        let mut store = TrustStore::new();
        let role = Role::new("Org", "r");
        let t5 = SimTime::from_nanos(5_000_000_000);
        let t9 = SimTime::from_nanos(9_000_000_000);
        let id = store
            .delegate(
                "Org",
                Subject::Entity("n".into()),
                role.clone(),
                Some(t5),
                SimTime::ZERO,
            )
            .unwrap();
        store.subscribe("planner", id);
        assert!(store.expire_sweep(SimTime::from_nanos(1)).is_empty());
        let expired = store.expire_sweep(t9);
        assert_eq!(expired, vec![id]);
        assert!(!store.holds("n", &role, t9));
        assert_eq!(store.take_notifications(), vec![("planner".into(), id)]);
        // Idempotent.
        assert!(store.expire_sweep(t9).is_empty());
    }
}
