//! Two-tier calendar event queue for the discrete-event engine.
//!
//! A single [`BinaryHeap`] costs `O(log n)` per operation with `n` the
//! *total* pending population; thousand-node worlds with open-loop client
//! drivers keep hundreds of thousands of timers in flight and the heap
//! constant dominates the run. [`CalendarQueue`] splits the pending set
//! by firing time instead:
//!
//! - **current** — a small heap holding every entry whose bucket index is
//!   at or before the cursor. The global minimum always lives here, so a
//!   pop is `O(log current)` with `current` typically a handful of
//!   near-simultaneous entries.
//! - **wheel** — `SLOT_COUNT` unsorted slots of [`BUCKET_WIDTH_NS`]-wide
//!   buckets covering the near future. A push into the wheel is `O(1)`;
//!   a slot is only sorted (by being dumped into `current`) when the
//!   cursor reaches it.
//! - **overflow** — a heap for entries beyond the wheel horizon. Far
//!   timers (lease expiries, chaos faults) are pushed once and touched
//!   again only when the cursor approaches them.
//!
//! The ordering contract is exactly the old heap's: entries pop in
//! ascending `(at, seq)` order, so two entries at the same instant fire
//! in scheduling order. The equivalence is pinned by a randomized
//! property test against a reference [`BinaryHeap`] below.
//!
//! Invariants (maintained by [`CalendarQueue::push`] and the refill step
//! in [`CalendarQueue::pop`]):
//!
//! 1. every entry in `current` has `bucket(at) <= cursor`;
//! 2. every entry in a wheel slot or in `overflow` has
//!    `bucket(at) > cursor`;
//! 3. a wheel slot holds only entries of a single bucket index (pushes
//!    land within one wheel revolution of the cursor, and the cursor
//!    drains each slot as it passes).
//!
//! (1) + (2) mean `current`'s minimum is the global minimum whenever
//! `current` is non-empty, because bucket indices are monotone in `at`.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Width of one calendar bucket: 2^19 ns ≈ 524 µs (a power of two so
/// the bucket index compiles to a shift).
const BUCKET_WIDTH_NS: u64 = 1 << 19;
/// Number of wheel slots; the wheel horizon is
/// `SLOT_COUNT * BUCKET_WIDTH_NS` ≈ 2.1 s of virtual time.
const SLOT_COUNT: u64 = 4096;

/// Bucket index of a firing time.
#[inline]
fn bucket(at: SimTime) -> u64 {
    at.as_nanos() / BUCKET_WIDTH_NS
}

/// A scheduled entry: ordered by `(at, seq)` so same-instant entries
/// keep FIFO scheduling order.
#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The two-tier queue. See the module docs for the structure and
/// invariants.
#[derive(Debug)]
pub(crate) struct CalendarQueue<E> {
    current: BinaryHeap<Reverse<Scheduled<E>>>,
    slots: Vec<Vec<Scheduled<E>>>,
    /// Total entries across all wheel slots.
    in_slots: usize,
    overflow: BinaryHeap<Reverse<Scheduled<E>>>,
    /// Bucket index the wheel has advanced to.
    cursor: u64,
}

impl<E> CalendarQueue<E> {
    pub(crate) fn new() -> Self {
        CalendarQueue {
            current: BinaryHeap::new(),
            slots: (0..SLOT_COUNT).map(|_| Vec::new()).collect(),
            in_slots: 0,
            overflow: BinaryHeap::new(),
            cursor: 0,
        }
    }

    /// Total pending entries.
    pub(crate) fn len(&self) -> usize {
        self.current.len() + self.in_slots + self.overflow.len()
    }

    /// Inserts an entry. The engine clamps firing times to `now`, so a
    /// push never lands before the cursor's bucket; even if one did
    /// (same bucket as the cursor), routing it to `current` keeps the
    /// invariants.
    pub(crate) fn push(&mut self, entry: Scheduled<E>) {
        let b = bucket(entry.at);
        if b <= self.cursor {
            self.current.push(Reverse(entry));
        } else if b - self.cursor < SLOT_COUNT {
            self.slots[(b % SLOT_COUNT) as usize].push(entry);
            self.in_slots += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Advances the cursor until `current` holds the global minimum
    /// (or the queue is empty). Each wheel entry is moved exactly once,
    /// so the sweep is amortized `O(1)` per entry plus at most one
    /// wheel revolution of empty-slot checks.
    fn refill(&mut self) {
        while self.current.is_empty() && (self.in_slots > 0 || !self.overflow.is_empty()) {
            if self.in_slots == 0 {
                // The wheel is empty: jump straight to the earliest
                // overflow bucket instead of sweeping empty slots.
                let Reverse(head) = self.overflow.peek().expect("overflow checked non-empty");
                self.cursor = bucket(head.at);
            } else {
                self.cursor += 1;
            }
            let slot = std::mem::take(&mut self.slots[(self.cursor % SLOT_COUNT) as usize]);
            self.in_slots -= slot.len();
            for entry in slot {
                self.current.push(Reverse(entry));
            }
            // Overflow entries whose bucket the cursor reached (pushed
            // beyond the horizon of an *earlier* cursor) become current.
            while self
                .overflow
                .peek()
                .is_some_and(|Reverse(head)| bucket(head.at) <= self.cursor)
            {
                let Reverse(entry) = self.overflow.pop().expect("peeked entry must pop");
                self.current.push(Reverse(entry));
            }
        }
    }

    /// Removes and returns the `(at, seq)`-minimal entry.
    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        self.refill();
        self.current.pop().map(|Reverse(entry)| entry)
    }

    /// Firing time of the minimal entry without removing it. Takes
    /// `&mut self` because locating the minimum may advance the wheel.
    pub(crate) fn min_time(&mut self) -> Option<SimTime> {
        self.refill();
        self.current.peek().map(|Reverse(entry)| entry.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use crate::time::SimDuration;

    fn entry(at_ns: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            at: SimTime::from_nanos(at_ns),
            seq,
            event: seq,
        }
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(entry(500, 0));
        q.push(entry(100, 1));
        q.push(entry(100, 2));
        q.push(entry(BUCKET_WIDTH_NS * 10_000, 3)); // far future → overflow
        q.push(entry(BUCKET_WIDTH_NS * 8, 4)); // near future → wheel
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|s| s.seq).collect();
        assert_eq!(order, vec![1, 2, 0, 4, 3]);
    }

    #[test]
    fn min_time_does_not_disturb_order() {
        let mut q = CalendarQueue::new();
        q.push(entry(BUCKET_WIDTH_NS * 100, 0));
        q.push(entry(7, 1));
        assert_eq!(q.min_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(
            q.min_time(),
            Some(SimTime::from_nanos(BUCKET_WIDTH_NS * 100))
        );
        assert_eq!(q.pop().unwrap().seq, 0);
        assert_eq!(q.min_time(), None);
        assert_eq!(q.len(), 0);
    }

    /// Property: across randomized interleaved push/pop schedules the
    /// calendar queue pops in exactly the reference `BinaryHeap`'s
    /// `(at, seq)` order — including same-instant FIFO ties, horizon
    /// crossings, and pushes into the past of the cursor.
    #[test]
    fn equivalent_to_binary_heap_on_random_schedules() {
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from_u64(seed).derive("calendar-equiv");
            let mut calendar: CalendarQueue<u64> = CalendarQueue::new();
            let mut reference: BinaryHeap<Reverse<Scheduled<u64>>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = SimTime::ZERO;
            for _ in 0..2_000 {
                if rng.next_below(100) < 60 || reference.is_empty() {
                    // Push with a horizon-spanning delay mix: same
                    // instant, sub-bucket, in-wheel, and far overflow.
                    let delay = match rng.next_below(4) {
                        0 => 0,
                        1 => rng.next_below(BUCKET_WIDTH_NS),
                        2 => rng.next_below(BUCKET_WIDTH_NS * SLOT_COUNT),
                        _ => rng.next_below(BUCKET_WIDTH_NS * SLOT_COUNT * 64),
                    };
                    let at = now + SimDuration::from_nanos(delay);
                    calendar.push(Scheduled {
                        at,
                        seq,
                        event: seq,
                    });
                    reference.push(Reverse(Scheduled {
                        at,
                        seq,
                        event: seq,
                    }));
                    seq += 1;
                } else {
                    let got = calendar.pop().expect("calendar has entries");
                    let Reverse(want) = reference.pop().expect("reference has entries");
                    assert_eq!(
                        (got.at, got.seq),
                        (want.at, want.seq),
                        "seed {seed}: calendar diverged from heap order"
                    );
                    now = got.at;
                }
            }
            // Drain both; the tails must match too.
            while let Some(got) = calendar.pop() {
                let Reverse(want) = reference.pop().expect("reference drains in lockstep");
                assert_eq!(
                    (got.at, got.seq),
                    (want.at, want.seq),
                    "seed {seed}: drain tail"
                );
            }
            assert!(reference.is_empty());
            assert_eq!(calendar.len(), 0);
        }
    }
}
