//! # ps-sim — deterministic discrete-event simulation substrate
//!
//! The paper's evaluation ran on a Pentium-III testbed whose links were
//! shaped by a Click modular-router configuration (Section 4). This crate
//! is that substrate's stand-in: a deterministic virtual-time engine
//! ([`Engine`]) with store-and-forward link models ([`LinkModel`]) and
//! FIFO CPU models ([`CpuModel`]), plus the measurement machinery
//! ([`stats`]) and a version-stable random-number generator ([`Rng`])
//! that make every experiment exactly reproducible from a seed.
//!
//! ```
//! use ps_sim::prelude::*;
//!
//! // One client sends a 1 MB message over an 8 Mb/s, 400 ms link.
//! let mut link = LinkModel::new(SimDuration::from_millis(400), 8e6);
//! let mut engine: Engine<&str> = Engine::new();
//! let arrive = link.transmit(engine.now(), 1_000_000);
//! engine.schedule_at(arrive, "delivered");
//! let mut seen = Vec::new();
//! engine.run(&mut seen, |_, seen, e| seen.push(e));
//! assert_eq!(seen, ["delivered"]);
//! assert_eq!(engine.now().as_millis_f64(), 1400.0);
//! ```

#![warn(missing_docs)]

mod calendar;
pub mod engine;
pub mod fault;
pub mod resources;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::Engine;
pub use fault::{ChaosConfig, FaultDomain, FaultEvent, FaultKind, FaultPlan};
pub use ps_trace::Tracer;
pub use resources::{CpuModel, LinkModel};
pub use rng::Rng;
pub use stats::{LogHistogram, Percentiles, Summary, TimeSeries};
pub use time::{SimDuration, SimTime};

/// Convenience prelude for simulation users.
pub mod prelude {
    pub use crate::engine::Engine;
    pub use crate::fault::{ChaosConfig, FaultDomain, FaultEvent, FaultKind, FaultPlan};
    pub use crate::resources::{CpuModel, LinkModel};
    pub use crate::rng::Rng;
    pub use crate::stats::{LogHistogram, Percentiles, Summary, TimeSeries};
    pub use crate::time::{SimDuration, SimTime};
    pub use ps_trace::Tracer;
}
