//! A small, deterministic random-number generator.
//!
//! The engine needs reproducible streams that are stable across library
//! versions and platforms, so we implement xoshiro256** (Blackman &
//! Vigna) seeded through SplitMix64 rather than depending on an external
//! generator's unstable stream. Every experiment in the benchmark harness
//! passes an explicit seed; re-running with the same seed reproduces every
//! figure bit-for-bit.

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        Rng { state }
    }

    /// Derives an independent stream for a named sub-experiment: hashes the
    /// label into the seed so that adding one workload does not perturb the
    /// stream of another.
    pub fn derive(&self, label: &str) -> Rng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut clone = self.clone();
        Rng::seed_from_u64(h ^ clone.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)` (Lemire's method; `n` must be > 0).
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive; `lo <= hi`).
    pub fn range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        let u = 1.0 - self.next_f64(); // in (0, 1]
        -u.ln() / rate
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.next_below(items.len() as u64) as usize]
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_below_is_bounded_and_covers() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = Rng::seed_from_u64(9);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut r = Rng::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_inclusive(1, 5) {
                1 => lo_seen = true,
                5 => hi_seen = true,
                v => assert!((1..=5).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn derive_produces_independent_named_streams() {
        let base = Rng::seed_from_u64(1);
        let mut a = base.derive("workload-a");
        let mut b = base.derive("workload-b");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
