//! Virtual time for the discrete-event engine.
//!
//! Time is integer nanoseconds since simulation start, so event ordering is
//! exact and runs are bit-for-bit reproducible under a fixed seed.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is scheduled at or after it.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Constructs from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Constructs from fractional seconds (negative values clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Constructs from fractional milliseconds (negative values clamp to zero).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1e6).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Span as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(250);
        assert_eq!(t.as_millis_f64(), 250.0);
        assert_eq!((t + SimDuration::from_millis(750)).as_secs_f64(), 1.0);
        assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(250));
    }

    #[test]
    fn saturation_at_bounds() {
        assert_eq!(SimTime::ZERO - SimTime::from_nanos(5), SimDuration::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn mul_scales() {
        assert_eq!(
            SimDuration::from_millis(100).mul_f64(0.2),
            SimDuration::from_millis(20)
        );
    }
}
