//! Queueing models for links and CPUs.
//!
//! These reproduce what the paper's testbed obtained from the Click
//! modular router's traffic-shaping elements: a link imposes propagation
//! latency plus store-and-forward serialization at its configured
//! bandwidth, with FIFO queueing when transmissions overlap; a CPU serves
//! work conservatively in FIFO order at a configurable speed.

use crate::time::{SimDuration, SimTime};

/// A traffic-shaped, FIFO network link.
///
/// `transmit` computes when a message of a given size, submitted `now`,
/// finishes arriving at the far end: serialization starts when the link is
/// free, takes `bytes * 8 / bandwidth`, and delivery completes one
/// propagation `latency` later. The model is the classic
/// store-and-forward pipe used by Click's shaping elements.
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth in bits per second.
    pub bandwidth_bps: f64,
    next_free: SimTime,
    bytes_carried: u64,
    transmissions: u64,
    busy: SimDuration,
}

impl LinkModel {
    /// Creates a link with the given latency and bandwidth (bits/second).
    pub fn new(latency: SimDuration, bandwidth_bps: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        LinkModel {
            latency,
            bandwidth_bps,
            next_free: SimTime::ZERO,
            bytes_carried: 0,
            transmissions: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Serialization time for `bytes` on this link.
    pub fn serialization(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Submits a transmission at `now`; returns the arrival time at the
    /// far end. Accounts queueing if the link is still serializing an
    /// earlier message.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.next_free);
        let ser = self.serialization(bytes);
        self.next_free = start + ser;
        self.bytes_carried += bytes;
        self.transmissions += 1;
        self.busy += ser;
        self.next_free + self.latency
    }

    /// Arrival time a transmission *would* have, without reserving the
    /// link (used by the planner's load estimates).
    pub fn peek_transmit(&self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.next_free);
        start + self.serialization(bytes) + self.latency
    }

    /// Charges `count` background transmissions of `bytes` each (e.g.
    /// lease renewals) to the link's utilization accounting — bytes,
    /// transmission count, and serialization busy time — without
    /// occupying the shaping queue, so foreground traffic already in
    /// flight is never delayed by bookkeeping traffic modelled in
    /// aggregate.
    pub fn charge_background(&mut self, count: u64, bytes: u64) {
        if count == 0 {
            return;
        }
        self.bytes_carried += count * bytes;
        self.transmissions += count;
        let ser = self.serialization(bytes);
        self.busy += SimDuration::from_nanos(ser.as_nanos().saturating_mul(count));
    }

    /// When the link next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total bytes carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Number of transmissions so far.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Cumulative serialization (busy) time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }
}

/// A FIFO CPU serving work at a configurable relative speed.
///
/// `speed = 1.0` means a job declared as `k` ms of CPU takes `k` ms;
/// `speed = 2.0` halves it.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Relative speed multiplier.
    pub speed: f64,
    next_free: SimTime,
    jobs: u64,
    busy: SimDuration,
}

impl CpuModel {
    /// Creates a CPU with the given relative speed.
    pub fn new(speed: f64) -> Self {
        assert!(speed > 0.0, "speed must be positive");
        CpuModel {
            speed,
            next_free: SimTime::ZERO,
            jobs: 0,
            busy: SimDuration::ZERO,
        }
    }

    /// Service time for a job declared as `cpu_ms` milliseconds at unit
    /// speed.
    pub fn service_time(&self, cpu_ms: f64) -> SimDuration {
        SimDuration::from_millis_f64(cpu_ms / self.speed)
    }

    /// Submits a job at `now`; returns its completion time (FIFO queueing
    /// behind earlier jobs).
    pub fn execute(&mut self, now: SimTime, cpu_ms: f64) -> SimTime {
        let start = now.max(self.next_free);
        let service = self.service_time(cpu_ms);
        self.next_free = start + service;
        self.jobs += 1;
        self.busy += service;
        self.next_free
    }

    /// When the CPU next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Jobs executed so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Cumulative busy time.
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_follows_bandwidth() {
        // 8 Mb/s: 1 MB takes one second.
        let link = LinkModel::new(SimDuration::ZERO, 8e6);
        assert_eq!(link.serialization(1_000_000), SimDuration::from_secs(1));
    }

    #[test]
    fn transmit_adds_latency_after_serialization() {
        let mut link = LinkModel::new(SimDuration::from_millis(400), 8e6);
        let arrive = link.transmit(SimTime::ZERO, 1_000_000);
        assert_eq!(arrive, SimTime::from_nanos(1_400_000_000));
    }

    #[test]
    fn overlapping_transmissions_queue_fifo() {
        let mut link = LinkModel::new(SimDuration::from_millis(100), 8e6);
        let a = link.transmit(SimTime::ZERO, 1_000_000); // ser 1s
        let b = link.transmit(SimTime::ZERO, 1_000_000); // queued behind a
        assert_eq!(a.as_secs_f64(), 1.1);
        assert_eq!(b.as_secs_f64(), 2.1);
    }

    #[test]
    fn idle_gap_does_not_accumulate() {
        let mut link = LinkModel::new(SimDuration::ZERO, 8e6);
        link.transmit(SimTime::ZERO, 1_000_000);
        let late = link.transmit(SimTime::from_nanos(10_000_000_000), 1_000_000);
        assert_eq!(late.as_secs_f64(), 11.0);
    }

    #[test]
    fn peek_does_not_reserve() {
        let mut link = LinkModel::new(SimDuration::ZERO, 8e6);
        let peeked = link.peek_transmit(SimTime::ZERO, 1_000_000);
        let real = link.transmit(SimTime::ZERO, 1_000_000);
        assert_eq!(peeked, real);
        assert_eq!(link.transmissions(), 1);
    }

    #[test]
    fn background_charge_never_delays_foreground() {
        let mut charged = LinkModel::new(SimDuration::ZERO, 8e6);
        let mut clean = charged.clone();
        charged.charge_background(3, 1_000_000); // 3 x 1s serialization
        assert_eq!(charged.bytes_carried(), 3_000_000);
        assert_eq!(charged.transmissions(), 3);
        assert_eq!(charged.busy_time(), SimDuration::from_secs(3));
        // Foreground arrival times are identical with and without the
        // background charge: the shaping queue is untouched.
        let a = charged.transmit(SimTime::ZERO, 1_000_000);
        let b = clean.transmit(SimTime::ZERO, 1_000_000);
        assert_eq!(a, b);
    }

    #[test]
    fn cpu_fifo_and_speed() {
        let mut cpu = CpuModel::new(2.0);
        let a = cpu.execute(SimTime::ZERO, 10.0); // 5ms at speed 2
        let b = cpu.execute(SimTime::ZERO, 10.0);
        assert_eq!(a.as_millis_f64(), 5.0);
        assert_eq!(b.as_millis_f64(), 10.0);
        assert_eq!(cpu.jobs(), 2);
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut link = LinkModel::new(SimDuration::ZERO, 8e6);
        link.transmit(SimTime::ZERO, 1_000_000); // busy 1s
        assert!((link.utilization(SimTime::from_nanos(2_000_000_000)) - 0.5).abs() < 1e-9);
    }
}
