//! Measurement collection: running summaries, percentile samplers, and
//! log-scale histograms for latency distributions.

use std::fmt;

/// Numerically stable running summary (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// Keeps every observation (bounded workloads) for exact percentiles.
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// The `q`-quantile (`0.0..=1.0`) using nearest-rank interpolation;
    /// `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median shorthand.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }
}

/// Power-of-two bucketed histogram for positive values (latencies).
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// `buckets[i]` counts values in `[2^(i-1), 2^i)` of the base unit;
    /// bucket 0 counts values below 1.
    buckets: Vec<u64>,
    count: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram covering up to 2^63 units.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; 64],
            count: 0,
        }
    }

    /// Records a value (units are caller-defined; negative values clamp
    /// to bucket 0).
    pub fn record(&mut self, value: f64) {
        let idx = if value < 1.0 {
            0
        } else {
            (value.log2().floor() as usize + 1).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterates `(bucket_upper_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (2f64.powi(i as i32), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mean_and_variance() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.571428571428571).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut p = Percentiles::new();
        for x in 1..=100 {
            p.record(x as f64);
        }
        assert_eq!(p.quantile(0.0), Some(1.0));
        assert_eq!(p.quantile(1.0), Some(100.0));
        let median = p.median().unwrap();
        assert!((median - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_percentiles_are_none() {
        assert_eq!(Percentiles::new().quantile(0.5), None);
    }

    #[test]
    fn log_histogram_buckets() {
        let mut h = LogHistogram::new();
        h.record(0.5); // bucket 0
        h.record(1.0); // [1,2)
        h.record(3.0); // [2,4)
        h.record(3.9);
        let buckets: Vec<_> = h.iter().collect();
        assert_eq!(h.count(), 4);
        assert_eq!(buckets, vec![(1.0, 1), (2.0, 1), (4.0, 2)]);
    }
}

/// Fixed-window time series: observations are bucketed by timestamp into
/// windows of equal width, each summarized online. Useful for
/// latency-over-time views (e.g. watching coherence flush spikes or an
/// adaptation event).
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window: crate::time::SimDuration,
    windows: Vec<Summary>,
}

impl TimeSeries {
    /// Creates a series with the given window width.
    pub fn new(window: crate::time::SimDuration) -> Self {
        assert!(window.as_nanos() > 0, "window must be positive");
        TimeSeries {
            window,
            windows: Vec::new(),
        }
    }

    /// Records `value` observed at `at`.
    pub fn record(&mut self, at: crate::time::SimTime, value: f64) {
        let idx = (at.as_nanos() / self.window.as_nanos()) as usize;
        if idx >= self.windows.len() {
            self.windows.resize_with(idx + 1, Summary::new);
        }
        self.windows[idx].record(value);
    }

    /// The window width.
    pub fn window(&self) -> crate::time::SimDuration {
        self.window
    }

    /// Number of windows (including empty gaps).
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Iterates `(window start, summary)` for non-empty windows.
    pub fn iter(&self) -> impl Iterator<Item = (crate::time::SimTime, &Summary)> {
        let width = self.window;
        self.windows
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0)
            .map(move |(i, s)| {
                (
                    crate::time::SimTime::from_nanos(i as u64 * width.as_nanos()),
                    s,
                )
            })
    }

    /// Mean per window (`None` for empty windows), in window order.
    pub fn means(&self) -> Vec<Option<f64>> {
        self.windows
            .iter()
            .map(|s| (s.count() > 0).then(|| s.mean()))
            .collect()
    }
}

#[cfg(test)]
mod timeseries_tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};

    #[test]
    fn observations_land_in_their_windows() {
        let mut ts = TimeSeries::new(SimDuration::from_millis(100));
        ts.record(SimTime::from_nanos(10_000_000), 1.0); // window 0
        ts.record(SimTime::from_nanos(150_000_000), 3.0); // window 1
        ts.record(SimTime::from_nanos(160_000_000), 5.0); // window 1
        ts.record(SimTime::from_nanos(950_000_000), 7.0); // window 9
        assert_eq!(ts.len(), 10);
        let means = ts.means();
        assert_eq!(means[0], Some(1.0));
        assert_eq!(means[1], Some(4.0));
        assert_eq!(means[2], None);
        assert_eq!(means[9], Some(7.0));
        let non_empty: Vec<_> = ts.iter().collect();
        assert_eq!(non_empty.len(), 3);
        assert_eq!(non_empty[1].0, SimTime::from_nanos(100_000_000));
    }

    #[test]
    #[should_panic]
    fn zero_window_is_rejected() {
        let _ = TimeSeries::new(SimDuration::ZERO);
    }
}
