//! The discrete-event engine.
//!
//! The engine is generic over the event type `E`. Users pump it with a
//! handler closure that receives `(&mut Engine, &mut S, E)`; handlers
//! schedule follow-on events. Two events at the same instant fire in
//! scheduling order (a monotone sequence number breaks ties), which keeps
//! runs deterministic.

use crate::time::{SimDuration, SimTime};
use ps_trace::Tracer;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A scheduled entry in the event queue.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A discrete-event simulation engine.
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    processed: u64,
    tracer: Tracer,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            processed: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer; event dispatch counts into its registry.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to `now` so causality is never
    /// violated, and debug builds assert.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, event }));
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.queue.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        self.tracer.count("sim.events", 1);
        Some((entry.at, entry.event))
    }

    /// Runs until the queue drains, handing each event to `handler`.
    pub fn run<S>(&mut self, state: &mut S, mut handler: impl FnMut(&mut Self, &mut S, E)) {
        while let Some((_, event)) = self.step() {
            handler(self, state, event);
        }
    }

    /// Runs until the queue drains or the clock passes `deadline`
    /// (exclusive). Events scheduled after the deadline stay queued.
    pub fn run_until<S>(
        &mut self,
        deadline: SimTime,
        state: &mut S,
        mut handler: impl FnMut(&mut Self, &mut S, E),
    ) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > deadline {
                break;
            }
            let (_, event) = self.step().expect("peeked entry must pop");
            handler(self, state, event);
        }
        self.now = self
            .now
            .max(deadline.min(self.queue.peek().map(|Reverse(h)| h.at).unwrap_or(deadline)));
    }

    /// Runs at most `max_events` events.
    pub fn run_steps<S>(
        &mut self,
        max_events: u64,
        state: &mut S,
        mut handler: impl FnMut(&mut Self, &mut S, E),
    ) {
        for _ in 0..max_events {
            match self.step() {
                Some((_, event)) => handler(self, state, event),
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimDuration::from_millis(30), 3);
        engine.schedule(SimDuration::from_millis(10), 1);
        engine.schedule(SimDuration::from_millis(20), 2);
        let mut order = Vec::new();
        engine.run(&mut order, |_, order, e| order.push(e));
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.schedule(SimDuration::from_millis(5), i);
        }
        let mut order = Vec::new();
        engine.run(&mut order, |_, order, e| order.push(e));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_follow_ons() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimDuration::from_millis(1), 0);
        let mut count = 0u32;
        engine.run(&mut count, |engine, count, e| {
            *count += 1;
            if e < 4 {
                engine.schedule(SimDuration::from_millis(1), e + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(engine.now().as_millis_f64(), 5.0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut engine: Engine<u32> = Engine::new();
        for ms in [10u64, 20, 30, 40] {
            engine.schedule(SimDuration::from_millis(ms), ms as u32);
        }
        let mut seen = Vec::new();
        engine.run_until(SimTime::from_nanos(25_000_000), &mut seen, |_, seen, e| {
            seen.push(e)
        });
        assert_eq!(seen, vec![10, 20]);
        assert_eq!(engine.pending(), 2);
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule(SimDuration::from_secs(2), ());
        let mut t = SimTime::ZERO;
        engine.run(&mut t, |engine, t, _| *t = engine.now());
        assert_eq!(t.as_secs_f64(), 2.0);
    }

    #[test]
    fn run_steps_limits_work() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.schedule(SimDuration::from_millis(i as u64), i);
        }
        let mut n = 0u32;
        engine.run_steps(3, &mut n, |_, n, _| *n += 1);
        assert_eq!(n, 3);
        assert_eq!(engine.pending(), 7);
    }
}
