//! The discrete-event engine.
//!
//! The engine is generic over the event type `E`. Users pump it with a
//! handler closure that receives `(&mut Engine, &mut S, E)`; handlers
//! schedule follow-on events. Two events at the same instant fire in
//! scheduling order (a monotone sequence number breaks ties), which keeps
//! runs deterministic.

use crate::calendar::{CalendarQueue, Scheduled};
use crate::time::{SimDuration, SimTime};
use ps_trace::Tracer;

/// A discrete-event simulation engine.
///
/// Pending events live in a two-tier [`CalendarQueue`] (near-future
/// bucket wheel plus far-future overflow heap) that preserves the exact
/// `(at, seq)` pop order of a binary heap at `O(1)` amortized cost per
/// event instead of `O(log pending)`.
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    queue: CalendarQueue<E>,
    processed: u64,
    tracer: Tracer,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: CalendarQueue::new(),
            processed: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer; event dispatch counts into its registry.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` after `delay`.
    pub fn schedule(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at absolute time `at`. Scheduling in the past is a
    /// logic error; the event is clamped to `now` so causality is never
    /// violated, debug builds assert, and every clamp counts into the
    /// tracer as `sim.events_clamped` so causality bugs surface in trace
    /// reports instead of vanishing.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        if at < self.now {
            self.tracer.count("sim.events_clamped", 1);
        }
        debug_assert!(at >= self.now, "scheduling into the past");
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let entry = self.queue.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        self.tracer.count("sim.events", 1);
        Some((entry.at, entry.event))
    }

    /// Runs until the queue drains, handing each event to `handler`.
    pub fn run<S>(&mut self, state: &mut S, mut handler: impl FnMut(&mut Self, &mut S, E)) {
        while let Some((_, event)) = self.step() {
            handler(self, state, event);
        }
    }

    /// Runs until the queue drains or the clock passes `deadline`
    /// (exclusive). Events scheduled after the deadline stay queued.
    pub fn run_until<S>(
        &mut self,
        deadline: SimTime,
        state: &mut S,
        mut handler: impl FnMut(&mut Self, &mut S, E),
    ) {
        while let Some(head_at) = self.queue.min_time() {
            if head_at > deadline {
                break;
            }
            let (_, event) = self.step().expect("peeked entry must pop");
            handler(self, state, event);
        }
        self.now = self
            .now
            .max(deadline.min(self.queue.min_time().unwrap_or(deadline)));
    }

    /// Runs at most `max_events` events.
    pub fn run_steps<S>(
        &mut self,
        max_events: u64,
        state: &mut S,
        mut handler: impl FnMut(&mut Self, &mut S, E),
    ) {
        for _ in 0..max_events {
            match self.step() {
                Some((_, event)) => handler(self, state, event),
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimDuration::from_millis(30), 3);
        engine.schedule(SimDuration::from_millis(10), 1);
        engine.schedule(SimDuration::from_millis(20), 2);
        let mut order = Vec::new();
        engine.run(&mut order, |_, order, e| order.push(e));
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.schedule(SimDuration::from_millis(5), i);
        }
        let mut order = Vec::new();
        engine.run(&mut order, |_, order, e| order.push(e));
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_follow_ons() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimDuration::from_millis(1), 0);
        let mut count = 0u32;
        engine.run(&mut count, |engine, count, e| {
            *count += 1;
            if e < 4 {
                engine.schedule(SimDuration::from_millis(1), e + 1);
            }
        });
        assert_eq!(count, 5);
        assert_eq!(engine.now().as_millis_f64(), 5.0);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut engine: Engine<u32> = Engine::new();
        for ms in [10u64, 20, 30, 40] {
            engine.schedule(SimDuration::from_millis(ms), ms as u32);
        }
        let mut seen = Vec::new();
        engine.run_until(SimTime::from_nanos(25_000_000), &mut seen, |_, seen, e| {
            seen.push(e)
        });
        assert_eq!(seen, vec![10, 20]);
        assert_eq!(engine.pending(), 2);
    }

    #[test]
    fn clock_advances_to_event_times() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule(SimDuration::from_secs(2), ());
        let mut t = SimTime::ZERO;
        engine.run(&mut t, |engine, t, _| *t = engine.now());
        assert_eq!(t.as_secs_f64(), 2.0);
    }

    #[test]
    fn clamped_events_count_into_tracer() {
        let (tracer, _sink) = Tracer::memory();
        let mut engine: Engine<u32> = Engine::new();
        engine.set_tracer(tracer);
        engine.schedule(SimDuration::from_millis(5), 1);
        engine.step();
        // Scheduling into the past is a causality bug: it clamps to
        // `now`, counts `sim.events_clamped`, and asserts in debug
        // builds (absorbed here so the counter is observable).
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.schedule_at(SimTime::ZERO, 2);
        }));
        assert_eq!(result.is_err(), cfg!(debug_assertions));
        let clamped = |engine: &Engine<u32>| {
            let registry = engine
                .tracer()
                .registry()
                .expect("memory tracer has a registry");
            registry.counter("sim.events_clamped")
        };
        assert_eq!(clamped(&engine), 1);
        // On-time scheduling never counts.
        engine.schedule(SimDuration::from_millis(1), 3);
        assert_eq!(clamped(&engine), 1);
    }

    #[test]
    fn deep_future_events_round_trip_through_overflow() {
        // Exercises the calendar wheel's overflow tier end-to-end: a mix
        // of near (in-wheel) and far (overflow) timers plus follow-ons
        // scheduled from handlers must fire in exact time order.
        let mut engine: Engine<u64> = Engine::new();
        for (i, secs) in [0u64, 10, 1, 60, 3].iter().enumerate() {
            engine.schedule(SimDuration::from_secs(*secs), i as u64);
        }
        let mut order = Vec::new();
        engine.run(&mut order, |engine, order: &mut Vec<u64>, e| {
            order.push(e);
            if e == 2 {
                engine.schedule(SimDuration::from_secs(30), 99);
            }
        });
        assert_eq!(order, vec![0, 2, 4, 1, 99, 3]);
        assert_eq!(engine.now().as_secs_f64(), 60.0);
    }

    #[test]
    fn run_steps_limits_work() {
        let mut engine: Engine<u32> = Engine::new();
        for i in 0..10 {
            engine.schedule(SimDuration::from_millis(i as u64), i);
        }
        let mut n = 0u32;
        engine.run_steps(3, &mut n, |_, n, _| *n += 1);
        assert_eq!(n, 3);
        assert_eq!(engine.pending(), 7);
    }
}
