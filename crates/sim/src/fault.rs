//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a time-sorted list of fault events — node crashes
//! and restarts, link outages, and per-link message-loss windows — that a
//! host simulation schedules onto its [`Engine`](crate::Engine) before a
//! run. The plan itself is pure data: it names nodes and links by the raw
//! `u32` ids the network layer uses, so this crate stays independent of
//! the network model. Because every event carries an explicit virtual
//! time and randomized plans are generated from an explicit seed through
//! [`Rng`], a chaos scenario replays byte-identically.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node halts: hosted instances stop processing, in-flight
    /// messages to and from it are dropped, and its leases stop renewing.
    NodeCrash {
        /// Raw id of the crashed node.
        node: u32,
    },
    /// The node comes back up (with empty component state).
    NodeRestart {
        /// Raw id of the restarted node.
        node: u32,
    },
    /// The link stops carrying traffic in both directions.
    LinkDown {
        /// Raw id of the downed link.
        link: u32,
    },
    /// The link carries traffic again.
    LinkUp {
        /// Raw id of the restored link.
        link: u32,
    },
    /// Messages on the link start being dropped independently with the
    /// given probability (the link itself stays up).
    LossStart {
        /// Raw id of the lossy link.
        link: u32,
        /// Per-message drop probability in `[0, 1]`.
        loss: f64,
    },
    /// The loss window on the link ends.
    LossEnd {
        /// Raw id of the link whose loss window ends.
        link: u32,
    },
}

/// A fault scheduled at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// A named fault domain: a set of nodes and links that fail *together*
/// (a site losing power, both WAN legs of a gateway being severed, a
/// rack-level event). Domains are pure data; scheduling one through
/// [`FaultPlan::domain_down`] / [`FaultPlan::domain_outage`] expands it
/// into per-element [`FaultEvent`]s that all carry the **same** virtual
/// timestamp, so the whole group is applied before any timer or message
/// interleaves — correlated failure without changing the event model or
/// the replay contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultDomain {
    /// Human-readable name ("SanDiego", "rack-3", "SEA-wan-legs").
    pub name: String,
    /// Raw node ids that crash/restart together.
    pub nodes: Vec<u32>,
    /// Raw link ids that go down/up together.
    pub links: Vec<u32>,
}

impl FaultDomain {
    /// An empty named domain; extend with [`node`](Self::node) /
    /// [`link`](Self::link).
    pub fn new(name: impl Into<String>) -> Self {
        FaultDomain {
            name: name.into(),
            ..FaultDomain::default()
        }
    }

    /// A domain covering a set of nodes (site crash, rack power event).
    pub fn nodes(name: impl Into<String>, nodes: impl IntoIterator<Item = u32>) -> Self {
        FaultDomain {
            name: name.into(),
            nodes: nodes.into_iter().collect(),
            links: Vec::new(),
        }
    }

    /// A domain covering a set of links (severing a gateway's WAN legs).
    pub fn links(name: impl Into<String>, links: impl IntoIterator<Item = u32>) -> Self {
        FaultDomain {
            name: name.into(),
            nodes: Vec::new(),
            links: links.into_iter().collect(),
        }
    }

    /// Adds a node to the domain.
    pub fn node(mut self, node: u32) -> Self {
        self.nodes.push(node);
        self
    }

    /// Adds a link to the domain.
    pub fn link(mut self, link: u32) -> Self {
        self.links.push(link);
        self
    }

    /// True when the domain names no elements.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.links.is_empty()
    }
}

/// Shape parameters for [`FaultPlan::randomized`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Window start: no fault fires before this time.
    pub start: SimTime,
    /// Window end: every fault (including restorations) fires before this.
    pub horizon: SimTime,
    /// Node ids eligible for crash/restart cycles.
    pub crashable_nodes: Vec<u32>,
    /// Link ids eligible for flaps and loss windows.
    pub flappable_links: Vec<u32>,
    /// Number of node crash (+ later restart) cycles to draw.
    pub node_crashes: usize,
    /// Number of link down/up flaps to draw.
    pub link_flaps: usize,
    /// Number of loss windows to draw.
    pub loss_windows: usize,
    /// Loss probability range for loss windows, `[lo, hi)`.
    pub loss_range: (f64, f64),
    /// Minimum time a crashed node or downed link stays out.
    pub min_outage: SimDuration,
    /// Maximum time a crashed node or downed link stays out.
    pub max_outage: SimDuration,
    /// If false, crashed nodes stay down (no `NodeRestart` is emitted).
    pub restart_nodes: bool,
    /// Named fault domains eligible for correlated outages (whole site,
    /// gateway WAN legs, rack). Empty means no domain events are drawn.
    pub domains: Vec<FaultDomain>,
    /// Number of correlated domain outages to draw: each picks one
    /// domain, takes every member down at one instant, and restores the
    /// whole group after an outage drawn from
    /// [`min_outage`](Self::min_outage)..[`max_outage`](Self::max_outage)
    /// (nodes are restored only when
    /// [`restart_nodes`](Self::restart_nodes) is set; links always come
    /// back).
    pub domain_outages: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            start: SimTime::ZERO,
            horizon: SimTime::from_nanos(60_000_000_000),
            crashable_nodes: Vec::new(),
            flappable_links: Vec::new(),
            node_crashes: 1,
            link_flaps: 2,
            loss_windows: 1,
            loss_range: (0.05, 0.4),
            min_outage: SimDuration::from_millis(500),
            max_outage: SimDuration::from_secs(5),
            restart_nodes: true,
            domains: Vec::new(),
            domain_outages: 1,
        }
    }
}

/// A deterministic, time-sorted fault schedule.
///
/// Build one explicitly with the fluent methods, or draw one from a seed
/// with [`FaultPlan::randomized`]; either way [`FaultPlan::events`]
/// returns the events sorted by firing time (ties keep insertion order,
/// matching the engine's FIFO tie-break).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arbitrary event.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Crashes `node` at `at` (no restart).
    pub fn crash(&mut self, at: SimTime, node: u32) -> &mut Self {
        self.push(at, FaultKind::NodeCrash { node })
    }

    /// Restarts `node` at `at`.
    pub fn restart(&mut self, at: SimTime, node: u32) -> &mut Self {
        self.push(at, FaultKind::NodeRestart { node })
    }

    /// Takes `link` down at `at`.
    pub fn link_down(&mut self, at: SimTime, link: u32) -> &mut Self {
        self.push(at, FaultKind::LinkDown { link })
    }

    /// Brings `link` back up at `at`.
    pub fn link_up(&mut self, at: SimTime, link: u32) -> &mut Self {
        self.push(at, FaultKind::LinkUp { link })
    }

    /// Takes `link` down at `at` and back up after `outage`.
    pub fn flap(&mut self, at: SimTime, link: u32, outage: SimDuration) -> &mut Self {
        self.link_down(at, link).link_up(at + outage, link)
    }

    /// Takes every member of `domain` down at `at`: member nodes crash
    /// and member links go down, all at the **same** timestamp (nodes
    /// first, then links, each in the domain's listed order — the
    /// engine's FIFO tie-break preserves that order, so replay is
    /// byte-identical).
    pub fn domain_down(&mut self, at: SimTime, domain: &FaultDomain) -> &mut Self {
        for &node in &domain.nodes {
            self.crash(at, node);
        }
        for &link in &domain.links {
            self.link_down(at, link);
        }
        self
    }

    /// Restores every member of `domain` at `at` (member nodes restart,
    /// member links come back up, same ordering as
    /// [`domain_down`](Self::domain_down)).
    pub fn domain_up(&mut self, at: SimTime, domain: &FaultDomain) -> &mut Self {
        for &node in &domain.nodes {
            self.restart(at, node);
        }
        for &link in &domain.links {
            self.link_up(at, link);
        }
        self
    }

    /// A correlated outage: the whole domain goes down at `at` and is
    /// restored at `at + outage`. Set `restart_nodes` to false to leave
    /// member nodes dead (links still come back — a severed site whose
    /// hosts never rejoin).
    pub fn domain_outage(
        &mut self,
        at: SimTime,
        domain: &FaultDomain,
        outage: SimDuration,
        restart_nodes: bool,
    ) -> &mut Self {
        self.domain_down(at, domain);
        let up = at + outage;
        if restart_nodes {
            for &node in &domain.nodes {
                self.restart(up, node);
            }
        }
        for &link in &domain.links {
            self.link_up(up, link);
        }
        self
    }

    /// Drops messages on `link` with probability `loss` during
    /// `[at, at + window)`.
    pub fn loss_window(
        &mut self,
        at: SimTime,
        link: u32,
        loss: f64,
        window: SimDuration,
    ) -> &mut Self {
        self.push(at, FaultKind::LossStart { link, loss })
            .push(at + window, FaultKind::LossEnd { link })
    }

    /// Draws a randomized-but-reproducible plan: the same `seed` and
    /// `config` always produce the same schedule.
    pub fn randomized(seed: u64, config: &ChaosConfig) -> Self {
        let mut rng = Rng::seed_from_u64(seed).derive("fault-plan");
        let mut plan = FaultPlan::new();
        let span = config.horizon.since(config.start).as_nanos();
        if span == 0 {
            return plan;
        }
        let draw_at = |rng: &mut Rng| config.start + SimDuration::from_nanos(rng.next_below(span));
        let draw_outage = |rng: &mut Rng| {
            let lo = config.min_outage.as_nanos();
            let hi = config.max_outage.as_nanos().max(lo);
            SimDuration::from_nanos(lo + rng.next_below(hi - lo + 1))
        };
        if !config.crashable_nodes.is_empty() {
            for _ in 0..config.node_crashes {
                let node = *rng.choose(&config.crashable_nodes);
                let at = draw_at(&mut rng);
                plan.crash(at, node);
                if config.restart_nodes {
                    plan.restart(at + draw_outage(&mut rng), node);
                }
            }
        }
        if !config.flappable_links.is_empty() {
            for _ in 0..config.link_flaps {
                let link = *rng.choose(&config.flappable_links);
                plan.flap(draw_at(&mut rng), link, draw_outage(&mut rng));
            }
        }
        if !config.flappable_links.is_empty() {
            for _ in 0..config.loss_windows {
                let link = *rng.choose(&config.flappable_links);
                let loss = rng.range_f64(config.loss_range.0, config.loss_range.1);
                plan.loss_window(draw_at(&mut rng), link, loss, draw_outage(&mut rng));
            }
        }
        // Correlated draws come last so schedules generated by earlier
        // configs (no domains) keep their exact byte-identical replay.
        if !config.domains.is_empty() {
            for _ in 0..config.domain_outages {
                let domain = rng.choose(&config.domains);
                let at = draw_at(&mut rng);
                let outage = draw_outage(&mut rng);
                plan.domain_outage(at, domain, outage, config.restart_nodes);
            }
        }
        plan
    }

    /// The events sorted by firing time (stable: same-time events keep
    /// insertion order).
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at);
        sorted
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_events_by_time() {
        let mut plan = FaultPlan::new();
        plan.crash(SimTime::from_nanos(50), 1)
            .flap(SimTime::from_nanos(10), 7, SimDuration::from_nanos(5))
            .restart(SimTime::from_nanos(90), 1);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, [10, 15, 50, 90]);
    }

    #[test]
    fn flap_emits_matched_pair() {
        let mut plan = FaultPlan::new();
        plan.flap(SimTime::from_nanos(100), 3, SimDuration::from_nanos(40));
        let evs = plan.events();
        assert_eq!(evs[0].kind, FaultKind::LinkDown { link: 3 });
        assert_eq!(evs[1].kind, FaultKind::LinkUp { link: 3 });
        assert_eq!(evs[1].at.as_nanos() - evs[0].at.as_nanos(), 40);
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let config = ChaosConfig {
            crashable_nodes: vec![1, 2, 3],
            flappable_links: vec![10, 11],
            horizon: SimTime::from_nanos(10_000_000_000),
            ..ChaosConfig::default()
        };
        let a = FaultPlan::randomized(42, &config);
        let b = FaultPlan::randomized(42, &config);
        let c = FaultPlan::randomized(43, &config);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn randomized_respects_window() {
        let config = ChaosConfig {
            start: SimTime::from_nanos(1_000),
            horizon: SimTime::from_nanos(2_000),
            crashable_nodes: vec![0],
            flappable_links: vec![0],
            node_crashes: 4,
            link_flaps: 4,
            loss_windows: 4,
            loss_range: (0.05, 0.4),
            min_outage: SimDuration::from_nanos(1),
            max_outage: SimDuration::from_nanos(10),
            restart_nodes: true,
            ..ChaosConfig::default()
        };
        for ev in FaultPlan::randomized(7, &config).events() {
            assert!(ev.at.as_nanos() >= 1_000);
            assert!(ev.at.as_nanos() < 2_020, "restorations stay near window");
        }
    }

    #[test]
    fn domain_down_expands_members_at_one_instant_in_order() {
        let site = FaultDomain::nodes("SanDiego", [3, 4, 5]).link(9);
        let mut plan = FaultPlan::new();
        plan.domain_down(SimTime::from_nanos(100), &site);
        let evs = plan.events();
        assert_eq!(evs.len(), 4);
        assert!(evs.iter().all(|e| e.at.as_nanos() == 100));
        assert_eq!(evs[0].kind, FaultKind::NodeCrash { node: 3 });
        assert_eq!(evs[1].kind, FaultKind::NodeCrash { node: 4 });
        assert_eq!(evs[2].kind, FaultKind::NodeCrash { node: 5 });
        assert_eq!(evs[3].kind, FaultKind::LinkDown { link: 9 });
    }

    #[test]
    fn domain_outage_restores_the_whole_group() {
        let legs = FaultDomain::links("SEA-wan-legs", [1, 2]);
        let mut plan = FaultPlan::new();
        plan.domain_outage(
            SimTime::from_nanos(50),
            &legs,
            SimDuration::from_nanos(30),
            true,
        );
        let evs = plan.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].kind, FaultKind::LinkDown { link: 1 });
        assert_eq!(evs[1].kind, FaultKind::LinkDown { link: 2 });
        assert_eq!(evs[2].kind, FaultKind::LinkUp { link: 1 });
        assert_eq!(evs[3].kind, FaultKind::LinkUp { link: 2 });
        assert!(evs[2].at.as_nanos() == 80 && evs[3].at.as_nanos() == 80);
    }

    #[test]
    fn domain_outage_can_leave_nodes_dead() {
        let site = FaultDomain::nodes("rack", [7]).link(4);
        let mut plan = FaultPlan::new();
        plan.domain_outage(
            SimTime::from_nanos(10),
            &site,
            SimDuration::from_nanos(10),
            false,
        );
        let kinds: Vec<FaultKind> = plan.events().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                FaultKind::NodeCrash { node: 7 },
                FaultKind::LinkDown { link: 4 },
                FaultKind::LinkUp { link: 4 },
            ]
        );
    }

    #[test]
    fn randomized_correlated_schedules_are_deterministic() {
        let config = ChaosConfig {
            crashable_nodes: vec![1],
            flappable_links: vec![10],
            domains: vec![
                FaultDomain::nodes("site-a", [2, 3]).link(11),
                FaultDomain::links("legs-b", [12, 13]),
            ],
            domain_outages: 3,
            horizon: SimTime::from_nanos(10_000_000_000),
            ..ChaosConfig::default()
        };
        let a = FaultPlan::randomized(5, &config);
        let b = FaultPlan::randomized(5, &config);
        assert_eq!(a, b, "same seed replays byte-identically");
        assert_ne!(a, FaultPlan::randomized(6, &config));

        // Every drawn outage takes a whole domain down at one instant:
        // group the events by timestamp and check each down-burst matches
        // one domain's full member set.
        let mut crash_bursts: std::collections::BTreeMap<u64, Vec<FaultKind>> = Default::default();
        for ev in a.events() {
            if matches!(
                ev.kind,
                FaultKind::NodeCrash { .. } | FaultKind::LinkDown { .. }
            ) {
                crash_bursts
                    .entry(ev.at.as_nanos())
                    .or_default()
                    .push(ev.kind);
            }
        }
        let matches_domain = |burst: &[FaultKind], d: &FaultDomain| {
            let nodes: Vec<u32> = burst
                .iter()
                .filter_map(|k| match k {
                    FaultKind::NodeCrash { node } => Some(*node),
                    _ => None,
                })
                .collect();
            let links: Vec<u32> = burst
                .iter()
                .filter_map(|k| match k {
                    FaultKind::LinkDown { link } => Some(*link),
                    _ => None,
                })
                .collect();
            nodes == d.nodes && links == d.links
        };
        let correlated = crash_bursts
            .values()
            .filter(|burst| config.domains.iter().any(|d| matches_domain(burst, d)))
            .count();
        assert!(
            correlated >= config.domain_outages.min(crash_bursts.len()),
            "each domain outage lands as one correlated burst"
        );
    }

    #[test]
    fn empty_domains_consume_no_draws() {
        // Adding the (empty) domain fields must not perturb schedules
        // drawn by pre-domain configs: same seed, same events.
        let base = ChaosConfig {
            crashable_nodes: vec![1, 2],
            flappable_links: vec![10, 11],
            horizon: SimTime::from_nanos(10_000_000_000),
            ..ChaosConfig::default()
        };
        let with_count = ChaosConfig {
            domain_outages: 50,
            ..base.clone()
        };
        assert_eq!(
            FaultPlan::randomized(42, &base),
            FaultPlan::randomized(42, &with_count)
        );
    }

    #[test]
    fn loss_windows_carry_probability_in_range() {
        let config = ChaosConfig {
            crashable_nodes: vec![],
            flappable_links: vec![5],
            node_crashes: 0,
            link_flaps: 0,
            loss_windows: 8,
            ..ChaosConfig::default()
        };
        let plan = FaultPlan::randomized(9, &config);
        let mut seen = 0;
        for ev in plan.events() {
            if let FaultKind::LossStart { link, loss } = ev.kind {
                assert_eq!(link, 5);
                assert!((0.05..0.4).contains(&loss));
                seen += 1;
            }
        }
        assert_eq!(seen, 8);
    }
}
