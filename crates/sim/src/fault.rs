//! Deterministic fault injection plans.
//!
//! A [`FaultPlan`] is a time-sorted list of fault events — node crashes
//! and restarts, link outages, and per-link message-loss windows — that a
//! host simulation schedules onto its [`Engine`](crate::Engine) before a
//! run. The plan itself is pure data: it names nodes and links by the raw
//! `u32` ids the network layer uses, so this crate stays independent of
//! the network model. Because every event carries an explicit virtual
//! time and randomized plans are generated from an explicit seed through
//! [`Rng`], a chaos scenario replays byte-identically.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node halts: hosted instances stop processing, in-flight
    /// messages to and from it are dropped, and its leases stop renewing.
    NodeCrash {
        /// Raw id of the crashed node.
        node: u32,
    },
    /// The node comes back up (with empty component state).
    NodeRestart {
        /// Raw id of the restarted node.
        node: u32,
    },
    /// The link stops carrying traffic in both directions.
    LinkDown {
        /// Raw id of the downed link.
        link: u32,
    },
    /// The link carries traffic again.
    LinkUp {
        /// Raw id of the restored link.
        link: u32,
    },
    /// Messages on the link start being dropped independently with the
    /// given probability (the link itself stays up).
    LossStart {
        /// Raw id of the lossy link.
        link: u32,
        /// Per-message drop probability in `[0, 1]`.
        loss: f64,
    },
    /// The loss window on the link ends.
    LossEnd {
        /// Raw id of the link whose loss window ends.
        link: u32,
    },
}

/// A fault scheduled at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Shape parameters for [`FaultPlan::randomized`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Window start: no fault fires before this time.
    pub start: SimTime,
    /// Window end: every fault (including restorations) fires before this.
    pub horizon: SimTime,
    /// Node ids eligible for crash/restart cycles.
    pub crashable_nodes: Vec<u32>,
    /// Link ids eligible for flaps and loss windows.
    pub flappable_links: Vec<u32>,
    /// Number of node crash (+ later restart) cycles to draw.
    pub node_crashes: usize,
    /// Number of link down/up flaps to draw.
    pub link_flaps: usize,
    /// Number of loss windows to draw.
    pub loss_windows: usize,
    /// Loss probability range for loss windows, `[lo, hi)`.
    pub loss_range: (f64, f64),
    /// Minimum time a crashed node or downed link stays out.
    pub min_outage: SimDuration,
    /// Maximum time a crashed node or downed link stays out.
    pub max_outage: SimDuration,
    /// If false, crashed nodes stay down (no `NodeRestart` is emitted).
    pub restart_nodes: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            start: SimTime::ZERO,
            horizon: SimTime::from_nanos(60_000_000_000),
            crashable_nodes: Vec::new(),
            flappable_links: Vec::new(),
            node_crashes: 1,
            link_flaps: 2,
            loss_windows: 1,
            loss_range: (0.05, 0.4),
            min_outage: SimDuration::from_millis(500),
            max_outage: SimDuration::from_secs(5),
            restart_nodes: true,
        }
    }
}

/// A deterministic, time-sorted fault schedule.
///
/// Build one explicitly with the fluent methods, or draw one from a seed
/// with [`FaultPlan::randomized`]; either way [`FaultPlan::events`]
/// returns the events sorted by firing time (ties keep insertion order,
/// matching the engine's FIFO tie-break).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arbitrary event.
    pub fn push(&mut self, at: SimTime, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Crashes `node` at `at` (no restart).
    pub fn crash(&mut self, at: SimTime, node: u32) -> &mut Self {
        self.push(at, FaultKind::NodeCrash { node })
    }

    /// Restarts `node` at `at`.
    pub fn restart(&mut self, at: SimTime, node: u32) -> &mut Self {
        self.push(at, FaultKind::NodeRestart { node })
    }

    /// Takes `link` down at `at`.
    pub fn link_down(&mut self, at: SimTime, link: u32) -> &mut Self {
        self.push(at, FaultKind::LinkDown { link })
    }

    /// Brings `link` back up at `at`.
    pub fn link_up(&mut self, at: SimTime, link: u32) -> &mut Self {
        self.push(at, FaultKind::LinkUp { link })
    }

    /// Takes `link` down at `at` and back up after `outage`.
    pub fn flap(&mut self, at: SimTime, link: u32, outage: SimDuration) -> &mut Self {
        self.link_down(at, link).link_up(at + outage, link)
    }

    /// Drops messages on `link` with probability `loss` during
    /// `[at, at + window)`.
    pub fn loss_window(
        &mut self,
        at: SimTime,
        link: u32,
        loss: f64,
        window: SimDuration,
    ) -> &mut Self {
        self.push(at, FaultKind::LossStart { link, loss })
            .push(at + window, FaultKind::LossEnd { link })
    }

    /// Draws a randomized-but-reproducible plan: the same `seed` and
    /// `config` always produce the same schedule.
    pub fn randomized(seed: u64, config: &ChaosConfig) -> Self {
        let mut rng = Rng::seed_from_u64(seed).derive("fault-plan");
        let mut plan = FaultPlan::new();
        let span = config.horizon.since(config.start).as_nanos();
        if span == 0 {
            return plan;
        }
        let draw_at = |rng: &mut Rng| config.start + SimDuration::from_nanos(rng.next_below(span));
        let draw_outage = |rng: &mut Rng| {
            let lo = config.min_outage.as_nanos();
            let hi = config.max_outage.as_nanos().max(lo);
            SimDuration::from_nanos(lo + rng.next_below(hi - lo + 1))
        };
        if !config.crashable_nodes.is_empty() {
            for _ in 0..config.node_crashes {
                let node = *rng.choose(&config.crashable_nodes);
                let at = draw_at(&mut rng);
                plan.crash(at, node);
                if config.restart_nodes {
                    plan.restart(at + draw_outage(&mut rng), node);
                }
            }
        }
        if !config.flappable_links.is_empty() {
            for _ in 0..config.link_flaps {
                let link = *rng.choose(&config.flappable_links);
                plan.flap(draw_at(&mut rng), link, draw_outage(&mut rng));
            }
        }
        if !config.flappable_links.is_empty() {
            for _ in 0..config.loss_windows {
                let link = *rng.choose(&config.flappable_links);
                let loss = rng.range_f64(config.loss_range.0, config.loss_range.1);
                plan.loss_window(draw_at(&mut rng), link, loss, draw_outage(&mut rng));
            }
        }
        plan
    }

    /// The events sorted by firing time (stable: same-time events keep
    /// insertion order).
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at);
        sorted
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_events_by_time() {
        let mut plan = FaultPlan::new();
        plan.crash(SimTime::from_nanos(50), 1)
            .flap(SimTime::from_nanos(10), 7, SimDuration::from_nanos(5))
            .restart(SimTime::from_nanos(90), 1);
        let times: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(times, [10, 15, 50, 90]);
    }

    #[test]
    fn flap_emits_matched_pair() {
        let mut plan = FaultPlan::new();
        plan.flap(SimTime::from_nanos(100), 3, SimDuration::from_nanos(40));
        let evs = plan.events();
        assert_eq!(evs[0].kind, FaultKind::LinkDown { link: 3 });
        assert_eq!(evs[1].kind, FaultKind::LinkUp { link: 3 });
        assert_eq!(evs[1].at.as_nanos() - evs[0].at.as_nanos(), 40);
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let config = ChaosConfig {
            crashable_nodes: vec![1, 2, 3],
            flappable_links: vec![10, 11],
            horizon: SimTime::from_nanos(10_000_000_000),
            ..ChaosConfig::default()
        };
        let a = FaultPlan::randomized(42, &config);
        let b = FaultPlan::randomized(42, &config);
        let c = FaultPlan::randomized(43, &config);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!a.is_empty());
    }

    #[test]
    fn randomized_respects_window() {
        let config = ChaosConfig {
            start: SimTime::from_nanos(1_000),
            horizon: SimTime::from_nanos(2_000),
            crashable_nodes: vec![0],
            flappable_links: vec![0],
            node_crashes: 4,
            link_flaps: 4,
            loss_windows: 4,
            loss_range: (0.05, 0.4),
            min_outage: SimDuration::from_nanos(1),
            max_outage: SimDuration::from_nanos(10),
            restart_nodes: true,
        };
        for ev in FaultPlan::randomized(7, &config).events() {
            assert!(ev.at.as_nanos() >= 1_000);
            assert!(ev.at.as_nanos() < 2_020, "restorations stay near window");
        }
    }

    #[test]
    fn loss_windows_carry_probability_in_range() {
        let config = ChaosConfig {
            crashable_nodes: vec![],
            flappable_links: vec![5],
            node_crashes: 0,
            link_flaps: 0,
            loss_windows: 8,
            ..ChaosConfig::default()
        };
        let plan = FaultPlan::randomized(9, &config);
        let mut seen = 0;
        for ev in plan.events() {
            if let FaultKind::LossStart { link, loss } = ev.kind {
                assert_eq!(link, 5);
                assert!((0.05..0.4).contains(&loss));
                seen += 1;
            }
        }
        assert_eq!(seen, 8);
    }
}
