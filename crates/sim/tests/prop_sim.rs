//! Property tests on the simulation substrate's invariants, driven by
//! deterministic seeded loops over `ps_sim::Rng` (no external
//! property-testing dependency; every case is reproducible from the
//! printed seed).

use ps_sim::{CpuModel, Engine, LinkModel, Rng, SimDuration, SimTime, Summary};

const CASES: u64 = 32;

#[test]
fn engine_delivers_every_event_in_nondecreasing_time_order() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed).derive("engine-order");
        let count = 1 + rng.next_below(200) as usize;
        let delays: Vec<u64> = (0..count).map(|_| rng.next_below(1_000_000)).collect();
        let mut engine: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            engine.schedule(SimDuration::from_nanos(d), i);
        }
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        engine.run(&mut seen, |e, seen, ev| {
            assert!(e.now() >= last, "seed {seed}");
            last = e.now();
            seen.push(ev);
        });
        // Every event delivered exactly once.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..delays.len()).collect::<Vec<_>>(), "seed {seed}");
    }
}

#[test]
fn equal_time_events_fire_in_schedule_order() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed).derive("engine-fifo");
        let count = 1 + rng.next_below(100) as usize;
        let at = rng.next_below(1_000_000);
        let mut engine: Engine<usize> = Engine::new();
        for i in 0..count {
            engine.schedule(SimDuration::from_nanos(at), i);
        }
        let mut seen = Vec::new();
        engine.run(&mut seen, |_, seen, ev| seen.push(ev));
        assert_eq!(seen, (0..count).collect::<Vec<_>>(), "seed {seed}");
    }
}

#[test]
fn link_transmissions_are_fifo_and_conserve_bytes() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed).derive("link-fifo");
        let count = 1 + rng.next_below(50) as usize;
        let sizes: Vec<u64> = (0..count).map(|_| 1 + rng.next_below(999_999)).collect();
        let latency_ms = rng.next_below(500);
        let bandwidth = *rng.choose(&[1e6, 8e6, 1e8]);

        let mut link = LinkModel::new(SimDuration::from_millis(latency_ms), bandwidth);
        let mut last_arrival = SimTime::ZERO;
        let mut total = 0u64;
        for &bytes in &sizes {
            let arrival = link.transmit(SimTime::ZERO, bytes);
            // FIFO: arrivals are non-decreasing when submitted together.
            assert!(arrival >= last_arrival, "seed {seed}");
            last_arrival = arrival;
            total += bytes;
        }
        assert_eq!(link.bytes_carried(), total, "seed {seed}");
        assert_eq!(link.transmissions(), sizes.len() as u64, "seed {seed}");
        // Busy time equals the serialization of all bytes.
        let expected_busy = total as f64 * 8.0 / bandwidth;
        assert!(
            (link.busy_time().as_secs_f64() - expected_busy).abs() < 1e-3,
            "seed {seed}"
        );
        // The last arrival is exactly busy + latency (no idle gaps when
        // everything was submitted at time zero).
        let expected_last = expected_busy + SimDuration::from_millis(latency_ms).as_secs_f64();
        assert!(
            (last_arrival.as_secs_f64() - expected_last).abs() < 1e-3,
            "seed {seed}"
        );
    }
}

#[test]
fn cpu_work_is_conserved() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed).derive("cpu-conserve");
        let count = 1 + rng.next_below(50) as usize;
        let jobs: Vec<f64> = (0..count).map(|_| rng.range_f64(0.01, 100.0)).collect();
        let speed = *rng.choose(&[0.5, 1.0, 2.0, 4.0]);

        let mut cpu = CpuModel::new(speed);
        for &ms in &jobs {
            cpu.execute(SimTime::ZERO, ms);
        }
        let expected_ms: f64 = jobs.iter().sum::<f64>() / speed;
        assert!(
            (cpu.busy_time().as_millis_f64() - expected_ms).abs() < 1e-3,
            "seed {seed}"
        );
        assert_eq!(cpu.jobs(), jobs.len() as u64, "seed {seed}");
        assert!(
            (cpu.next_free().as_millis_f64() - expected_ms).abs() < 1e-3,
            "seed {seed}"
        );
    }
}

#[test]
fn summary_merge_is_order_independent() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed).derive("summary-merge");
        let count = 1 + rng.next_below(100) as usize;
        let xs: Vec<f64> = (0..count).map(|_| rng.range_f64(-1e6, 1e6)).collect();
        let split = rng.next_below(count as u64) as usize;

        let mut bulk = Summary::new();
        for &x in &xs {
            bulk.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), bulk.count(), "seed {seed}");
        assert!(
            (a.mean() - bulk.mean()).abs() < 1e-6_f64.max(bulk.mean().abs() * 1e-9),
            "seed {seed}"
        );
        assert!((a.min() - bulk.min()).abs() < 1e-9, "seed {seed}");
        assert!((a.max() - bulk.max()).abs() < 1e-9, "seed {seed}");
    }
}

#[test]
fn rng_streams_are_reproducible() {
    for base in 0..CASES {
        let seed = Rng::seed_from_u64(base).next_u64();
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed}");
        }
    }
}

#[test]
fn rng_range_respects_bounds() {
    for base in 0..CASES {
        let mut meta = Rng::seed_from_u64(base).derive("rng-range");
        let seed = meta.next_u64();
        let lo = meta.range_inclusive(-1000, -1);
        let hi = meta.range_inclusive(0, 999);
        let mut rng = Rng::seed_from_u64(seed);
        for _ in 0..256 {
            let v = rng.range_inclusive(lo, hi);
            assert!(v >= lo && v <= hi, "seed {seed} lo {lo} hi {hi}");
        }
    }
}
