//! Property tests on the simulation substrate's invariants.

use proptest::prelude::*;
use ps_sim::{CpuModel, Engine, LinkModel, SimDuration, SimTime, Summary};

proptest! {
    #[test]
    fn engine_delivers_every_event_in_nondecreasing_time_order(
        delays in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut engine: Engine<usize> = Engine::new();
        for (i, &d) in delays.iter().enumerate() {
            engine.schedule(SimDuration::from_nanos(d), i);
        }
        let mut seen = Vec::new();
        let mut last = SimTime::ZERO;
        engine.run(&mut seen, |e, seen, ev| {
            assert!(e.now() >= last);
            last = e.now();
            seen.push(ev);
        });
        // Every event delivered exactly once.
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..delays.len()).collect::<Vec<_>>());
    }

    #[test]
    fn equal_time_events_fire_in_schedule_order(
        count in 1usize..100,
        at in 0u64..1_000_000,
    ) {
        let mut engine: Engine<usize> = Engine::new();
        for i in 0..count {
            engine.schedule(SimDuration::from_nanos(at), i);
        }
        let mut seen = Vec::new();
        engine.run(&mut seen, |_, seen, ev| seen.push(ev));
        prop_assert_eq!(seen, (0..count).collect::<Vec<_>>());
    }

    #[test]
    fn link_transmissions_are_fifo_and_conserve_bytes(
        sizes in prop::collection::vec(1u64..1_000_000, 1..50),
        latency_ms in 0u64..500,
        bandwidth in prop::sample::select(vec![1e6, 8e6, 1e8]),
    ) {
        let mut link = LinkModel::new(SimDuration::from_millis(latency_ms), bandwidth);
        let mut last_arrival = SimTime::ZERO;
        let mut total = 0u64;
        for &bytes in &sizes {
            let arrival = link.transmit(SimTime::ZERO, bytes);
            // FIFO: arrivals are non-decreasing when submitted together.
            prop_assert!(arrival >= last_arrival);
            last_arrival = arrival;
            total += bytes;
        }
        prop_assert_eq!(link.bytes_carried(), total);
        prop_assert_eq!(link.transmissions(), sizes.len() as u64);
        // Busy time equals the serialization of all bytes.
        let expected_busy = total as f64 * 8.0 / bandwidth;
        prop_assert!((link.busy_time().as_secs_f64() - expected_busy).abs() < 1e-3);
        // The last arrival is exactly busy + latency (no idle gaps when
        // everything was submitted at time zero).
        let expected_last =
            expected_busy + SimDuration::from_millis(latency_ms).as_secs_f64();
        prop_assert!((last_arrival.as_secs_f64() - expected_last).abs() < 1e-3);
    }

    #[test]
    fn cpu_work_is_conserved(
        jobs in prop::collection::vec(0.01f64..100.0, 1..50),
        speed in prop::sample::select(vec![0.5, 1.0, 2.0, 4.0]),
    ) {
        let mut cpu = CpuModel::new(speed);
        for &ms in &jobs {
            cpu.execute(SimTime::ZERO, ms);
        }
        let expected_ms: f64 = jobs.iter().sum::<f64>() / speed;
        prop_assert!((cpu.busy_time().as_millis_f64() - expected_ms).abs() < 1e-3);
        prop_assert_eq!(cpu.jobs(), jobs.len() as u64);
        prop_assert!((cpu.next_free().as_millis_f64() - expected_ms).abs() < 1e-3);
    }

    #[test]
    fn summary_merge_is_order_independent(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        split in 0usize..100,
    ) {
        let split = split % xs.len().max(1);
        let mut bulk = Summary::new();
        for &x in &xs {
            bulk.record(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), bulk.count());
        prop_assert!((a.mean() - bulk.mean()).abs() < 1e-6_f64.max(bulk.mean().abs() * 1e-9));
        prop_assert!((a.min() - bulk.min()).abs() < 1e-9);
        prop_assert!((a.max() - bulk.max()).abs() < 1e-9);
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = ps_sim::Rng::seed_from_u64(seed);
        let mut b = ps_sim::Rng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_range_respects_bounds(seed in any::<u64>(), lo in -1000i64..0, hi in 0i64..1000) {
        let mut rng = ps_sim::Rng::seed_from_u64(seed);
        for _ in 0..256 {
            let v = rng.range_inclusive(lo, hi);
            prop_assert!(v >= lo && v <= hi);
        }
    }
}
