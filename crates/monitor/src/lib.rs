//! # ps-monitor — network monitoring and adaptive re-planning
//!
//! The paper's first limitation (Section 6) is its static-network
//! assumption; the proposed remedy is integration with a monitoring
//! system in the style of Remos: obtain node/link state through a
//! uniform query API, tell the planner when conditions change, and let
//! it decide whether an incremental or complete redeployment is called
//! for. This crate implements that loop over the simulated network:
//!
//! * [`NetworkMonitor`] — snapshot-diffing change detection plus
//!   Remos-like *flow* queries (latency/bottleneck between endpoints);
//! * [`affected_edges`] — which linkages of a deployed plan a set of
//!   changes touches;
//! * [`Replanner`] — revalidates the current plan under the new network
//!   and produces a replacement plan plus the [`PlanDelta`] (components
//!   to add, keep, and retire) when the old one is invalid or has
//!   degraded beyond a configurable factor.

#![warn(missing_docs)]

use ps_net::{shortest_route, LinkId, Network, NodeId, PropertyTranslator};
use ps_planner::{LoadModel, Mapper, Placement, Plan, PlanError, Planner, ServiceRequest};
use ps_sim::{SimDuration, SimTime};
use ps_trace::Tracer;
use std::fmt;

/// A detected change in the network.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkChange {
    /// A link's latency changed.
    LinkLatency {
        /// The link.
        link: LinkId,
        /// Previous latency.
        old: SimDuration,
        /// New latency.
        new: SimDuration,
    },
    /// A link's bandwidth changed.
    LinkBandwidth {
        /// The link.
        link: LinkId,
        /// Previous bandwidth (bits/s).
        old: f64,
        /// New bandwidth (bits/s).
        new: f64,
    },
    /// A link's credentials changed (e.g. `Secure` flipped).
    LinkCredentials {
        /// The link.
        link: LinkId,
    },
    /// A node's credentials changed (e.g. its trust rating).
    NodeCredentials {
        /// The node.
        node: NodeId,
    },
    /// A node's CPU speed changed.
    NodeSpeed {
        /// The node.
        node: NodeId,
        /// Previous relative speed.
        old: f64,
        /// New relative speed.
        new: f64,
    },
    /// A node went down (crash detected, e.g. through lease expiry).
    NodeDown {
        /// The node.
        node: NodeId,
    },
    /// A previously-down node came back up.
    NodeUp {
        /// The node.
        node: NodeId,
    },
    /// A link stopped carrying traffic.
    LinkDown {
        /// The link.
        link: LinkId,
    },
    /// A previously-down link came back up.
    LinkUp {
        /// The link.
        link: LinkId,
    },
}

impl fmt::Display for NetworkChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkChange::LinkLatency { link, old, new } => {
                write!(f, "{link}: latency {old} -> {new}")
            }
            NetworkChange::LinkBandwidth { link, old, new } => {
                write!(f, "{link}: bandwidth {old:.0} -> {new:.0} b/s")
            }
            NetworkChange::LinkCredentials { link } => write!(f, "{link}: credentials changed"),
            NetworkChange::NodeCredentials { node } => write!(f, "{node}: credentials changed"),
            NetworkChange::NodeSpeed { node, old, new } => {
                write!(f, "{node}: speed {old} -> {new}")
            }
            NetworkChange::NodeDown { node } => write!(f, "{node}: down"),
            NetworkChange::NodeUp { node } => write!(f, "{node}: up"),
            NetworkChange::LinkDown { link } => write!(f, "{link}: down"),
            NetworkChange::LinkUp { link } => write!(f, "{link}: up"),
        }
    }
}

/// A Remos-style flow answer: what the network currently offers between
/// two endpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowInfo {
    /// One-way latency along the selected route.
    pub latency: SimDuration,
    /// Bottleneck bandwidth along it (bits/s).
    pub bottleneck_bps: f64,
    /// Hop count.
    pub hops: usize,
}

/// Snapshot-diffing network monitor.
#[derive(Debug, Clone)]
pub struct NetworkMonitor {
    baseline: Network,
    tracer: Tracer,
}

impl NetworkMonitor {
    /// Starts monitoring from a baseline snapshot.
    pub fn new(baseline: Network) -> Self {
        NetworkMonitor {
            baseline,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer; detected changes become `monitor.change`
    /// events (via [`observe_at`](Self::observe_at)) and count into the
    /// registry.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Remos-like flow query against a current network state.
    pub fn flow(net: &Network, from: NodeId, to: NodeId) -> Option<FlowInfo> {
        let route = shortest_route(net, from, to)?;
        Some(FlowInfo {
            latency: route.latency,
            bottleneck_bps: route.bottleneck_bps,
            hops: route.hops(),
        })
    }

    /// Diffs `current` against the stored baseline, returning every
    /// change and advancing the baseline.
    pub fn observe(&mut self, current: &Network) -> Vec<NetworkChange> {
        let mut changes = Vec::new();
        for (old, new) in self.baseline.links().iter().zip(current.links()) {
            if old.latency != new.latency {
                changes.push(NetworkChange::LinkLatency {
                    link: new.id,
                    old: old.latency,
                    new: new.latency,
                });
            }
            if old.bandwidth_bps != new.bandwidth_bps {
                changes.push(NetworkChange::LinkBandwidth {
                    link: new.id,
                    old: old.bandwidth_bps,
                    new: new.bandwidth_bps,
                });
            }
            if old.credentials != new.credentials {
                changes.push(NetworkChange::LinkCredentials { link: new.id });
            }
            if old.up != new.up {
                changes.push(if new.up {
                    NetworkChange::LinkUp { link: new.id }
                } else {
                    NetworkChange::LinkDown { link: new.id }
                });
            }
        }
        for (old, new) in self.baseline.nodes().iter().zip(current.nodes()) {
            if old.credentials != new.credentials {
                changes.push(NetworkChange::NodeCredentials { node: new.id });
            }
            if old.cpu_speed != new.cpu_speed {
                changes.push(NetworkChange::NodeSpeed {
                    node: new.id,
                    old: old.cpu_speed,
                    new: new.cpu_speed,
                });
            }
            if old.up != new.up {
                changes.push(if new.up {
                    NetworkChange::NodeUp { node: new.id }
                } else {
                    NetworkChange::NodeDown { node: new.id }
                });
            }
        }
        self.baseline = current.clone();
        changes
    }

    /// Like [`observe`](Self::observe), stamping each detected change as
    /// a `monitor.change` trace event at virtual time `now`. Prefer this
    /// entry point when a tracer is installed (the untimed `observe`
    /// cannot know the simulation clock).
    pub fn observe_at(&mut self, now: SimTime, current: &Network) -> Vec<NetworkChange> {
        let changes = self.observe(current);
        if self.tracer.enabled() && !changes.is_empty() {
            self.tracer.count("monitor.changes", changes.len() as u64);
            for change in &changes {
                let (kind, subject) = match change {
                    NetworkChange::LinkLatency { link, .. } => ("link_latency", link.0 as u64),
                    NetworkChange::LinkBandwidth { link, .. } => ("link_bandwidth", link.0 as u64),
                    NetworkChange::LinkCredentials { link } => ("link_credentials", link.0 as u64),
                    NetworkChange::NodeCredentials { node } => ("node_credentials", node.0 as u64),
                    NetworkChange::NodeSpeed { node, .. } => ("node_speed", node.0 as u64),
                    NetworkChange::NodeDown { node } => ("node_down", node.0 as u64),
                    NetworkChange::NodeUp { node } => ("node_up", node.0 as u64),
                    NetworkChange::LinkDown { link } => ("link_down", link.0 as u64),
                    NetworkChange::LinkUp { link } => ("link_up", link.0 as u64),
                };
                self.tracer.instant(
                    "monitor",
                    "change",
                    now.as_nanos(),
                    vec![("kind", kind.into()), ("subject", subject.into())],
                );
            }
        }
        changes
    }
}

/// Which plan edges a set of changes touches (by link membership of
/// their routes, or by endpoint-node changes).
pub fn affected_edges(plan: &Plan, changes: &[NetworkChange]) -> Vec<usize> {
    let mut hit = Vec::new();
    for (i, edge) in plan.edges.iter().enumerate() {
        let touched = changes.iter().any(|c| match c {
            NetworkChange::LinkLatency { link, .. }
            | NetworkChange::LinkBandwidth { link, .. }
            | NetworkChange::LinkCredentials { link }
            | NetworkChange::LinkDown { link }
            | NetworkChange::LinkUp { link } => edge.route.links.contains(link),
            NetworkChange::NodeCredentials { node }
            | NetworkChange::NodeSpeed { node, .. }
            | NetworkChange::NodeDown { node }
            | NetworkChange::NodeUp { node } => {
                plan.placements[edge.from].node == *node
                    || plan.placements[edge.to].node == *node
                    || edge.route.via.contains(node)
            }
        });
        if touched {
            hit.push(i);
        }
    }
    hit
}

/// The difference between an old and a new plan, at instance
/// granularity.
#[derive(Debug, Clone, Default)]
pub struct PlanDelta {
    /// Instances the new plan adds.
    pub added: Vec<Placement>,
    /// Instances both plans share (component, node, factors equal).
    pub kept: Vec<Placement>,
    /// Instances only the old plan used (candidates for retirement once
    /// their state is reconciled — the coherence layer's job).
    pub removed: Vec<Placement>,
}

/// Computes the delta between two plans.
pub fn plan_delta(old: &Plan, new: &Plan) -> PlanDelta {
    let mut delta = PlanDelta::default();
    let same = |a: &Placement, b: &Placement| {
        a.component == b.component && a.node == b.node && a.factors == b.factors
    };
    for p in &new.placements {
        if old.placements.iter().any(|q| same(p, q)) {
            delta.kept.push(p.clone());
        } else {
            delta.added.push(p.clone());
        }
    }
    for q in &old.placements {
        if !new.placements.iter().any(|p| same(p, q)) {
            delta.removed.push(q.clone());
        }
    }
    delta
}

/// The outcome of a re-planning evaluation.
#[derive(Debug)]
pub enum ReplanDecision {
    /// The current plan is still valid and close enough to optimal.
    Keep,
    /// A better/valid deployment exists.
    Redeploy {
        /// The replacement plan (boxed: a `Plan` is large relative to
        /// the other variants).
        plan: Box<Plan>,
        /// Its difference from the old plan.
        delta: PlanDelta,
    },
    /// The old plan is invalid and no feasible replacement exists.
    Infeasible(PlanError),
}

/// Re-planning policy: revalidate, then replace when invalid or degraded.
pub struct Replanner {
    /// The planner used for replacement plans.
    pub planner: Planner,
    /// Replace the plan when its current objective exceeds the fresh
    /// optimum by this factor (1.0 = always chase the optimum).
    pub degradation_factor: f64,
    /// Tracer receiving `replan.decision` events and `replan.*` counters.
    pub tracer: Tracer,
}

impl Replanner {
    /// Creates a replanner around a configured planner.
    pub fn new(planner: Planner) -> Self {
        Replanner {
            planner,
            degradation_factor: 1.25,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer (see [`evaluate_at`](Self::evaluate_at)).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Evaluates `old` under the (possibly changed) network and decides.
    pub fn evaluate<T: PropertyTranslator + ?Sized>(
        &self,
        net: &Network,
        translator: &T,
        request: &ServiceRequest,
        old: &Plan,
    ) -> ReplanDecision {
        // Revalidate the old assignment in place.
        let mapper = Mapper::new(
            &self.planner.spec,
            net,
            translator,
            request,
            LoadModel::Accumulated,
            self.planner.config.objective,
        );
        let assignment: Vec<NodeId> = old.placements.iter().map(|p| p.node).collect();
        let still_valid = mapper.evaluate(&old.graph, &assignment);

        let fresh = self.planner.plan(net, translator, request);
        match (still_valid, fresh) {
            (Some(current), Ok(better)) => {
                if current.objective_value <= better.objective_value * self.degradation_factor {
                    ReplanDecision::Keep
                } else {
                    let delta = plan_delta(old, &better);
                    ReplanDecision::Redeploy {
                        plan: Box::new(better),
                        delta,
                    }
                }
            }
            (None, Ok(better)) => {
                let delta = plan_delta(old, &better);
                ReplanDecision::Redeploy {
                    plan: Box::new(better),
                    delta,
                }
            }
            (Some(_), Err(_)) => ReplanDecision::Keep,
            (None, Err(e)) => ReplanDecision::Infeasible(e),
        }
    }

    /// Like [`evaluate`](Self::evaluate), stamping the decision as a
    /// `replan.decision` trace event at virtual time `now` and counting
    /// it in the registry.
    pub fn evaluate_at<T: PropertyTranslator + ?Sized>(
        &self,
        now: SimTime,
        net: &Network,
        translator: &T,
        request: &ServiceRequest,
        old: &Plan,
    ) -> ReplanDecision {
        let decision = self.evaluate(net, translator, request, old);
        if self.tracer.enabled() {
            let mut fields: ps_trace::Fields = Vec::new();
            let kind = match &decision {
                ReplanDecision::Keep => "keep",
                ReplanDecision::Redeploy { delta, .. } => {
                    fields.push(("added", delta.added.len().into()));
                    fields.push(("kept", delta.kept.len().into()));
                    fields.push(("removed", delta.removed.len().into()));
                    "redeploy"
                }
                ReplanDecision::Infeasible(_) => "infeasible",
            };
            fields.insert(0, ("decision", kind.into()));
            self.tracer.count(
                match &decision {
                    ReplanDecision::Keep => "replan.keep",
                    ReplanDecision::Redeploy { .. } => "replan.redeploy",
                    ReplanDecision::Infeasible(_) => "replan.infeasible",
                },
                1,
            );
            self.tracer
                .instant("monitor", "replan", now.as_nanos(), fields);
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_net::Credentials;

    fn two_site_net(wan_latency_ms: u64) -> Network {
        let mut net = Network::new();
        let a = net.add_node("a", "s1", 1.0, Credentials::new().with("TrustRating", 5i64));
        let b = net.add_node("b", "s2", 1.0, Credentials::new().with("TrustRating", 5i64));
        net.add_link(
            a,
            b,
            SimDuration::from_millis(wan_latency_ms),
            1e7,
            Credentials::new().with("Secure", true),
        );
        net
    }

    #[test]
    fn observe_detects_latency_and_bandwidth_changes() {
        let before = two_site_net(100);
        let mut monitor = NetworkMonitor::new(before);
        let mut after = two_site_net(100);
        after.link_mut(LinkId(0)).latency = SimDuration::from_millis(300);
        after.link_mut(LinkId(0)).bandwidth_bps = 5e6;
        let changes = monitor.observe(&after);
        assert_eq!(changes.len(), 2);
        // Baseline advanced: a second observe is quiet.
        assert!(monitor.observe(&after).is_empty());
    }

    #[test]
    fn observe_detects_credential_changes() {
        let before = two_site_net(100);
        let mut monitor = NetworkMonitor::new(before);
        let mut after = two_site_net(100);
        after
            .node_mut(NodeId(1))
            .credentials
            .set("TrustRating", 1i64);
        after.link_mut(LinkId(0)).credentials.set("Secure", false);
        let changes = monitor.observe(&after);
        assert!(changes.contains(&NetworkChange::NodeCredentials { node: NodeId(1) }));
        assert!(changes.contains(&NetworkChange::LinkCredentials { link: LinkId(0) }));
    }

    #[test]
    fn observe_detects_up_flag_flips() {
        let before = two_site_net(100);
        let mut monitor = NetworkMonitor::new(before);
        let mut after = two_site_net(100);
        after.set_node_up(NodeId(1), false);
        after.set_link_up(LinkId(0), false);
        let changes = monitor.observe(&after);
        assert!(changes.contains(&NetworkChange::NodeDown { node: NodeId(1) }));
        assert!(changes.contains(&NetworkChange::LinkDown { link: LinkId(0) }));
        after.set_node_up(NodeId(1), true);
        after.set_link_up(LinkId(0), true);
        let restored = monitor.observe(&after);
        assert!(restored.contains(&NetworkChange::NodeUp { node: NodeId(1) }));
        assert!(restored.contains(&NetworkChange::LinkUp { link: LinkId(0) }));
    }

    #[test]
    fn flow_queries_report_route_properties() {
        let net = two_site_net(100);
        let flow = NetworkMonitor::flow(&net, NodeId(0), NodeId(1)).unwrap();
        assert_eq!(flow.latency, SimDuration::from_millis(100));
        assert_eq!(flow.bottleneck_bps, 1e7);
        assert_eq!(flow.hops, 1);
    }
}
