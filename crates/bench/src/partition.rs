//! The partition scenario: the case-study WAN splits mid-workload and
//! the healer serves **both sides** of the cut.
//!
//! A correlated fault domain severs every WAN leg of the Seattle
//! gateway at `split_at`: the partner site keeps running but is cut off
//! from New York and San Diego. The majority side (NY + SD) never loses
//! its route to the pinned `MailServer` and keeps operating untouched.
//! The minority side's connection is re-deployed by [`Framework::heal`]
//! onto a **degraded-mode** chain — a detached `ViewMailServer` inside
//! the Seattle component that absorbs writes locally and serves reads
//! from cache. At `restore_at` the legs come back; the next healing
//! pass *reconciles*: it re-plans cold on the merged network, re-wires
//! the detached view at the full chain so its buffered writes drain
//! upstream, then retires the duplicate instances.
//!
//! Everything in [`PartitionOutcome`] is virtual-time or event-count
//! derived; two runs with the same [`PartitionBenchConfig`] produce
//! byte-identical [`partition_json`] and byte-identical trace JSONL.

use crate::chaos::{completed_now, driver_stats, spawn_driver, DriverStats};
use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::workload::ClusterDriver;
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::casestudy::SEATTLE;
use ps_net::default_case_study;
use ps_planner::ServiceRequest;
use ps_sim::{FaultPlan, SimDuration, SimTime};
use ps_smock::{CoherencePolicy, LeaseConfig, RetryPolicy, ServiceRegistration};
use ps_trace::{Metric, Tracer};
use std::fmt::Write as _;

/// Parameters of one partition/reconcile run.
#[derive(Debug, Clone)]
pub struct PartitionBenchConfig {
    /// Seed for the workload and message-size draws.
    pub seed: u64,
    /// When the Seattle WAN legs are severed.
    pub split_at: SimTime,
    /// When the legs are restored.
    pub restore_at: SimTime,
    /// Give up waiting for reconciliation / drivers after this much
    /// virtual time.
    pub horizon: SimTime,
    /// Healing-pass cadence from the split onward.
    pub heal_period: SimDuration,
    /// Seattle workload size (sends / receives).
    pub seattle_ops: (u32, u32),
    /// San Diego workload size (sends / receives).
    pub sd_ops: (u32, u32),
    /// Lease parameters (failure detection).
    pub lease: LeaseConfig,
}

impl Default for PartitionBenchConfig {
    fn default() -> Self {
        PartitionBenchConfig {
            seed: 42,
            split_at: SimTime::from_nanos(2_000_000_000),
            restore_at: SimTime::from_nanos(32_000_000_000),
            horizon: SimTime::from_nanos(300_000_000_000),
            heal_period: SimDuration::from_millis(500),
            seattle_ops: (3000, 150),
            sd_ops: (3000, 150),
            lease: LeaseConfig::default(),
        }
    }
}

/// Everything a partition run measures (virtual-time derived only).
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// The seed the run used.
    pub seed: u64,
    /// When the WAN legs went down.
    pub split_at: SimTime,
    /// When the WAN legs came back.
    pub restore_at: SimTime,
    /// The healing pass that deployed Seattle's degraded chain.
    pub degraded_at: Option<SimTime>,
    /// The partition epoch stamped on the degraded deployment.
    pub degraded_epoch: Option<u64>,
    /// The healing pass that reconciled Seattle back onto a full chain.
    pub reconciled_at: Option<SimTime>,
    /// Healing passes executed.
    pub heal_passes: usize,
    /// Successful redeployments across all passes.
    pub replans: usize,
    /// Infeasible re-plan outcomes across all passes.
    pub infeasible: usize,
    /// Instances retired across all passes (reconcile retires the
    /// degraded duplicates).
    pub retired: usize,
    /// Seattle driver statistics (minority side).
    pub seattle: DriverStats,
    /// San Diego driver statistics (majority side).
    pub sd: DriverStats,
    /// Seattle operations completed inside `[split_at, restore_at)` —
    /// the degraded chain serving the minority locally.
    pub seattle_during_split: usize,
    /// San Diego operations completed inside the same window — the
    /// majority side untouched by the cut.
    pub sd_during_split: usize,
    /// Expected latency of Seattle's initial (pre-split) plan, ms.
    pub initial_latency_ms: f64,
    /// Expected latency of the degraded plan, ms.
    pub degraded_latency_ms: Option<f64>,
    /// Expected latency of the reconciled plan, ms — equal to the
    /// initial plan's latency when reconciliation converged back to the
    /// cold-plan optimum.
    pub reconciled_latency_ms: Option<f64>,
    /// Selected deterministic counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Messages the run-time carried.
    pub messages: u64,
    /// Virtual completion time of the whole run.
    pub completed_at: SimTime,
}

impl PartitionOutcome {
    /// Restore-to-reconciled latency, when reconciliation happened.
    pub fn reconcile_latency(&self) -> Option<SimDuration> {
        Some(self.reconciled_at?.since(self.restore_at))
    }

    /// Split-to-degraded-serving latency, when the degraded deploy
    /// happened.
    pub fn degraded_latency(&self) -> Option<SimDuration> {
        Some(self.degraded_at?.since(self.split_at))
    }
}

/// Runs the partition scenario.
pub fn run_partition(config: &PartitionBenchConfig, tracer: &Tracer) -> PartitionOutcome {
    let cs = default_case_study();
    let mut framework = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    framework.enable_self_healing();
    framework.set_tracer(tracer.clone());
    register_mail_components(
        &mut framework.server.registry,
        Keyring::new(1),
        CoherencePolicy::CountLimit(500),
    );
    framework.register_service(
        ServiceRegistration::new(mail_spec())
            .attribute("type", "mail")
            .proxy_code_size(32 * 1024)
            .home_node(cs.mail_server),
    );
    framework
        .install_primary("mail", MAIL_SERVER, cs.mail_server)
        .expect("primary");

    framework.world.enable_retry(RetryPolicy {
        max_attempts: 3,
        timeout: SimDuration::from_secs(2),
        backoff_multiplier: 2.0,
        deadline: None,
    });
    framework.world.enable_leases(config.lease);
    framework.world.set_fault_seed(config.seed);

    // The correlated fault domain: every WAN leg of the Seattle gateway,
    // down at the split and back at the restore.
    let legs = cs.wan_leg_domain(SEATTLE);
    let mut plan = FaultPlan::new();
    plan.domain_down(config.split_at, &legs);
    plan.domain_up(config.restore_at, &legs);
    framework.world.install_fault_plan(&plan);

    // San Diego connects first, deploying the shared view chain...
    let sd_request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(5.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let sd_conn = framework.connect("mail", &sd_request).expect("SD connect");
    let sd_root = sd_conn.root;
    let sd_handle = framework.manage("mail", sd_request, sd_conn);

    // ...then Seattle chains onto it.
    let sea_request = ServiceRequest::new(CLIENT_INTERFACE, cs.seattle_client)
        .rate(5.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 1i64);
    let sea_conn = framework
        .connect("mail", &sea_request)
        .expect("Seattle connect");
    let sea_root = sea_conn.root;
    let initial_latency_ms = sea_conn.plan.expected_latency_ms;
    let sea_handle = framework.manage("mail", sea_request, sea_conn);

    let sd_driver = spawn_driver(
        &mut framework.world,
        "SanDiego",
        cs.sd_client,
        sd_root,
        config.sd_ops,
        1 << 40,
        config.seed ^ 0x5D,
    );
    let sea_driver = spawn_driver(
        &mut framework.world,
        "Seattle",
        cs.seattle_client,
        sea_root,
        config.seattle_ops,
        2 << 40,
        config.seed ^ 0x5EA,
    );

    // Phase 1: the healthy workload up to the split.
    framework.run_until(config.split_at);
    let sea_at_split = completed_now(&mut framework.world, sea_driver);
    let sd_at_split = completed_now(&mut framework.world, sd_driver);

    let mut degraded_at = None;
    let mut degraded_epoch = None;
    let mut degraded_latency_ms = None;
    let mut reconciled_at = None;
    let mut reconciled_latency_ms = None;
    let mut heal_passes = 0;
    let mut replans = 0;
    let mut infeasible = 0;
    let mut retired = 0;

    // Phase 2: the split window. Healing passes recognize the cut and
    // deploy the degraded per-component chain for Seattle; San Diego
    // keeps its full chain (its routes never crossed the severed legs).
    let mut now = config.split_at;
    while now < config.restore_at {
        now = (now + config.heal_period).min(config.restore_at);
        framework.run_until(now);
        if now >= config.restore_at {
            // The restore events fire *at* `restore_at`; the pass that
            // observes the merge belongs to phase 3.
            break;
        }
        let report = framework.heal();
        heal_passes += 1;
        replans += report.recovered.len();
        infeasible += report.infeasible.len();
        retired += report.retired.len();
        if report.degraded.contains(&sea_handle) && degraded_at.is_none() {
            degraded_at = Some(report.at);
            degraded_epoch = framework.managed_partition_epoch(sea_handle);
            degraded_latency_ms = framework
                .managed_connection(sea_handle)
                .map(|c| c.plan.expected_latency_ms);
        }
    }
    let sea_at_restore = completed_now(&mut framework.world, sea_driver);
    let sd_at_restore = completed_now(&mut framework.world, sd_driver);

    // Phase 3: the merge. The next healing pass sees the closed
    // partition and reconciles Seattle back onto the cold-plan chain,
    // draining the detached view's buffered writes before retiring it.
    while now < config.horizon {
        now += config.heal_period;
        framework.run_until(now);
        let report = framework.heal();
        heal_passes += 1;
        replans += report.recovered.len();
        infeasible += report.infeasible.len();
        retired += report.retired.len();
        if report.reconciled.contains(&sea_handle) && reconciled_at.is_none() {
            reconciled_at = Some(report.at);
            reconciled_latency_ms = framework
                .managed_connection(sea_handle)
                .map(|c| c.plan.expected_latency_ms);
        }
        let both_done = [sea_driver, sd_driver].iter().all(|&id| {
            framework
                .world
                .logic_mut(id)
                .as_any()
                .and_then(|a| a.downcast_ref::<ClusterDriver>())
                .is_some_and(|d| d.is_done())
        });
        if reconciled_at.is_some() && both_done {
            break;
        }
    }
    // Drain whatever is still in flight.
    framework.run();

    let seattle = driver_stats(&mut framework.world, sea_driver, sea_at_split);
    let sd = driver_stats(&mut framework.world, sd_driver, sd_at_split);

    let mut counters = Vec::new();
    if let Some(registry) = tracer.registry() {
        for (name, metric) in registry.snapshot() {
            let keep = name.starts_with("world.")
                || name.starts_with("heal.")
                || name.starts_with("replan.")
                || name.starts_with("monitor.")
                || name == "server.connects";
            if !keep {
                continue;
            }
            if let Metric::Counter(c) = metric {
                counters.push((name, c));
            }
        }
        counters.sort();
    }

    let _ = sd_handle;
    PartitionOutcome {
        seed: config.seed,
        split_at: config.split_at,
        restore_at: config.restore_at,
        degraded_at,
        degraded_epoch,
        reconciled_at,
        heal_passes,
        replans,
        infeasible,
        retired,
        seattle,
        sd,
        seattle_during_split: sea_at_restore - sea_at_split,
        sd_during_split: sd_at_restore - sd_at_split,
        initial_latency_ms,
        degraded_latency_ms,
        reconciled_latency_ms,
        counters,
        messages: framework.world.messages_sent(),
        completed_at: framework.world.now(),
    }
}

fn ms(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1_000_000.0
}

fn opt_ms(t: Option<SimTime>) -> String {
    match t {
        Some(t) => format!("{:.3}", ms(t)),
        None => "null".to_owned(),
    }
}

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.6}"),
        None => "null".to_owned(),
    }
}

fn driver_json(d: &DriverStats, during_split: usize) -> String {
    format!(
        "{{\"completed\": {}, \"completed_before_split\": {}, \
         \"completed_during_split\": {}, \"lost\": {}, \"denied\": {}, \
         \"done\": {}}}",
        d.completed, d.completed_before_crash, during_split, d.lost, d.denied, d.done
    )
}

/// Serializes an outcome as deterministic JSON (hand-rolled; no serde in
/// the tree). Same-seed runs produce byte-identical strings.
pub fn partition_json(o: &PartitionOutcome) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"chaos_partition\",");
    let _ = writeln!(json, "  \"seed\": {},", o.seed);
    let _ = writeln!(json, "  \"split_at_ms\": {:.3},", ms(o.split_at));
    let _ = writeln!(json, "  \"restore_at_ms\": {:.3},", ms(o.restore_at));
    let _ = writeln!(json, "  \"degraded\": {{");
    let _ = writeln!(json, "    \"at_ms\": {},", opt_ms(o.degraded_at));
    let _ = writeln!(
        json,
        "    \"latency_after_split_ms\": {},",
        o.degraded_latency()
            .map_or("null".to_owned(), |d| format!("{:.3}", d.as_millis_f64()))
    );
    let _ = writeln!(
        json,
        "    \"epoch\": {},",
        o.degraded_epoch
            .map_or("null".to_owned(), |e| e.to_string())
    );
    let _ = writeln!(
        json,
        "    \"plan_latency_ms\": {}",
        opt_f64(o.degraded_latency_ms)
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"reconcile\": {{");
    let _ = writeln!(json, "    \"at_ms\": {},", opt_ms(o.reconciled_at));
    let _ = writeln!(
        json,
        "    \"latency_after_restore_ms\": {},",
        o.reconcile_latency()
            .map_or("null".to_owned(), |d| format!("{:.3}", d.as_millis_f64()))
    );
    let _ = writeln!(
        json,
        "    \"plan_latency_ms\": {},",
        opt_f64(o.reconciled_latency_ms)
    );
    let _ = writeln!(
        json,
        "    \"initial_plan_latency_ms\": {:.6},",
        o.initial_latency_ms
    );
    let _ = writeln!(json, "    \"retired\": {}", o.retired);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"heal_passes\": {},", o.heal_passes);
    let _ = writeln!(json, "  \"replans\": {},", o.replans);
    let _ = writeln!(json, "  \"infeasible\": {},", o.infeasible);
    let _ = writeln!(
        json,
        "  \"seattle\": {},",
        driver_json(&o.seattle, o.seattle_during_split)
    );
    let _ = writeln!(json, "  \"sd\": {},", driver_json(&o.sd, o.sd_during_split));
    let _ = writeln!(json, "  \"counters\": {{");
    let counter_lines: Vec<String> = o
        .counters
        .iter()
        .map(|(name, value)| format!("    \"{name}\": {value}"))
        .collect();
    let _ = writeln!(json, "{}", counter_lines.join(",\n"));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"messages\": {},", o.messages);
    let _ = writeln!(json, "  \"completed_at_ms\": {:.3}", ms(o.completed_at));
    let _ = writeln!(json, "}}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small config so the scenario stays test-sized.
    pub(crate) fn quick_config(seed: u64) -> PartitionBenchConfig {
        PartitionBenchConfig {
            seed,
            split_at: SimTime::from_nanos(50_000_000),
            restore_at: SimTime::from_nanos(5_000_000_000),
            seattle_ops: (60, 5),
            sd_ops: (60, 5),
            ..PartitionBenchConfig::default()
        }
    }

    #[test]
    fn both_sides_are_served_and_the_merge_reconciles() {
        let o = run_partition(&quick_config(7), &Tracer::disabled());
        // Majority side: the cut never touches the NY-SD leg.
        assert_eq!(o.sd.lost, 0, "majority side must lose nothing");
        assert!(o.sd_during_split > 0, "majority side keeps operating");
        // Minority side: the degraded chain serves Seattle locally.
        assert!(o.degraded_at.is_some(), "Seattle gets a degraded chain");
        assert!(
            o.degraded_epoch.is_some(),
            "degraded deploys carry the epoch"
        );
        assert!(
            o.seattle_during_split > 0,
            "minority side is served during the split"
        );
        // The merge reconciles back to the cold-plan optimum.
        assert!(o.reconciled_at.is_some(), "merge must reconcile");
        assert!(o.retired > 0, "reconcile retires degraded duplicates");
        let reconciled = o.reconciled_latency_ms.expect("reconciled plan latency");
        assert!(
            (reconciled - o.initial_latency_ms).abs() < 1e-9,
            "reconciled plan must converge to the cold-plan optimum \
             ({reconciled} vs {})",
            o.initial_latency_ms
        );
        assert!(o.seattle.done, "Seattle finishes its workload");
        assert!(o.sd.done, "San Diego finishes its workload");
    }

    #[test]
    fn same_seed_runs_serialize_identically() {
        let (tracer_a, sink_a) = Tracer::memory();
        let (tracer_b, sink_b) = Tracer::memory();
        let a = run_partition(&quick_config(11), &tracer_a);
        let b = run_partition(&quick_config(11), &tracer_b);
        assert_eq!(partition_json(&a), partition_json(&b));
        assert_eq!(sink_a.to_jsonl(), sink_b.to_jsonl());
    }
}
