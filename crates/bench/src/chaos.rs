//! The chaos-recovery scenario: the mail case study under a seeded
//! fault schedule, healed automatically.
//!
//! Two clients connect — San Diego (trust 4) first, then Seattle
//! (trust 1), which chains onto San Diego's freshly deployed
//! `ViewMailServer` exactly as in Figure 6. Both connections go under
//! self-healing management, retry policies and leases are switched on,
//! and a [`FaultPlan`] crashes the San Diego client node mid-workload
//! (optionally adding randomized-but-seeded WAN link flaps and loss
//! windows). The San Diego connection dies with its client; the Seattle
//! connection loses the mid-chain instances it was sharing and must be
//! re-planned and re-deployed by [`Framework::heal`] — with **zero**
//! manual `connect` calls — for its driver to finish the workload.
//!
//! Everything reported in [`ChaosOutcome`] is virtual-time or
//! event-count derived; two runs with the same [`ChaosBenchConfig`]
//! produce byte-identical [`outcome_json`] and byte-identical trace
//! JSONL streams.

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::workload::{ClusterConfig, ClusterDriver};
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::{default_case_study, CaseStudy, NodeId};
use ps_planner::ServiceRequest;
use ps_sim::{ChaosConfig, FaultPlan, SimDuration, SimTime};
use ps_smock::{
    CoherencePolicy, InstanceId, LeaseConfig, LivenessKind, RetryPolicy, ServiceRegistration, World,
};
use ps_spec::{Behavior, ResolvedBindings};
use ps_trace::{Metric, SamplerConfig, SeriesSummary, Tracer};
use std::fmt::Write as _;

/// Parameters of one chaos-recovery run.
#[derive(Debug, Clone)]
pub struct ChaosBenchConfig {
    /// Seed for the workload, loss draws, and the randomized fault plan.
    pub seed: u64,
    /// When the San Diego client node crashes.
    pub crash_at: SimTime,
    /// Give up waiting for the Seattle driver after this much virtual
    /// time.
    pub horizon: SimTime,
    /// Healing-pass cadence after the crash.
    pub heal_period: SimDuration,
    /// Seattle workload size (sends / receives).
    pub seattle_ops: (u32, u32),
    /// San Diego workload size (sends / receives).
    pub sd_ops: (u32, u32),
    /// Also draw randomized WAN link flaps and a loss window from the
    /// seed (the crash alone is injected either way).
    pub extra_chaos: bool,
    /// Lease parameters (the failure-detection interval): shorter
    /// heartbeats detect faster but renew more often.
    pub lease: LeaseConfig,
    /// Enable the world's time-series sampler with this config.
    pub sampler: Option<SamplerConfig>,
    /// Wire bytes per lease renewal charged to link utilization;
    /// `0` disables the renewal-traffic accounting.
    pub lease_renewal_bytes: u64,
}

impl Default for ChaosBenchConfig {
    fn default() -> Self {
        ChaosBenchConfig {
            seed: 42,
            crash_at: SimTime::from_nanos(1_000_000_000),
            horizon: SimTime::from_nanos(300_000_000_000),
            heal_period: SimDuration::from_secs(1),
            seattle_ops: (3000, 150),
            sd_ops: (3000, 150),
            extra_chaos: true,
            lease: LeaseConfig::default(),
            sampler: None,
            lease_renewal_bytes: 0,
        }
    }
}

/// Closed-loop driver statistics extracted after the run.
#[derive(Debug, Clone, Copy)]
pub struct DriverStats {
    /// Operations that completed with a reply.
    pub completed: usize,
    /// Operations completed before the crash fired.
    pub completed_before_crash: usize,
    /// Operations the retry policy gave up on.
    pub lost: u32,
    /// Replies that came back `Denied`.
    pub denied: u32,
    /// Whether the driver finished its whole workload.
    pub done: bool,
}

/// Everything a chaos-recovery run measures (virtual-time derived only —
/// no wall clock, so same-seed runs serialize identically).
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The seed the run used.
    pub seed: u64,
    /// When the crash fired.
    pub crash_at: SimTime,
    /// When the lease-based detector declared the crashed node down.
    pub detected_at: Option<SimTime>,
    /// The first healing pass that re-deployed the Seattle connection —
    /// possibly on partial lease evidence, before the node-down verdict.
    pub first_redeploy_at: Option<SimTime>,
    /// The healing pass after which the Seattle connection was repaired
    /// with the failed node known-dead and avoided.
    pub recovered_at: Option<SimTime>,
    /// When the replacement deployment was ready to serve.
    pub recovery_ready_at: Option<SimTime>,
    /// Whether the San Diego connection was abandoned (its client node
    /// is the node that crashed).
    pub sd_abandoned: bool,
    /// Successful redeployments across all healing passes.
    pub replans: usize,
    /// Infeasible re-plan outcomes across all healing passes.
    pub infeasible: usize,
    /// Healing passes executed.
    pub heal_passes: usize,
    /// Nodes quarantined by the healer.
    pub quarantined: Vec<NodeId>,
    /// Seattle driver statistics.
    pub seattle: DriverStats,
    /// San Diego driver statistics.
    pub sd: DriverStats,
    /// Selected deterministic counters from the trace registry, sorted
    /// by name.
    pub counters: Vec<(String, u64)>,
    /// Messages the run-time carried.
    pub messages: u64,
    /// Virtual completion time of the whole run.
    pub completed_at: SimTime,
    /// Lease-renewal bytes charged to the network (0 when accounting
    /// was off).
    pub lease_renewal_bytes: u64,
    /// Time-series summaries, sorted by name (empty when the sampler
    /// was off).
    pub series: Vec<(String, SeriesSummary)>,
}

impl ChaosOutcome {
    /// Crash-to-serving recovery latency, when recovery happened.
    pub fn recovery_latency(&self) -> Option<SimDuration> {
        Some(self.recovery_ready_at?.since(self.crash_at))
    }

    /// Detection latency (crash to lease-expiry verdict).
    pub fn detection_latency(&self) -> Option<SimDuration> {
        Some(self.detected_at?.since(self.crash_at))
    }
}

pub(crate) fn driver_stats(world: &mut World, id: InstanceId, before_crash: usize) -> DriverStats {
    let driver = world
        .logic_mut(id)
        .as_any()
        .and_then(|a| a.downcast_ref::<ClusterDriver>())
        .expect("cluster driver");
    DriverStats {
        completed: driver.completed.len(),
        completed_before_crash: before_crash,
        lost: driver.lost,
        denied: driver.denied,
        done: driver.is_done(),
    }
}

pub(crate) fn completed_now(world: &mut World, id: InstanceId) -> usize {
    world
        .logic_mut(id)
        .as_any()
        .and_then(|a| a.downcast_ref::<ClusterDriver>())
        .expect("cluster driver")
        .completed
        .len()
}

pub(crate) fn spawn_driver(
    world: &mut World,
    site: &str,
    node: NodeId,
    root: InstanceId,
    ops: (u32, u32),
    id_base: u64,
    seed: u64,
) -> InstanceId {
    let driver = ClusterDriver::new(ClusterConfig {
        user: format!("user-{site}"),
        peers: vec![format!("user-{site}")],
        sends: ops.0,
        receives: ops.1,
        body_bytes: (1024, 3072),
        sensitivity: (1, 2),
        id_base,
        seed,
    });
    let id = world.instantiate(
        format!("driver-{site}"),
        node,
        ResolvedBindings::new(),
        Behavior::new(),
        Box::new(driver),
        world.now(),
    );
    world.wire(id, vec![root]);
    id
}

/// The fault schedule: a deterministic crash of the San Diego client
/// node, plus (optionally) seeded WAN link flaps and a loss window on
/// the New York – Seattle link.
fn build_fault_plan(config: &ChaosBenchConfig, cs: &CaseStudy) -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.crash(config.crash_at, cs.sd_client.0);
    if !config.extra_chaos {
        return plan;
    }
    let ny_sd = cs
        .network
        .link_between(cs.ny_gateway, cs.sd_gateway)
        .expect("NY-SD WAN link")
        .id;
    let sea_sd = cs
        .network
        .link_between(cs.seattle_gateway, cs.sd_gateway)
        .expect("SEA-SD WAN link")
        .id;
    let ny_sea = cs
        .network
        .link_between(cs.ny_gateway, cs.seattle_gateway)
        .expect("NY-SEA WAN link")
        .id;
    // Flaps on the San Diego WAN legs, well after recovery has begun.
    let window = ChaosConfig {
        start: config.crash_at + SimDuration::from_secs(15),
        horizon: config.crash_at + SimDuration::from_secs(60),
        crashable_nodes: Vec::new(),
        flappable_links: vec![ny_sd.0, sea_sd.0],
        node_crashes: 0,
        link_flaps: 2,
        loss_windows: 0,
        loss_range: (0.0, 0.0),
        min_outage: SimDuration::from_millis(500),
        max_outage: SimDuration::from_secs(3),
        restart_nodes: false,
        ..ChaosConfig::default()
    };
    for ev in FaultPlan::randomized(config.seed, &window).events() {
        plan.push(ev.at, ev.kind);
    }
    // One loss window on the live New York – Seattle path, exercising
    // the retry machinery without severing the route.
    let loss = ChaosConfig {
        flappable_links: vec![ny_sea.0],
        node_crashes: 0,
        link_flaps: 0,
        loss_windows: 1,
        loss_range: (0.10, 0.30),
        min_outage: SimDuration::from_secs(1),
        max_outage: SimDuration::from_secs(4),
        ..window.clone()
    };
    for ev in FaultPlan::randomized(config.seed ^ 0x1055, &loss).events() {
        plan.push(ev.at, ev.kind);
    }
    plan
}

/// Runs the chaos-recovery scenario. The tracer (enabled or disabled)
/// is installed across the whole stack; pass `Tracer::memory()`'s
/// handle to capture the event stream.
pub fn run_chaos(config: &ChaosBenchConfig, tracer: &Tracer) -> ChaosOutcome {
    let cs = default_case_study();
    let mut framework = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    framework.enable_self_healing();
    framework.set_tracer(tracer.clone());
    register_mail_components(
        &mut framework.server.registry,
        Keyring::new(1),
        CoherencePolicy::CountLimit(500),
    );
    framework.register_service(
        ServiceRegistration::new(mail_spec())
            .attribute("type", "mail")
            .proxy_code_size(32 * 1024)
            .home_node(cs.mail_server),
    );
    framework
        .install_primary("mail", MAIL_SERVER, cs.mail_server)
        .expect("primary");

    // Fault machinery: bounded retries on every invoke, leases as the
    // failure detector, and the seeded fault schedule.
    framework.world.enable_retry(RetryPolicy {
        max_attempts: 3,
        timeout: SimDuration::from_secs(2),
        backoff_multiplier: 2.0,
        deadline: None,
    });
    framework.world.enable_leases(config.lease);
    framework.world.set_fault_seed(config.seed);
    if let Some(sampler) = config.sampler {
        framework.enable_sampler(sampler);
    }
    if config.lease_renewal_bytes > 0 {
        framework.account_lease_traffic(config.lease_renewal_bytes);
    }
    let plan = build_fault_plan(config, &cs);
    framework.world.install_fault_plan(&plan);

    // San Diego connects first, deploying the shared view chain...
    let sd_request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(5.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let sd_conn = framework.connect("mail", &sd_request).expect("SD connect");
    let sd_root = sd_conn.root;
    let sd_handle = framework.manage("mail", sd_request, sd_conn);

    // ...then Seattle chains onto it (Figure 6's partner-site request).
    let sea_request = ServiceRequest::new(CLIENT_INTERFACE, cs.seattle_client)
        .rate(5.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 1i64);
    let sea_conn = framework
        .connect("mail", &sea_request)
        .expect("Seattle connect");
    let sea_root = sea_conn.root;
    let sea_handle = framework.manage("mail", sea_request, sea_conn);

    let sd_driver = spawn_driver(
        &mut framework.world,
        "SanDiego",
        cs.sd_client,
        sd_root,
        config.sd_ops,
        1 << 40,
        config.seed ^ 0x5D,
    );
    let sea_driver = spawn_driver(
        &mut framework.world,
        "Seattle",
        cs.seattle_client,
        sea_root,
        config.seattle_ops,
        2 << 40,
        config.seed ^ 0x5EA,
    );

    // Phase 1: the healthy workload up to the crash.
    framework.run_until(config.crash_at);
    let sea_before_crash = completed_now(&mut framework.world, sea_driver);
    let sd_before_crash = completed_now(&mut framework.world, sd_driver);

    // Phase 2: the healing loop — step, heal, repeat until the Seattle
    // driver finishes or the horizon runs out. No manual `connect`.
    //
    // An early pass can see only part of the crashed node's lease
    // expiries: the connection is then re-deployed on partial knowledge
    // (the node is not yet quarantined, so the planner may pick it
    // again); the born-dead replacements expire in turn and the next
    // passes converge. `first_redeploy_at` records that first, possibly
    // premature attempt; `recovered_at` records the first redeploy made
    // at or after the `NodeDown` verdict, i.e. with the failed node
    // quarantined.
    let mut detected_at = None;
    let mut first_redeploy_at = None;
    let mut recovered_at = None;
    let mut recovery_ready_at = None;
    let mut replans = 0;
    let mut infeasible = 0;
    let mut heal_passes = 0;
    let mut quarantined = Vec::new();
    let mut now = config.crash_at;
    while now < config.horizon {
        now += config.heal_period;
        framework.run_until(now);
        let report = framework.heal();
        heal_passes += 1;
        for event in &report.liveness {
            if let LivenessKind::NodeDown { node } = event.kind {
                if node == cs.sd_client && detected_at.is_none() {
                    detected_at = Some(event.at);
                }
            }
        }
        quarantined.extend(report.quarantined.iter().copied());
        replans += report.recovered.len();
        infeasible += report.infeasible.len();
        if report.recovered.contains(&sea_handle) && first_redeploy_at.is_none() {
            first_redeploy_at = Some(report.at);
        }
        // Recovery is complete once the failed node is known-dead and
        // the (re-deployed) Seattle plan no longer touches any
        // quarantined node.
        if detected_at.is_some() && recovered_at.is_none() && first_redeploy_at.is_some() {
            let healthy = framework.managed_connection(sea_handle).is_some_and(|c| {
                c.plan
                    .placements
                    .iter()
                    .all(|p| !quarantined.contains(&p.node))
            });
            if healthy {
                recovered_at = Some(report.at);
                recovery_ready_at = framework.managed_connection(sea_handle).map(|c| c.ready_at);
            }
        }
        // Exit only once the Seattle connection has been re-deployed
        // AND its driver has finished: the crash guts Seattle's
        // mid-chain (its view path shares San Diego's instances), and
        // the run must demonstrate both detection and repair.
        let done = framework
            .world
            .logic_mut(sea_driver)
            .as_any()
            .and_then(|a| a.downcast_ref::<ClusterDriver>())
            .is_some_and(|d| d.is_done());
        if done && recovered_at.is_some() {
            break;
        }
    }
    // Drain whatever is still in flight (stray retries, fault events).
    framework.run();
    framework.world.charge_lease_renewals();
    if config.sampler.is_some() {
        framework.world.sample_now();
    }
    let series = framework
        .world
        .sampler()
        .map(|s| s.summaries())
        .unwrap_or_default();
    let lease_renewal_bytes = framework.world.lease_renewal_bytes();

    let sd_abandoned = framework.managed_connection(sd_handle).is_none();
    let seattle = driver_stats(&mut framework.world, sea_driver, sea_before_crash);
    let sd = driver_stats(&mut framework.world, sd_driver, sd_before_crash);

    let mut counters = Vec::new();
    if let Some(registry) = tracer.registry() {
        for (name, metric) in registry.snapshot() {
            let keep = name.starts_with("world.")
                || name.starts_with("heal.")
                || name.starts_with("replan.")
                || name.starts_with("monitor.")
                || name == "server.connects";
            if !keep {
                continue;
            }
            if let Metric::Counter(c) = metric {
                counters.push((name, c));
            }
        }
        counters.sort();
    }

    ChaosOutcome {
        seed: config.seed,
        crash_at: config.crash_at,
        detected_at,
        first_redeploy_at,
        recovered_at,
        recovery_ready_at,
        sd_abandoned,
        replans,
        infeasible,
        heal_passes,
        quarantined,
        seattle,
        sd,
        counters,
        messages: framework.world.messages_sent(),
        completed_at: framework.world.now(),
        lease_renewal_bytes,
        series,
    }
}

fn ms(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1_000_000.0
}

fn opt_ms(t: Option<SimTime>) -> String {
    match t {
        Some(t) => format!("{:.3}", ms(t)),
        None => "null".to_owned(),
    }
}

fn driver_json(d: &DriverStats) -> String {
    format!(
        "{{\"completed\": {}, \"completed_before_crash\": {}, \"lost\": {}, \
         \"denied\": {}, \"done\": {}}}",
        d.completed, d.completed_before_crash, d.lost, d.denied, d.done
    )
}

/// Serializes an outcome as deterministic JSON (hand-rolled; no serde in
/// the tree). Same-seed runs produce byte-identical strings.
pub fn outcome_json(o: &ChaosOutcome) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"chaos_recovery\",");
    let _ = writeln!(json, "  \"seed\": {},", o.seed);
    let _ = writeln!(json, "  \"crash_at_ms\": {:.3},", ms(o.crash_at));
    let _ = writeln!(json, "  \"detected_at_ms\": {},", opt_ms(o.detected_at));
    let _ = writeln!(
        json,
        "  \"detection_latency_ms\": {},",
        o.detection_latency()
            .map_or("null".to_owned(), |d| format!("{:.3}", d.as_millis_f64()))
    );
    let _ = writeln!(json, "  \"recovery\": {{");
    let _ = writeln!(
        json,
        "    \"first_redeploy_at_ms\": {},",
        opt_ms(o.first_redeploy_at)
    );
    let _ = writeln!(json, "    \"recovered_at_ms\": {},", opt_ms(o.recovered_at));
    let _ = writeln!(
        json,
        "    \"ready_at_ms\": {},",
        opt_ms(o.recovery_ready_at)
    );
    let _ = writeln!(
        json,
        "    \"latency_ms\": {},",
        o.recovery_latency()
            .map_or("null".to_owned(), |d| format!("{:.3}", d.as_millis_f64()))
    );
    let _ = writeln!(json, "    \"replans\": {},", o.replans);
    let _ = writeln!(json, "    \"infeasible\": {},", o.infeasible);
    let _ = writeln!(json, "    \"heal_passes\": {},", o.heal_passes);
    let quarantined: Vec<String> = o.quarantined.iter().map(|n| format!("{}", n.0)).collect();
    let _ = writeln!(json, "    \"quarantined\": [{}]", quarantined.join(", "));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sd_abandoned\": {},", o.sd_abandoned);
    let _ = writeln!(json, "  \"seattle\": {},", driver_json(&o.seattle));
    let _ = writeln!(json, "  \"sd\": {},", driver_json(&o.sd));
    let _ = writeln!(json, "  \"counters\": {{");
    let counter_lines: Vec<String> = o
        .counters
        .iter()
        .map(|(name, value)| format!("    \"{name}\": {value}"))
        .collect();
    let _ = writeln!(json, "{}", counter_lines.join(",\n"));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"messages\": {},", o.messages);
    let _ = writeln!(json, "  \"completed_at_ms\": {:.3}", ms(o.completed_at));
    let _ = writeln!(json, "}}");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small config so the scenario stays test-sized.
    pub(crate) fn quick_config(seed: u64) -> ChaosBenchConfig {
        ChaosBenchConfig {
            seed,
            crash_at: SimTime::from_nanos(50_000_000),
            seattle_ops: (60, 5),
            sd_ops: (60, 5),
            ..ChaosBenchConfig::default()
        }
    }

    #[test]
    fn chaos_run_recovers_the_seattle_connection() {
        let outcome = run_chaos(&quick_config(7), &Tracer::disabled());
        assert!(outcome.sd_abandoned, "SD client node crashed");
        assert!(outcome.replans >= 1, "Seattle must be re-deployed");
        assert!(outcome.detected_at.is_some(), "leases detect the crash");
        assert!(outcome.seattle.done, "Seattle finishes its workload");
        assert!(
            outcome.seattle.completed > outcome.seattle.completed_before_crash,
            "operations complete after the crash (service restored)"
        );
    }

    #[test]
    fn same_seed_runs_serialize_identically() {
        let (tracer_a, _sink_a) = Tracer::memory();
        let (tracer_b, _sink_b) = Tracer::memory();
        let a = run_chaos(&quick_config(11), &tracer_a);
        let b = run_chaos(&quick_config(11), &tracer_b);
        assert_eq!(outcome_json(&a), outcome_json(&b));
        assert_eq!(_sink_a.to_jsonl(), _sink_b.to_jsonl());
    }
}
