//! The nine Figure 7 scenarios.
//!
//! Dynamic scenarios (`DF`, `DS0`, `DS500`, `DS1000`) let the framework
//! plan and deploy; static scenarios (`SF`, `SS0`, `SS500`, `SS1000`,
//! `SS`) hand-build the corresponding deployments, providing the paper's
//! baseline. `SS` is the naive static deployment: clients connect to the
//! New York `MailServer` directly across the slow link, unaware of it.
//!
//! Names follow the paper: `D`/`S` = dynamic/static, `F`/`S` =
//! fast (New York clients) / slow (San Diego clients), suffix = the
//! coherence policy's unpropagated-message limit (0 = no coherence
//! traffic).
//!
//! **Workload scaling.** The paper's clients send 100 messages each; its
//! coherence limits are 500 and 1000 unpropagated messages. With ≤5×100
//! messages a 1000-limit would never fire, so the default workload here
//! sends `msgs_per_client = 2000`, engaging both limits repeatedly;
//! EXPERIMENTS.md records the shape criteria rather than absolute
//! milliseconds.

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::workload::{ClusterConfig, ClusterDriver, RECEIVE_METRIC, SEND_METRIC};
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::casestudy::{self, CaseStudy};
use ps_planner::ServiceRequest;
use ps_sim::{SimTime, Summary};
use ps_smock::{
    CoherencePolicy, ComponentRegistry, FactoryArgs, InstanceId, OneTimeCosts, ServiceRegistration,
    World,
};
use ps_spec::{Environment, ResolvedBindings, ServiceSpec};
use std::fmt;

/// The nine evaluation scenarios of Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// Dynamic deployment, fast connection (New York clients).
    DF,
    /// Dynamic, slow connection, no coherence propagation.
    DS0,
    /// Dynamic, slow, flush every 500 unpropagated messages.
    DS500,
    /// Dynamic, slow, flush every 1000 unpropagated messages.
    DS1000,
    /// Static counterpart of `DF`.
    SF,
    /// Static counterpart of `DS0`.
    SS0,
    /// Static counterpart of `DS500`.
    SS500,
    /// Static counterpart of `DS1000`.
    SS1000,
    /// Static naive deployment: San Diego clients connect directly to the
    /// New York server.
    SS,
}

impl Scenario {
    /// All nine, in the paper's legend order.
    pub const ALL: [Scenario; 9] = [
        Scenario::DF,
        Scenario::DS0,
        Scenario::DS500,
        Scenario::DS1000,
        Scenario::SF,
        Scenario::SS0,
        Scenario::SS500,
        Scenario::SS1000,
        Scenario::SS,
    ];

    /// Whether the framework plans the deployment (vs hand-built).
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            Scenario::DF | Scenario::DS0 | Scenario::DS500 | Scenario::DS1000
        )
    }

    /// Whether clients run in New York (fast) or San Diego (slow).
    pub fn is_fast(&self) -> bool {
        matches!(self, Scenario::DF | Scenario::SF)
    }

    /// The coherence policy the scenario's view server uses (irrelevant
    /// for `DF`/`SF`/`SS`, which deploy no view server).
    pub fn policy(&self) -> CoherencePolicy {
        match self {
            Scenario::DS500 | Scenario::SS500 => CoherencePolicy::CountLimit(500),
            Scenario::DS1000 | Scenario::SS1000 => CoherencePolicy::CountLimit(1000),
            _ => CoherencePolicy::None,
        }
    }

    /// The latency group the paper clusters the scenario into (1 best).
    pub fn paper_group(&self) -> u8 {
        match self {
            Scenario::DF | Scenario::DS0 | Scenario::SF | Scenario::SS0 => 1,
            Scenario::DS1000 | Scenario::SS1000 => 2,
            Scenario::DS500 | Scenario::SS500 => 3,
            Scenario::SS => 4,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Workload parameters for one Figure 7 run.
#[derive(Debug, Clone)]
pub struct Fig7Config {
    /// Number of concurrent client clusters (the paper sweeps 1–5).
    pub clients: usize,
    /// Messages per client (paper: 100; scaled default 2000 — see the
    /// module docs).
    pub msgs_per_client: u32,
    /// Receive operations per client (paper: 10).
    pub receives_per_client: u32,
    /// Body size range, bytes.
    pub body_bytes: (usize, usize),
    /// Sensitivity range of generated messages (inclusive).
    pub sensitivity: (u8, u8),
    /// RNG seed.
    pub seed: u64,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            clients: 1,
            msgs_per_client: 2000,
            receives_per_client: 10,
            body_bytes: (1024, 3072),
            sensitivity: (1, 2),
            seed: 42,
        }
    }
}

/// Results of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Which scenario.
    pub scenario: Scenario,
    /// Client count.
    pub clients: usize,
    /// Send-latency summary (ms).
    pub send: Summary,
    /// Receive-latency summary (ms).
    pub receive: Summary,
    /// Send-latency median (ms).
    pub send_p50: f64,
    /// Send-latency 95th percentile (ms).
    pub send_p95: f64,
    /// Virtual time at completion.
    pub completed_at: SimTime,
    /// Total messages the runtime carried.
    pub messages: u64,
    /// One-time connection costs, including the recorded planner
    /// counters ([`PlanStats`](ps_planner::PlanStats)). `None` for the
    /// hand-built static scenarios, which never invoke the planner.
    pub plan_costs: Option<OneTimeCosts>,
}

/// Runs one scenario and collects latencies.
pub fn run_scenario(scenario: Scenario, config: &Fig7Config) -> ScenarioResult {
    run_scenario_with_policy(scenario, scenario.policy(), config)
}

/// Runs the dynamic slow-connection scenario under an arbitrary
/// coherence policy (the coherence-policy ablation).
pub fn run_custom_policy(policy: CoherencePolicy, config: &Fig7Config) -> ScenarioResult {
    run_scenario_with_policy(Scenario::DS0, policy, config)
}

/// Workhorse behind [`run_scenario`] / [`run_custom_policy`].
pub fn run_scenario_with_policy(
    scenario: Scenario,
    policy: CoherencePolicy,
    config: &Fig7Config,
) -> ScenarioResult {
    let cs = casestudy::default_case_study();
    let keyring = Keyring::new(config.seed);

    let mut framework = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(&mut framework.server.registry, keyring.clone(), policy);
    framework.register_service(ServiceRegistration::new(mail_spec()).attribute("type", "mail"));
    framework
        .install_primary("mail", MAIL_SERVER, cs.mail_server)
        .expect("primary installs");

    let client_node = if scenario.is_fast() {
        cs.ny_client
    } else {
        cs.sd_client
    };

    // Obtain the client-facing root instance.
    let mut plan_costs = None;
    let root: InstanceId = if scenario.is_dynamic() {
        let request = ServiceRequest::new(CLIENT_INTERFACE, client_node)
            .rate(config.clients as f64 * 5.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", 4i64);
        let connection = framework.connect("mail", &request).expect("plan + deploy");
        plan_costs = Some(connection.costs);
        connection.root
    } else {
        build_static(
            &mut framework.world,
            &framework.server.registry,
            &mail_spec(),
            &cs,
            scenario,
            client_node,
        )
    };

    // Drivers: one per client cluster, colocated with the client node.
    let start = framework.world.now();
    for i in 0..config.clients {
        let user = format!("user-{i}");
        let peer = format!("user-{}", (i + 1) % config.clients.max(1));
        let driver = ClusterDriver::new(ClusterConfig {
            user,
            peers: vec![peer],
            sends: config.msgs_per_client,
            receives: config.receives_per_client,
            body_bytes: config.body_bytes,
            sensitivity: config.sensitivity,
            id_base: (i as u64 + 1) << 40,
            seed: config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9),
        });
        let id = framework.world.instantiate(
            format!("driver-{i}"),
            client_node,
            ResolvedBindings::new(),
            ps_spec::Behavior::new(),
            Box::new(driver),
            start,
        );
        framework.world.wire(id, vec![root]);
    }

    framework.run();

    let send = framework.world.metric(SEND_METRIC);
    let receive = framework.world.metric(RECEIVE_METRIC);
    let mut p = framework
        .world
        .metric_percentiles(SEND_METRIC)
        .cloned()
        .unwrap_or_default();
    ScenarioResult {
        scenario,
        clients: config.clients,
        send,
        receive,
        send_p50: p.quantile(0.5).unwrap_or(0.0),
        send_p95: p.quantile(0.95).unwrap_or(0.0),
        completed_at: framework.world.now(),
        messages: framework.world.messages_sent(),
        plan_costs,
    }
}

/// Hand-builds the static deployments (the paper's hand-generated
/// baselines). Returns the client-facing root instance.
fn build_static(
    world: &mut World,
    registry: &ComponentRegistry,
    spec: &ServiceSpec,
    cs: &CaseStudy,
    scenario: Scenario,
    client_node: ps_net::NodeId,
) -> InstanceId {
    let translator = mail_translator();
    let primary = world
        .find_instance(MAIL_SERVER, cs.mail_server, &ResolvedBindings::new())
        .expect("primary installed");

    let make =
        |world: &mut World, component: &str, node: ps_net::NodeId, factors: ResolvedBindings| {
            let env: Environment =
                ps_net::PropertyTranslator::node_env(&translator, world.network().node(node));
            let args = FactoryArgs {
                component,
                node,
                factors: &factors,
                env: &env,
            };
            let logic = registry.create(&args).expect("factory registered");
            world.instantiate(
                component,
                node,
                factors,
                spec.behavior_of(component),
                logic,
                world.now(),
            )
        };

    match scenario {
        Scenario::SF => {
            // MailClient in New York -> MailServer.
            let mc = make(world, MAIL_CLIENT, client_node, ResolvedBindings::new());
            world.wire(mc, vec![primary]);
            mc
        }
        Scenario::SS => {
            // Naive: MailClient in San Diego -> MailServer across the slow
            // link (no confidentiality, no cache — what a static deployer
            // unaware of the environment would produce).
            let mc = make(world, MAIL_CLIENT, client_node, ResolvedBindings::new());
            world.wire(mc, vec![primary]);
            mc
        }
        Scenario::SS0 | Scenario::SS500 | Scenario::SS1000 => {
            // MailClient -> ViewMailServer -> Encryptor (San Diego)
            //   -> Decryptor (New York) -> MailServer.
            let factors = ResolvedBindings::new().with("TrustLevel", casestudy::TRUST_SAN_DIEGO);
            let mc = make(world, MAIL_CLIENT, client_node, ResolvedBindings::new());
            let vms = make(world, VIEW_MAIL_SERVER, client_node, factors);
            let enc = make(world, ENCRYPTOR, client_node, ResolvedBindings::new());
            let dec = make(world, DECRYPTOR, cs.mail_server, ResolvedBindings::new());
            world.wire(mc, vec![vms]);
            world.wire(vms, vec![enc]);
            world.wire(enc, vec![dec]);
            world.wire(dec, vec![primary]);
            mc
        }
        _ => unreachable!("dynamic scenarios are planner-built"),
    }
}

/// Runs the full Figure 7 sweep: every scenario × 1..=max_clients.
/// Scenario runs are independent deterministic simulations, so they run
/// on parallel threads; results come back in legend order regardless.
pub fn figure7_sweep(max_clients: usize, base: &Fig7Config) -> Vec<ScenarioResult> {
    let jobs: Vec<(Scenario, usize)> = Scenario::ALL
        .into_iter()
        .flat_map(|s| (1..=max_clients).map(move |c| (s, c)))
        .collect();
    let mut results: Vec<Option<ScenarioResult>> = Vec::new();
    results.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slot, &(scenario, clients)) in jobs.iter().enumerate() {
            let config = Fig7Config {
                clients,
                ..base.clone()
            };
            // ps-lint: allow(D004): slot-indexed fan-out — each worker fills only
            // its own `results[slot]` and the merge reads slots in order, so the
            // output is independent of thread completion timing
            handles.push((slot, scope.spawn(move || run_scenario(scenario, &config))));
        }
        for (slot, handle) in handles {
            results[slot] = Some(handle.join().expect("scenario thread"));
        }
    });
    results.into_iter().map(Option::unwrap).collect()
}

/// Renders the sweep as an ASCII log-scale chart shaped like Figure 7:
/// one line per scenario, columns = client counts, plus a log-axis plot
/// of the 5-client means.
pub fn render_figure7(results: &[ScenarioResult], max_clients: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mean_of = |s: Scenario, c: usize| -> f64 {
        results
            .iter()
            .find(|r| r.scenario == s && r.clients == c)
            .map(|r| r.send.mean())
            .unwrap_or(f64::NAN)
    };
    // Log-scale scatter, 1 ms .. 1000 ms over 60 columns (the paper's
    // y-axis, drawn horizontally).
    let _ = writeln!(
        out,
        "log scale, {} clients   1ms        10ms       100ms      1000ms",
        max_clients
    );
    for s in Scenario::ALL {
        let v = mean_of(s, max_clients).max(1.0);
        let pos = ((v.log10() / 3.0) * 60.0).round().clamp(0.0, 60.0) as usize;
        let mut line = vec![b' '; 62];
        line[0] = b'|';
        line[61] = b'|';
        line[pos.min(60) + 1] = b'*';
        let _ = writeln!(
            out,
            "{:<8} (g{}) {}",
            s.to_string(),
            s.paper_group(),
            String::from_utf8(line).expect("ascii")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_taxonomy_matches_the_paper() {
        assert!(Scenario::DF.is_dynamic() && Scenario::DF.is_fast());
        assert!(Scenario::DS500.is_dynamic() && !Scenario::DS500.is_fast());
        assert!(!Scenario::SS.is_dynamic() && !Scenario::SS.is_fast());
        assert_eq!(Scenario::ALL.len(), 9);
        assert_eq!(Scenario::DS500.policy(), CoherencePolicy::CountLimit(500));
        assert_eq!(Scenario::SS1000.policy(), CoherencePolicy::CountLimit(1000));
        assert_eq!(Scenario::DF.policy(), CoherencePolicy::None);
        // The four groups partition the nine scenarios.
        let mut counts = [0usize; 4];
        for s in Scenario::ALL {
            counts[(s.paper_group() - 1) as usize] += 1;
        }
        assert_eq!(counts, [4, 2, 2, 1]);
    }

    #[test]
    fn small_scenario_runs_end_to_end() {
        let config = Fig7Config {
            clients: 1,
            msgs_per_client: 20,
            receives_per_client: 2,
            ..Default::default()
        };
        let r = run_scenario(Scenario::DS0, &config);
        assert_eq!(r.send.count(), 20);
        assert_eq!(r.receive.count(), 2);
        assert!(r.send.mean() > 0.0);
    }

    #[test]
    fn chart_places_scenarios_on_the_log_axis() {
        let config = Fig7Config {
            clients: 1,
            msgs_per_client: 20,
            receives_per_client: 0,
            ..Default::default()
        };
        let results: Vec<ScenarioResult> = vec![
            run_scenario(Scenario::DS0, &config),
            run_scenario(Scenario::SS, &config),
        ];
        let chart = render_figure7(&results, 1);
        // Both scenarios appear, and SS's star sits to the right of DS0's.
        let ds0_line = chart.lines().find(|l| l.starts_with("DS0")).unwrap();
        let ss_line = chart.lines().find(|l| l.starts_with("SS ")).unwrap();
        let pos = |l: &str| l.find('*').unwrap();
        assert!(pos(ss_line) > pos(ds0_line));
    }
}
