//! Thousand-node scaling studies backing the `bench_scale` binary.
//!
//! Four measurements over progressively larger BRITE hierarchies:
//!
//! 1. **Engine throughput** — events/second through the calendar event
//!    queue under a steady self-rescheduling load.
//! 2. **Route-table repair** — microseconds to delta-repair an
//!    all-pairs [`RouteTable`] after a single link change vs rebuilding
//!    it from scratch, with a sampled equivalence check.
//! 3. **Warm vs cold replanning** — wall time of
//!    [`Planner::plan_repair`] seeded from the surviving plan (and the
//!    pre-damage route table) vs a from-scratch [`Planner::plan`],
//!    asserting identical objectives and reporting placement churn.
//! 4. **Heal workload** — a chaos-style crash-and-recover run of the
//!    full self-healing stack on the same topology, all outcomes
//!    virtual-time derived.
//!
//! Everything wall-clock derived is zeroed by the caller in stable
//! mode; the remaining fields are deterministic for a fixed seed.
//!
//! [`RouteTable`]: ps_net::RouteTable
//! [`Planner::plan`]: ps_planner::Planner::plan
//! [`Planner::plan_repair`]: ps_planner::Planner::plan_repair

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::brite::{hierarchical, FlatParams, HierParams};
use ps_net::{Credentials, LinkId, Network, NodeId, RouteTable};
use ps_planner::{
    Algorithm, Plan, PlanRepairStats, Planner, PlannerConfig, RepairContext, ServiceRequest,
};
use ps_sim::{Engine, FaultPlan, Rng, SimDuration, SimTime};
use ps_smock::{CoherencePolicy, LeaseConfig, LivenessKind, RetryPolicy, ServiceRegistration};
use ps_trace::{SamplerConfig, SeriesSummary, Tracer, WallTimer};
use std::sync::Arc;

/// Hosting-capable nodes per site — kept constant as the topology
/// grows so the planner's installation-condition candidate sets stay
/// fixed and the scaling curves isolate route/queue/search-seeding
/// work, the way a real deployment has a handful of datacenters inside
/// a large transit fabric.
const HOSTS_PER_SITE: usize = 6;

/// Builds a 5-AS BRITE hierarchy with `routers` total routers,
/// decorated for the mail service. Every router is transit fabric —
/// `partner` domain with TrustRating 4, which fails every mail
/// component's installation conditions (company-domain components and
/// the TrustRating 1–3 view server alike), so only the condition-free
/// encryptor can roam the fabric and the search stays linear in world
/// size. Hosting happens on dedicated *leaf hosts* hung off the first
/// [`HOSTS_PER_SITE`] routers of `as0` (HQ, TrustRating 5, company)
/// and `as1` (the branch office, TrustRating 3, company) over secure
/// LAN links — the way a real deployment attaches datacenter machines
/// to a transit fabric. Because hosts are leaves, a host crash dirties
/// only its own shortest-path tree, which is exactly the damage
/// profile [`RouteTable::repair`] patches without re-running Dijkstra
/// anywhere else.
/// Returns `(network, server_node, client_node)`.
pub fn scale_network(routers: usize, seed: u64) -> (Network, NodeId, NodeId) {
    let as_count = 5;
    let mut rng = Rng::seed_from_u64(seed);
    let params = HierParams {
        as_count,
        router: FlatParams {
            nodes: routers / as_count,
            ..FlatParams::default()
        },
        ..HierParams::default()
    };
    let mut net = hierarchical(&mut rng, &params);
    for id in net.node_ids().collect::<Vec<_>>() {
        let node = net.node_mut(id);
        node.credentials = node
            .credentials
            .clone()
            .with("TrustRating", 4i64)
            .with("Domain", "partner");
    }
    let lan = SimDuration::from_nanos(100_000); // 100 µs LAN hop
    let attach = |net: &mut Network, site: &str, trust: i64| -> Vec<NodeId> {
        let uplinks: Vec<NodeId> = net
            .node_ids()
            .filter(|&n| net.node(n).site == site)
            .take(HOSTS_PER_SITE)
            .collect();
        uplinks
            .iter()
            .enumerate()
            .map(|(i, &router)| {
                let host = net.add_node(
                    format!("{site}-host-{i}"),
                    site,
                    1.0,
                    Credentials::new()
                        .with("TrustRating", trust)
                        .with("Domain", "company"),
                );
                net.add_link(
                    router,
                    host,
                    lan,
                    1e9,
                    Credentials::new().with("Secure", true),
                );
                host
            })
            .collect()
    };
    let hq = attach(&mut net, "as0", 5);
    attach(&mut net, "as1", 3);
    // The client is a plain branch-office workstation: partner-grade
    // trust, so no mail component can install on it and the service
    // chain spreads across the branch datacenter hosts instead of
    // collapsing onto the requester.
    let uplink = net
        .node_ids()
        .find(|&n| net.node(n).site == "as1")
        .expect("an as1 router");
    let client = net.add_node(
        "as1-client",
        "as1",
        1.0,
        Credentials::new()
            .with("TrustRating", 4i64)
            .with("Domain", "partner"),
    );
    net.add_link(
        uplink,
        client,
        lan,
        1e9,
        Credentials::new().with("Secure", true),
    );
    (net, hq[0], client)
}

/// The standard scaling request: branch workstation onto the pinned
/// mail server, trusted chain required. The workstation is
/// partner-grade, so the root floats (`free_root`) onto the branch
/// datacenter hosts and the client ↔ root edge is charged in the
/// objective.
pub fn scale_request(server: NodeId, client: NodeId) -> ServiceRequest {
    ServiceRequest::new(CLIENT_INTERFACE, client)
        .rate(2.0)
        .pin(MAIL_SERVER, server)
        .origin(server)
        .free_root()
        .require("TrustLevel", 4i64)
}

fn scale_planner() -> Planner {
    Planner::with_config(
        mail_spec(),
        PlannerConfig {
            algorithm: Algorithm::Exhaustive,
            share_route_table: true,
            ..PlannerConfig::default()
        },
    )
}

/// Engine-throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct EngineMeasure {
    /// Events processed.
    pub events: u64,
    /// Wall time, milliseconds (zeroed in stable mode by the caller).
    pub wall_ms: f64,
    /// Throughput (zeroed in stable mode by the caller).
    pub events_per_sec: f64,
}

/// Drives the calendar event queue with a steady self-rescheduling
/// load: `width` events in flight, each pop scheduling a successor at
/// a seeded pseudo-random offset (1µs..50ms — spanning in-bucket,
/// cross-bucket, and overflow distances) until `total` events have
/// been processed.
pub fn measure_engine_throughput(total: u64, width: usize, seed: u64) -> EngineMeasure {
    let mut engine: Engine<u64> = Engine::new();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..width as u64 {
        let at = SimTime::from_nanos(1_000 + rng.next_below(50_000_000));
        engine.schedule_at(at, i);
    }
    let timer = WallTimer::start();
    let mut rng_state = rng;
    let mut processed = 0u64;
    engine.run(&mut processed, |engine, processed, event| {
        *processed += 1;
        if *processed + (width as u64) <= total {
            let delay = SimDuration::from_nanos(1_000 + rng_state.next_below(50_000_000));
            engine.schedule(delay, event);
        }
    });
    let wall_ms = timer.elapsed_ms();
    EngineMeasure {
        events: processed,
        wall_ms,
        events_per_sec: if wall_ms > 0.0 {
            processed as f64 / (wall_ms / 1_000.0)
        } else {
            0.0
        },
    }
}

/// Route-table repair vs rebuild after a single link change.
#[derive(Debug, Clone, Copy)]
pub struct RouteRepairMeasure {
    /// Nodes in the network.
    pub nodes: usize,
    /// Links in the network.
    pub links: usize,
    /// Initial full build, microseconds (wall; zeroed in stable mode).
    pub build_us: u64,
    /// Delta repair after one link latency change, microseconds (wall;
    /// zeroed in stable mode).
    pub repair_us: u64,
    /// Full rebuild on the damaged network, microseconds (wall; zeroed
    /// in stable mode).
    pub rebuild_us: u64,
    /// Whether the repair fell back to a full rebuild (it must not,
    /// for a single link).
    pub full_rebuild: bool,
    /// Dijkstra sources the repair re-ran.
    pub sources_rebuilt: usize,
    /// Total sources in the table.
    pub sources_total: usize,
}

impl RouteRepairMeasure {
    /// Rebuild-to-repair speedup (0 when timings are zeroed).
    pub fn speedup(&self) -> f64 {
        if self.repair_us == 0 {
            0.0
        } else {
            self.rebuild_us as f64 / self.repair_us as f64
        }
    }
}

/// Times a single-link latency change through [`RouteTable::repair`]
/// vs [`RouteTable::build`], best of `reps` runs each, and checks the
/// repaired table against the rebuilt one on a sample of node pairs.
pub fn measure_route_repair(net: &mut Network, reps: usize, seed: u64) -> RouteRepairMeasure {
    let mut build_us = u64::MAX;
    let mut base = RouteTable::build(net);
    for _ in 0..reps {
        let timer = WallTimer::start();
        base = RouteTable::build(net);
        build_us = build_us.min(timer.elapsed_micros());
    }

    // Damage: an 8x latency hit on one link. An arbitrary link can
    // carry a large share of the shortest-path trees (an inter-AS
    // trunk pushes `repair` over its damage threshold into the
    // full-rebuild path by design, and even a mid-tier link can sit in
    // a double-digit percentage of trees) — so scan deterministically
    // from the middle of the link array for a link whose damage stays
    // genuinely localized (at most 1/32 of sources affected), the case
    // the delta repair targets. The scan uses the classification-only
    // `affected_sources` dry run, so rejected candidates never pay for
    // actual Dijkstra re-runs. The threshold fallback itself is
    // covered by the ps-netmodel property tests.
    let n = net.node_count();
    let links = net.link_count() as u32;
    let mut victim = None;
    for offset in 0..links {
        let cand = LinkId((links / 2 + offset) % links);
        let old_latency = net.link(cand).latency;
        net.link_mut(cand).latency =
            SimDuration::from_nanos(old_latency.as_nanos().saturating_mul(8).max(1_000_000));
        if base.affected_sources(net, &[cand], &[]) <= (n / 32).max(2) {
            victim = Some(cand);
            break;
        }
        net.link_mut(cand).latency = old_latency;
    }
    let victim = victim.expect("a link whose damage stays under the repair threshold");

    let mut repair_us = u64::MAX;
    let mut repaired = base.clone();
    let mut outcome = None;
    for _ in 0..reps {
        let mut table = base.clone();
        let timer = WallTimer::start();
        let o = table.repair(net, &[victim], &[]);
        repair_us = repair_us.min(timer.elapsed_micros());
        repaired = table;
        outcome = Some(o);
    }
    let outcome = outcome.expect("at least one repair rep");

    let mut rebuild_us = u64::MAX;
    let mut rebuilt = RouteTable::build(net);
    for _ in 0..reps {
        let timer = WallTimer::start();
        rebuilt = RouteTable::build(net);
        rebuild_us = rebuild_us.min(timer.elapsed_micros());
    }

    // Sampled equivalence: repaired costs must match the full rebuild.
    let mut rng = Rng::seed_from_u64(seed ^ 0x5ca1e);
    for _ in 0..256 {
        let a = NodeId(rng.next_below(net.node_count() as u64) as u32);
        let b = NodeId(rng.next_below(net.node_count() as u64) as u32);
        assert_eq!(
            repaired.latency(a, b),
            rebuilt.latency(a, b),
            "repaired table diverges from full rebuild at {a} -> {b}"
        );
    }

    RouteRepairMeasure {
        nodes: net.node_count(),
        links: net.link_count(),
        build_us,
        repair_us,
        rebuild_us,
        full_rebuild: outcome.full_rebuild,
        sources_rebuilt: outcome.sources_rebuilt,
        sources_total: outcome.sources_total,
    }
}

/// Warm-start vs cold replanning after damage.
#[derive(Debug, Clone)]
pub struct ReplanMeasure {
    /// Nodes in the network.
    pub nodes: usize,
    /// From-scratch replan, microseconds (wall; zeroed in stable mode).
    pub cold_us: u64,
    /// Warm-start repair (including its share of delta route-table
    /// repair), microseconds (wall; zeroed in stable mode).
    pub warm_us: u64,
    /// The common optimal objective both paths must reach.
    pub objective: f64,
    /// Placements that moved between the old plan and the repaired one.
    pub churn_moved: usize,
    /// Placements in the repaired plan.
    pub placements: usize,
    /// Warm-start statistics from the repaired plan.
    pub repair: PlanRepairStats,
}

impl ReplanMeasure {
    /// Cold-to-warm speedup (0 when timings are zeroed).
    pub fn speedup(&self) -> f64 {
        if self.warm_us == 0 {
            0.0
        } else {
            self.cold_us as f64 / self.warm_us as f64
        }
    }
}

/// Counts placements of `new` that differ from `old` at the same
/// linkage-graph position (component moved to another node). Shape
/// changes count every unmatched placement as moved.
fn churn(old: &Plan, new: &Plan) -> usize {
    new.placements
        .iter()
        .filter(|p| {
            !old.placements
                .iter()
                .any(|q| q.component == p.component && q.node == p.node)
        })
        .count()
}

/// Plans on the healthy network, quarantines a mid-chain placement
/// node (falling back to a route via-node when the whole chain sits on
/// the client and pinned server), then times a cold from-scratch
/// replan against a warm [`Planner::plan_repair`] seeded with the
/// surviving plan and the pre-damage route table. Asserts both reach
/// the identical objective.
///
/// [`Planner::plan_repair`]: ps_planner::Planner::plan_repair
pub fn measure_replan(
    net: &mut Network,
    server: NodeId,
    client: NodeId,
    reps: usize,
) -> ReplanMeasure {
    let planner = scale_planner();
    let translator = mail_translator();
    let request = scale_request(server, client);
    let old = planner
        .plan(net, &translator, &request)
        .expect("healthy plan");
    let prior_routes = Arc::new(RouteTable::build(net));

    // Damage: kill a mid-chain placement node; fall back to a route
    // via-node so the damage always forces the planner to act.
    let victim = old
        .placements
        .iter()
        .map(|p| p.node)
        .find(|&n| n != client && n != server)
        .or_else(|| {
            old.edges
                .iter()
                .flat_map(|e| e.route.via.iter().copied())
                .find(|&n| n != client && n != server)
        })
        .expect("a quarantinable node in the plan");
    net.set_node_up(victim, false);

    let mut cold_us = u64::MAX;
    let mut cold = None;
    for _ in 0..reps {
        let timer = WallTimer::start();
        let plan = planner
            .plan(net, &translator, &request)
            .expect("cold replan");
        cold_us = cold_us.min(timer.elapsed_micros());
        cold = Some(plan);
    }
    let cold = cold.expect("at least one cold rep");

    let mut warm_us = u64::MAX;
    let mut warm = None;
    for _ in 0..reps {
        let ctx = RepairContext {
            old_plan: &old,
            dirty_nodes: vec![victim],
            dirty_links: Vec::new(),
            prior_routes: Some(prior_routes.clone()),
        };
        let timer = WallTimer::start();
        let plan = planner
            .plan_repair(net, &translator, &request, &ctx)
            .expect("warm repair");
        warm_us = warm_us.min(timer.elapsed_micros());
        warm = Some(plan);
    }
    let warm = warm.expect("at least one warm rep");

    assert!(
        (cold.objective_value - warm.objective_value).abs()
            <= 1e-6 * cold.objective_value.abs().max(1.0),
        "warm repair diverged from cold replan: {} vs {}",
        warm.objective_value,
        cold.objective_value
    );

    ReplanMeasure {
        nodes: net.node_count(),
        cold_us,
        warm_us,
        objective: warm.objective_value,
        churn_moved: churn(&old, &warm),
        placements: warm.placements.len(),
        repair: warm.repair.expect("repaired plan carries stats"),
    }
}

/// Observability knobs for [`run_heal_workload_with`].
#[derive(Debug, Clone, Default)]
pub struct HealWorkloadOptions {
    /// Lease parameters; `None` keeps [`LeaseConfig::default`].
    pub lease: Option<LeaseConfig>,
    /// Enable the world's time-series sampler with this config.
    pub sampler: Option<SamplerConfig>,
    /// Wire bytes per lease renewal charged to link utilization;
    /// `0` disables the accounting.
    pub lease_renewal_bytes: u64,
    /// Extra virtual time to idle after recovery before the final
    /// charge/sample, so steady-state lease renewals show up in the
    /// series (the bare workload ends within ~50 ms of the redeployed
    /// instances' lease grants).
    pub settle: Option<SimDuration>,
}

/// Outcome of the chaos-style heal workload (virtual-time derived
/// except `wall_ms`).
#[derive(Debug, Clone)]
pub struct HealWorkloadOutcome {
    /// Nodes in the topology.
    pub nodes: usize,
    /// The crashed node.
    pub crashed: NodeId,
    /// Healing passes executed.
    pub heal_passes: usize,
    /// Successful redeployments across all passes.
    pub replans: usize,
    /// Re-plan passes that found nothing feasible.
    pub infeasible: usize,
    /// Virtual time of the lease-based node-down verdict, ms.
    pub detected_ms: Option<f64>,
    /// Virtual time after which the managed plan avoided the crashed
    /// node, ms.
    pub recovered_ms: Option<f64>,
    /// Warm-start statistics aggregated over all healing passes.
    pub repair: PlanRepairStats,
    /// Wall time of the whole run, milliseconds (zeroed in stable
    /// mode by the caller).
    pub wall_ms: f64,
    /// Lease-renewal bytes charged to the network (0 when accounting
    /// was off).
    pub lease_renewal_bytes: u64,
    /// Time-series summaries, sorted by name (empty when the sampler
    /// was off).
    pub series: Vec<(String, SeriesSummary)>,
}

/// Runs the full self-healing stack on a scale topology: install the
/// mail service, connect and manage one branch client, crash a
/// mid-chain placement node at 1s virtual, then heal on a 1s cadence
/// until the plan avoids the crashed node. Leases are the failure
/// detector; no manual reconnects.
pub fn run_heal_workload(
    net: Network,
    server: NodeId,
    client: NodeId,
    seed: u64,
    tracer: &Tracer,
) -> HealWorkloadOutcome {
    run_heal_workload_with(
        net,
        server,
        client,
        seed,
        tracer,
        &HealWorkloadOptions::default(),
    )
}

/// [`run_heal_workload`] with observability knobs: lease override,
/// time-series sampling, and lease-renewal traffic accounting.
pub fn run_heal_workload_with(
    net: Network,
    server: NodeId,
    client: NodeId,
    seed: u64,
    tracer: &Tracer,
    options: &HealWorkloadOptions,
) -> HealWorkloadOutcome {
    let timer = WallTimer::start();
    let nodes = net.node_count();
    let mut framework = Framework::new(net, server, Box::new(mail_translator()));
    // Without a shared route table every route query during planning and
    // healing pays an on-demand Dijkstra; at 1000 routers that turns one
    // connect into minutes of work.
    framework.planner_config(PlannerConfig {
        algorithm: Algorithm::Exhaustive,
        share_route_table: true,
        ..PlannerConfig::default()
    });
    framework.enable_self_healing();
    framework.set_tracer(tracer.clone());
    register_mail_components(
        &mut framework.server.registry,
        Keyring::new(1),
        CoherencePolicy::CountLimit(500),
    );
    framework.register_service(
        ServiceRegistration::new(mail_spec())
            .attribute("type", "mail")
            .proxy_code_size(32 * 1024)
            .home_node(server),
    );
    framework
        .install_primary("mail", MAIL_SERVER, server)
        .expect("primary");
    framework.world.enable_retry(RetryPolicy {
        max_attempts: 3,
        timeout: SimDuration::from_secs(2),
        backoff_multiplier: 2.0,
        deadline: None,
    });
    framework
        .world
        .enable_leases(options.lease.unwrap_or_default());
    framework.world.set_fault_seed(seed);
    if let Some(sampler) = options.sampler {
        framework.enable_sampler(sampler);
    }
    if options.lease_renewal_bytes > 0 {
        framework.account_lease_traffic(options.lease_renewal_bytes);
    }

    let request = scale_request(server, client);
    let conn = framework.connect("mail", &request).expect("connect");
    let victim = conn
        .plan
        .placements
        .iter()
        .map(|p| p.node)
        .find(|&n| n != client && n != server)
        .or_else(|| {
            // All components sit on the client and pinned server: crash
            // a route via-node instead so healing still has to act.
            conn.plan
                .edges
                .iter()
                .flat_map(|e| e.route.via.iter().copied())
                .find(|&n| n != client && n != server)
        })
        .expect("a crashable node in the plan");
    let handle = framework.manage("mail", request, conn);

    let crash_at = SimTime::from_nanos(1_000_000_000);
    let mut plan = FaultPlan::new();
    plan.crash(crash_at, victim.0);
    framework.world.install_fault_plan(&plan);

    let horizon = SimTime::from_nanos(120_000_000_000);
    let heal_period = SimDuration::from_secs(1);
    let mut detected_at = None;
    let mut recovered_at = None;
    let mut replans = 0;
    let mut infeasible = 0;
    let mut heal_passes = 0;
    let mut repair = PlanRepairStats::default();
    framework.run_until(crash_at);
    let mut now = crash_at;
    while now < horizon {
        now += heal_period;
        framework.run_until(now);
        let report = framework.heal();
        heal_passes += 1;
        replans += report.recovered.len();
        infeasible += report.infeasible.len();
        repair += report.repair;
        for event in &report.liveness {
            if let LivenessKind::NodeDown { node } = event.kind {
                if node == victim && detected_at.is_none() {
                    detected_at = Some(event.at);
                }
            }
        }
        if detected_at.is_some() && recovered_at.is_none() {
            let healthy = framework.managed_connection(handle).is_some_and(|c| {
                c.plan.placements.iter().all(|p| p.node != victim)
                    && c.plan
                        .edges
                        .iter()
                        .all(|e| e.route.via.iter().all(|&n| n != victim))
            });
            if healthy {
                recovered_at = Some(report.at);
            }
        }
        if recovered_at.is_some() {
            break;
        }
    }
    framework.run();
    if let Some(settle) = options.settle {
        let end = framework.world.now() + settle;
        framework.world.run_until(end);
    }
    framework.world.charge_lease_renewals();
    if options.sampler.is_some() {
        framework.world.sample_now();
    }
    let series = framework
        .world
        .sampler()
        .map(|s| s.summaries())
        .unwrap_or_default();
    let lease_renewal_bytes = framework.world.lease_renewal_bytes();

    let ms = |t: SimTime| t.as_nanos() as f64 / 1_000_000.0;
    HealWorkloadOutcome {
        nodes,
        crashed: victim,
        heal_passes,
        replans,
        infeasible,
        detected_ms: detected_at.map(ms),
        recovered_ms: recovered_at.map(ms),
        repair,
        wall_ms: timer.elapsed_ms(),
        lease_renewal_bytes,
        series,
    }
}
