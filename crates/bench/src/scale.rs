//! Thousand-node scaling studies backing the `bench_scale` binary.
//!
//! Four measurements over progressively larger BRITE hierarchies:
//!
//! 1. **Engine throughput** — events/second through the calendar event
//!    queue under a steady self-rescheduling load.
//! 2. **Route-table repair** — microseconds to delta-repair an
//!    all-pairs [`RouteTable`] after a single link change vs rebuilding
//!    it from scratch, with a sampled equivalence check.
//! 3. **Warm vs cold replanning** — wall time of
//!    [`Planner::plan_repair`] seeded from the surviving plan (and the
//!    pre-damage route table) vs a from-scratch [`Planner::plan`],
//!    asserting identical objectives and reporting placement churn.
//! 4. **Heal workload** — a chaos-style crash-and-recover run of the
//!    full self-healing stack on the same topology, all outcomes
//!    virtual-time derived.
//!
//! Everything wall-clock derived is zeroed by the caller in stable
//! mode; the remaining fields are deterministic for a fixed seed.
//!
//! [`RouteTable`]: ps_net::RouteTable
//! [`Planner::plan`]: ps_planner::Planner::plan
//! [`Planner::plan_repair`]: ps_planner::Planner::plan_repair

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::brite::{hierarchical, FlatParams, HierParams};
use ps_net::{Credentials, LinkId, Network, NodeId, RouteTable};
use ps_planner::{
    Algorithm, HierConfig, HierMemo, Plan, PlanRepairStats, Planner, PlannerConfig, RepairContext,
    ServiceRequest,
};
use ps_sim::{Engine, FaultPlan, Rng, SimDuration, SimTime};
use ps_smock::{CoherencePolicy, LeaseConfig, LivenessKind, RetryPolicy, ServiceRegistration};
use ps_trace::{SamplerConfig, SeriesSummary, Tracer, WallTimer};
use std::sync::Arc;

/// Hosting-capable nodes per site — kept constant as the topology
/// grows so the planner's installation-condition candidate sets stay
/// fixed and the scaling curves isolate route/queue/search-seeding
/// work, the way a real deployment has a handful of datacenters inside
/// a large transit fabric.
const HOSTS_PER_SITE: usize = 6;

/// Builds a 5-AS BRITE hierarchy with `routers` total routers,
/// decorated for the mail service. Every router is transit fabric —
/// `partner` domain with TrustRating 4, which fails every mail
/// component's installation conditions (company-domain components and
/// the TrustRating 1–3 view server alike), so only the condition-free
/// encryptor can roam the fabric and the search stays linear in world
/// size. Hosting happens on dedicated *leaf hosts* hung off the first
/// [`HOSTS_PER_SITE`] routers of `as0` (HQ, TrustRating 5, company)
/// and `as1` (the branch office, TrustRating 3, company) over secure
/// LAN links — the way a real deployment attaches datacenter machines
/// to a transit fabric. Because hosts are leaves, a host crash dirties
/// only its own shortest-path tree, which is exactly the damage
/// profile [`RouteTable::repair`] patches without re-running Dijkstra
/// anywhere else.
/// Returns `(network, server_node, client_node)`.
pub fn scale_network(routers: usize, seed: u64) -> (Network, NodeId, NodeId) {
    let as_count = 5;
    let mut rng = Rng::seed_from_u64(seed);
    let params = HierParams {
        as_count,
        router: FlatParams {
            nodes: routers / as_count,
            ..FlatParams::default()
        },
        ..HierParams::default()
    };
    let mut net = hierarchical(&mut rng, &params);
    for id in net.node_ids().collect::<Vec<_>>() {
        let node = net.node_mut(id);
        node.credentials = node
            .credentials
            .clone()
            .with("TrustRating", 4i64)
            .with("Domain", "partner");
    }
    let lan = SimDuration::from_nanos(100_000); // 100 µs LAN hop
    let attach = |net: &mut Network, site: &str, trust: i64| -> Vec<NodeId> {
        let uplinks: Vec<NodeId> = net
            .node_ids()
            .filter(|&n| net.node(n).site == site)
            .take(HOSTS_PER_SITE)
            .collect();
        uplinks
            .iter()
            .enumerate()
            .map(|(i, &router)| {
                let host = net.add_node(
                    format!("{site}-host-{i}"),
                    site,
                    1.0,
                    Credentials::new()
                        .with("TrustRating", trust)
                        .with("Domain", "company"),
                );
                net.add_link(
                    router,
                    host,
                    lan,
                    1e9,
                    Credentials::new().with("Secure", true),
                );
                host
            })
            .collect()
    };
    let hq = attach(&mut net, "as0", 5);
    attach(&mut net, "as1", 3);
    // The client is a plain branch-office workstation: partner-grade
    // trust, so no mail component can install on it and the service
    // chain spreads across the branch datacenter hosts instead of
    // collapsing onto the requester.
    let uplink = net
        .node_ids()
        .find(|&n| net.node(n).site == "as1")
        .expect("an as1 router");
    let client = net.add_node(
        "as1-client",
        "as1",
        1.0,
        Credentials::new()
            .with("TrustRating", 4i64)
            .with("Domain", "partner"),
    );
    net.add_link(
        uplink,
        client,
        lan,
        1e9,
        Credentials::new().with("Secure", true),
    );
    (net, hq[0], client)
}

/// The standard scaling request: branch workstation onto the pinned
/// mail server, trusted chain required. The workstation is
/// partner-grade, so the root floats (`free_root`) onto the branch
/// datacenter hosts and the client ↔ root edge is charged in the
/// objective.
pub fn scale_request(server: NodeId, client: NodeId) -> ServiceRequest {
    ServiceRequest::new(CLIENT_INTERFACE, client)
        .rate(2.0)
        .pin(MAIL_SERVER, server)
        .origin(server)
        .free_root()
        .require("TrustLevel", 4i64)
}

fn scale_planner() -> Planner {
    Planner::with_config(
        mail_spec(),
        PlannerConfig {
            algorithm: Algorithm::Exhaustive,
            share_route_table: true,
            ..PlannerConfig::default()
        },
    )
}

/// Engine-throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct EngineMeasure {
    /// Events processed.
    pub events: u64,
    /// Wall time, milliseconds (zeroed in stable mode by the caller).
    pub wall_ms: f64,
    /// Throughput (zeroed in stable mode by the caller).
    pub events_per_sec: f64,
}

/// Drives the calendar event queue with a steady self-rescheduling
/// load: `width` events in flight, each pop scheduling a successor at
/// a seeded pseudo-random offset (1µs..50ms — spanning in-bucket,
/// cross-bucket, and overflow distances) until `total` events have
/// been processed.
pub fn measure_engine_throughput(total: u64, width: usize, seed: u64) -> EngineMeasure {
    let mut engine: Engine<u64> = Engine::new();
    let mut rng = Rng::seed_from_u64(seed);
    for i in 0..width as u64 {
        let at = SimTime::from_nanos(1_000 + rng.next_below(50_000_000));
        engine.schedule_at(at, i);
    }
    let timer = WallTimer::start();
    let mut rng_state = rng;
    let mut processed = 0u64;
    engine.run(&mut processed, |engine, processed, event| {
        *processed += 1;
        if *processed + (width as u64) <= total {
            let delay = SimDuration::from_nanos(1_000 + rng_state.next_below(50_000_000));
            engine.schedule(delay, event);
        }
    });
    let wall_ms = timer.elapsed_ms();
    EngineMeasure {
        events: processed,
        wall_ms,
        events_per_sec: if wall_ms > 0.0 {
            processed as f64 / (wall_ms / 1_000.0)
        } else {
            0.0
        },
    }
}

/// Route-table repair vs rebuild after a single link change.
#[derive(Debug, Clone, Copy)]
pub struct RouteRepairMeasure {
    /// Nodes in the network.
    pub nodes: usize,
    /// Links in the network.
    pub links: usize,
    /// Initial full build, microseconds (wall; zeroed in stable mode).
    pub build_us: u64,
    /// Delta repair after one link latency change, microseconds (wall;
    /// zeroed in stable mode).
    pub repair_us: u64,
    /// Full rebuild on the damaged network, microseconds (wall; zeroed
    /// in stable mode).
    pub rebuild_us: u64,
    /// Whether the repair fell back to a full rebuild (it must not,
    /// for a single link).
    pub full_rebuild: bool,
    /// Dijkstra sources the repair re-ran.
    pub sources_rebuilt: usize,
    /// Total sources in the table.
    pub sources_total: usize,
}

impl RouteRepairMeasure {
    /// Rebuild-to-repair speedup (0 when timings are zeroed).
    pub fn speedup(&self) -> f64 {
        if self.repair_us == 0 {
            0.0
        } else {
            self.rebuild_us as f64 / self.repair_us as f64
        }
    }
}

/// Times a single-link latency change through [`RouteTable::repair`]
/// vs [`RouteTable::build`], best of `reps` runs each, and checks the
/// repaired table against the rebuilt one on a sample of node pairs.
pub fn measure_route_repair(net: &mut Network, reps: usize, seed: u64) -> RouteRepairMeasure {
    let mut build_us = u64::MAX;
    let mut base = RouteTable::build(net);
    for _ in 0..reps {
        let timer = WallTimer::start();
        base = RouteTable::build(net);
        build_us = build_us.min(timer.elapsed_micros());
    }

    // Damage: an 8x latency hit on one link. An arbitrary link can
    // carry a large share of the shortest-path trees (an inter-AS
    // trunk pushes `repair` over its damage threshold into the
    // full-rebuild path by design, and even a mid-tier link can sit in
    // a double-digit percentage of trees) — so scan deterministically
    // from the middle of the link array for a link whose damage stays
    // genuinely localized (at most 1/32 of sources affected), the case
    // the delta repair targets. The scan uses the classification-only
    // `affected_sources` dry run, so rejected candidates never pay for
    // actual Dijkstra re-runs. The threshold fallback itself is
    // covered by the ps-netmodel property tests.
    let n = net.node_count();
    let links = net.link_count() as u32;
    let mut victim = None;
    for offset in 0..links {
        let cand = LinkId((links / 2 + offset) % links);
        let old_latency = net.link(cand).latency;
        net.link_mut(cand).latency =
            SimDuration::from_nanos(old_latency.as_nanos().saturating_mul(8).max(1_000_000));
        if base.affected_sources(net, &[cand], &[]) <= (n / 32).max(2) {
            victim = Some(cand);
            break;
        }
        net.link_mut(cand).latency = old_latency;
    }
    let victim = victim.expect("a link whose damage stays under the repair threshold");

    let mut repair_us = u64::MAX;
    let mut repaired = base.clone();
    let mut outcome = None;
    for _ in 0..reps {
        let mut table = base.clone();
        let timer = WallTimer::start();
        let o = table.repair(net, &[victim], &[]);
        repair_us = repair_us.min(timer.elapsed_micros());
        repaired = table;
        outcome = Some(o);
    }
    let outcome = outcome.expect("at least one repair rep");

    let mut rebuild_us = u64::MAX;
    let mut rebuilt = RouteTable::build(net);
    for _ in 0..reps {
        let timer = WallTimer::start();
        rebuilt = RouteTable::build(net);
        rebuild_us = rebuild_us.min(timer.elapsed_micros());
    }

    // Sampled equivalence: repaired costs must match the full rebuild.
    let mut rng = Rng::seed_from_u64(seed ^ 0x5ca1e);
    for _ in 0..256 {
        let a = NodeId(rng.next_below(net.node_count() as u64) as u32);
        let b = NodeId(rng.next_below(net.node_count() as u64) as u32);
        assert_eq!(
            repaired.latency(a, b),
            rebuilt.latency(a, b),
            "repaired table diverges from full rebuild at {a} -> {b}"
        );
    }

    RouteRepairMeasure {
        nodes: net.node_count(),
        links: net.link_count(),
        build_us,
        repair_us,
        rebuild_us,
        full_rebuild: outcome.full_rebuild,
        sources_rebuilt: outcome.sources_rebuilt,
        sources_total: outcome.sources_total,
    }
}

/// Warm-start vs cold replanning after damage.
#[derive(Debug, Clone)]
pub struct ReplanMeasure {
    /// Nodes in the network.
    pub nodes: usize,
    /// From-scratch replan, microseconds (wall; zeroed in stable mode).
    pub cold_us: u64,
    /// Warm-start repair (including its share of delta route-table
    /// repair), microseconds (wall; zeroed in stable mode).
    pub warm_us: u64,
    /// The common optimal objective both paths must reach.
    pub objective: f64,
    /// Placements that moved between the old plan and the repaired one.
    pub churn_moved: usize,
    /// Placements in the repaired plan.
    pub placements: usize,
    /// Warm-start statistics from the repaired plan.
    pub repair: PlanRepairStats,
}

impl ReplanMeasure {
    /// Cold-to-warm speedup (0 when timings are zeroed).
    pub fn speedup(&self) -> f64 {
        if self.warm_us == 0 {
            0.0
        } else {
            self.cold_us as f64 / self.warm_us as f64
        }
    }
}

/// Counts placements of `new` that differ from `old` at the same
/// linkage-graph position (component moved to another node). Shape
/// changes count every unmatched placement as moved.
fn churn(old: &Plan, new: &Plan) -> usize {
    new.placements
        .iter()
        .filter(|p| {
            !old.placements
                .iter()
                .any(|q| q.component == p.component && q.node == p.node)
        })
        .count()
}

/// Plans on the healthy network, quarantines a mid-chain placement
/// node (falling back to a route via-node when the whole chain sits on
/// the client and pinned server), then times a cold from-scratch
/// replan against a warm [`Planner::plan_repair`] seeded with the
/// surviving plan and the pre-damage route table. Asserts both reach
/// the identical objective.
///
/// [`Planner::plan_repair`]: ps_planner::Planner::plan_repair
pub fn measure_replan(
    net: &mut Network,
    server: NodeId,
    client: NodeId,
    reps: usize,
) -> ReplanMeasure {
    let planner = scale_planner();
    let translator = mail_translator();
    let request = scale_request(server, client);
    let old = planner
        .plan(net, &translator, &request)
        .expect("healthy plan");
    let prior_routes = Arc::new(RouteTable::build(net));

    // Damage: kill a mid-chain placement node; fall back to a route
    // via-node so the damage always forces the planner to act.
    let victim = old
        .placements
        .iter()
        .map(|p| p.node)
        .find(|&n| n != client && n != server)
        .or_else(|| {
            old.edges
                .iter()
                .flat_map(|e| e.route.via.iter().copied())
                .find(|&n| n != client && n != server)
        })
        .expect("a quarantinable node in the plan");
    net.set_node_up(victim, false);

    let mut cold_us = u64::MAX;
    let mut cold = None;
    for _ in 0..reps {
        let timer = WallTimer::start();
        let plan = planner
            .plan(net, &translator, &request)
            .expect("cold replan");
        cold_us = cold_us.min(timer.elapsed_micros());
        cold = Some(plan);
    }
    let cold = cold.expect("at least one cold rep");

    let mut warm_us = u64::MAX;
    let mut warm = None;
    for _ in 0..reps {
        let ctx = RepairContext {
            old_plan: &old,
            dirty_nodes: vec![victim],
            dirty_links: Vec::new(),
            prior_routes: Some(prior_routes.clone()),
        };
        let timer = WallTimer::start();
        let plan = planner
            .plan_repair(net, &translator, &request, &ctx)
            .expect("warm repair");
        warm_us = warm_us.min(timer.elapsed_micros());
        warm = Some(plan);
    }
    let warm = warm.expect("at least one warm rep");

    assert!(
        (cold.objective_value - warm.objective_value).abs()
            <= 1e-6 * cold.objective_value.abs().max(1.0),
        "warm repair diverged from cold replan: {} vs {}",
        warm.objective_value,
        cold.objective_value
    );

    ReplanMeasure {
        nodes: net.node_count(),
        cold_us,
        warm_us,
        objective: warm.objective_value,
        churn_moved: churn(&old, &warm),
        placements: warm.placements.len(),
        repair: warm.repair.expect("repaired plan carries stats"),
    }
}

/// Flat vs hierarchical cold planning on one world.
#[derive(Debug, Clone, Copy)]
pub struct HierPlanMeasure {
    /// Nodes in the network.
    pub nodes: usize,
    /// Regions (BRITE autonomous systems) in the fabric.
    pub regions: usize,
    /// Flat from-scratch plan, microseconds (wall; zeroed in stable
    /// mode).
    pub flat_us: u64,
    /// Hierarchical plan with a fresh memo every rep — the true cold
    /// path — microseconds (wall; zeroed in stable mode).
    pub hier_cold_us: u64,
    /// Hierarchical plan against a pre-populated memo, microseconds
    /// (wall; zeroed in stable mode).
    pub hier_warm_us: u64,
    /// Optimal objective from the flat exhaustive search.
    pub flat_objective: f64,
    /// Objective of the gateway-composed plan (equal to flat, or worse
    /// by at most the reported gap).
    pub hier_objective: f64,
    /// Admissible optimality-gap bound carried by the composed plan,
    /// micro-units of the objective (0 when the plans agree exactly or
    /// the refinement sweep proved optimality).
    pub gap_micro: u64,
    /// Deterministic search effort of the flat path
    /// ([`ps_planner::PlanStats::work_units`]).
    pub work_flat: u64,
    /// Deterministic search effort of the hierarchical cold path.
    pub work_hier: u64,
    /// Region segments solved by the cold hierarchical plan.
    pub segments: u32,
    /// Memo hits observed by the warm hierarchical plan.
    pub warm_memo_hits: u32,
    /// Candidate-universe size of the composed solve.
    pub universe: u32,
}

impl HierPlanMeasure {
    /// Flat-to-hierarchical cold wall speedup (0 when zeroed).
    pub fn wall_speedup(&self) -> f64 {
        if self.hier_cold_us == 0 {
            0.0
        } else {
            self.flat_us as f64 / self.hier_cold_us as f64
        }
    }

    /// Flat-to-hierarchical deterministic work ratio — seed-stable, so
    /// `verify.sh` can guard it in stable mode where wall clocks are
    /// zeroed.
    pub fn work_speedup(&self) -> f64 {
        if self.work_hier == 0 {
            0.0
        } else {
            self.work_flat as f64 / self.work_hier as f64
        }
    }
}

/// Times a flat exhaustive cold plan against the hierarchical
/// gateway-composed path on the same request: cold (fresh
/// [`HierMemo`] every rep, so region segments are re-solved) and warm
/// (shared memo, so segment shortlists are hits). The flat objective
/// is the provable optimum; the composed objective must match it or
/// carry a non-zero gap bound.
pub fn measure_hier_plan(
    net: &Network,
    server: NodeId,
    client: NodeId,
    reps: usize,
) -> HierPlanMeasure {
    let translator = mail_translator();
    let request = scale_request(server, client);

    let flat_planner = scale_planner();
    let mut flat_us = u64::MAX;
    let mut flat = None;
    for _ in 0..reps {
        let timer = WallTimer::start();
        let plan = flat_planner
            .plan(net, &translator, &request)
            .expect("flat plan");
        flat_us = flat_us.min(timer.elapsed_micros());
        flat = Some(plan);
    }
    let flat = flat.expect("at least one flat rep");

    let hier_planner = Planner::with_config(
        mail_spec(),
        PlannerConfig {
            algorithm: Algorithm::Exhaustive,
            share_route_table: true,
            hier: Some(HierConfig::default()),
            ..PlannerConfig::default()
        },
    );
    let mut hier_cold_us = u64::MAX;
    let mut hier = None;
    for _ in 0..reps {
        let memo = HierMemo::new();
        let timer = WallTimer::start();
        let plan = hier_planner
            .plan_hierarchical(net, &translator, &request, &memo)
            .expect("hier cold plan");
        hier_cold_us = hier_cold_us.min(timer.elapsed_micros());
        hier = Some(plan);
    }
    let hier = hier.expect("at least one hier rep");

    let memo = HierMemo::new();
    let warm_seed = hier_planner
        .plan_hierarchical(net, &translator, &request, &memo)
        .expect("memo-populating plan");
    let mut hier_warm_us = u64::MAX;
    let mut warm_memo_hits = warm_seed.stats.hier_memo_hits;
    for _ in 0..reps {
        let timer = WallTimer::start();
        let plan = hier_planner
            .plan_hierarchical(net, &translator, &request, &memo)
            .expect("hier warm plan");
        hier_warm_us = hier_warm_us.min(timer.elapsed_micros());
        warm_memo_hits = plan.stats.hier_memo_hits;
    }

    // The flat exhaustive search is the optimum; composition can never
    // beat it, and any shortfall must be covered by the reported bound.
    assert!(
        hier.objective_value + 1e-9 >= flat.objective_value,
        "hierarchical plan beat the exhaustive optimum: {} vs {}",
        hier.objective_value,
        flat.objective_value
    );

    let regions = ps_net::RegionMap::build(net).len();
    HierPlanMeasure {
        nodes: net.node_count(),
        regions,
        flat_us,
        hier_cold_us,
        hier_warm_us,
        flat_objective: flat.objective_value,
        hier_objective: hier.objective_value,
        gap_micro: hier.stats.hier_gap_micro,
        work_flat: flat.stats.work_units(),
        work_hier: hier.stats.work_units(),
        segments: hier.stats.hier_segments,
        warm_memo_hits,
        universe: hier.stats.hier_universe,
    }
}

/// Knobs for the open-loop client-population run, overridable from the
/// environment (`PS_OPENLOOP_CLIENTS`, `PS_OPENLOOP_ARRIVALS`,
/// `PS_OPENLOOP_ATTACH`).
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// Logical leaf-client population size.
    pub clients: u64,
    /// Connect arrivals to drive through the gateway.
    pub arrivals: u64,
    /// Distinct attachment routers the population hangs off.
    pub attach_routers: usize,
    /// Seed for the arrival process and popularity draw.
    pub seed: u64,
    /// Diurnal period, virtual hours.
    pub day_hours: f64,
    /// Peak arrival rate, connects per virtual second.
    pub peak_rps: f64,
    /// Popularity skew: client rank drawn as `u^tail_alpha`, so larger
    /// values concentrate arrivals on fewer logical clients
    /// (heavy-tailed sessions).
    pub tail_alpha: f64,
}

impl OpenLoopConfig {
    /// Defaults (120k clients, 150k arrivals, 256 attachment routers),
    /// with env overrides applied and the arrival count reduced in
    /// stable mode where wall-derived outputs are zeroed anyway.
    pub fn from_env(seed: u64, stable: bool) -> Self {
        let env_u64 = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        OpenLoopConfig {
            clients: env_u64("PS_OPENLOOP_CLIENTS", 120_000),
            arrivals: env_u64(
                "PS_OPENLOOP_ARRIVALS",
                if stable { 20_000 } else { 150_000 },
            ),
            attach_routers: env_u64("PS_OPENLOOP_ATTACH", 256) as usize,
            seed,
            day_hours: 24.0,
            peak_rps: 4.0,
            tail_alpha: 1.6,
        }
    }
}

/// Outcome of the open-loop population run. Everything except the
/// `wall_ms`-derived fields is deterministic for a fixed seed.
#[derive(Debug, Clone)]
pub struct OpenLoopOutcome {
    /// Logical client population.
    pub clients: u64,
    /// Arrivals driven.
    pub arrivals: u64,
    /// Distinct logical clients that actually connected.
    pub distinct_clients: u64,
    /// Attachment routers carrying the population.
    pub attach_routers: usize,
    /// Full hierarchical plans executed (per-attachment cache misses).
    pub plans: u64,
    /// Arrivals served from the per-attachment plan cache.
    pub cache_hits: u64,
    /// Region-shortlist memo hits across all plans (shared memo).
    pub memo_hits: u64,
    /// Region segments solved (memo misses).
    pub memo_misses: u64,
    /// Virtual span of the arrival process, hours.
    pub virtual_hours: f64,
    /// Arrivals in the busiest virtual hour.
    pub peak_hour_arrivals: u64,
    /// Arrivals in the quietest complete virtual hour.
    pub trough_hour_arrivals: u64,
    /// Wall time of the whole drive, ms (zeroed in stable mode by the
    /// caller).
    pub wall_ms: f64,
    /// Sustained connect throughput, arrivals per wall second (zeroed
    /// in stable mode by the caller).
    pub connects_per_sec: f64,
    /// Plan-latency percentiles over the cache-miss plans, wall ms
    /// (zeroed in stable mode by the caller).
    pub plan_p50_ms: f64,
    /// 99th percentile plan latency, wall ms.
    pub plan_p99_ms: f64,
    /// Worst plan latency, wall ms.
    pub plan_max_ms: f64,
}

/// Drives an open-loop client population against the hierarchical
/// planner: a seeded inhomogeneous-Poisson arrival process (thinned
/// against a diurnal sine profile) draws heavy-tailed logical client
/// ranks, maps each onto one of `attach_routers` leaf attachment
/// points spread across the fabric, and serves every arrival the way a
/// gateway would — a per-attachment plan-cache lookup, falling through
/// to a full gateway-composed solve sharing one [`HierMemo`]. Arrivals
/// are open-loop: the process never waits for a previous connect, so
/// the measured rate is offered load, not closed-loop feedback.
///
/// Mutates `net` by attaching the leaf client nodes.
pub fn run_open_loop(
    net: &mut Network,
    server: NodeId,
    cfg: &OpenLoopConfig,
    tracer: &Tracer,
) -> OpenLoopOutcome {
    // Attachment points: leaf workstations hung off routers sampled
    // round-robin across the whole fabric (every site, not just the
    // datacenters), partner-grade like the standard scale client so
    // the chain spreads into the datacenters.
    let lan = SimDuration::from_nanos(100_000);
    let routers: Vec<NodeId> = net.node_ids().filter(|&n| net.node(n).up).collect();
    let stride = (routers.len() / cfg.attach_routers).max(1);
    let mut attach_nodes = Vec::with_capacity(cfg.attach_routers);
    for i in 0..cfg.attach_routers {
        let uplink = routers[(i * stride) % routers.len()];
        let site = net.node(uplink).site.clone();
        let leaf = net.add_node(
            format!("ol-client-{i}"),
            site,
            1.0,
            Credentials::new()
                .with("TrustRating", 4i64)
                .with("Domain", "partner"),
        );
        net.add_link(
            uplink,
            leaf,
            lan,
            1e9,
            Credentials::new().with("Secure", true),
        );
        attach_nodes.push(leaf);
    }

    let translator = mail_translator();
    let planner = Planner::with_config(
        mail_spec(),
        PlannerConfig {
            algorithm: Algorithm::Exhaustive,
            share_route_table: true,
            hier: Some(HierConfig::default()),
            ..PlannerConfig::default()
        },
    );
    let memo = HierMemo::new();
    let mut plan_cache: Vec<Option<Plan>> = vec![None; cfg.attach_routers];
    let mut seen = vec![0u64; (cfg.clients as usize).div_ceil(64)];
    let mut hour_counts: Vec<u64> = Vec::new();

    let mut rng = Rng::seed_from_u64(cfg.seed).derive("open-loop");
    let mut t_sec = 0.0f64;
    let mut arrivals = 0u64;
    let mut distinct = 0u64;
    let mut plans = 0u64;
    let mut cache_hits = 0u64;
    let timer = WallTimer::start();
    while arrivals < cfg.arrivals {
        // Inhomogeneous Poisson by thinning: candidate arrivals at the
        // peak rate, accepted with probability lambda(t)/peak where
        // lambda follows a day-night sine (trough = 20% of peak).
        t_sec += rng.exponential(cfg.peak_rps);
        let phase = 2.0 * std::f64::consts::PI * (t_sec / 3_600.0) / cfg.day_hours;
        let lambda_frac = 0.6 + 0.4 * phase.sin();
        if !rng.chance(lambda_frac) {
            continue;
        }
        arrivals += 1;
        let hour = (t_sec / 3_600.0) as usize;
        if hour_counts.len() <= hour {
            hour_counts.resize(hour + 1, 0);
        }
        hour_counts[hour] += 1;

        // Heavy-tailed popularity: rank u^alpha concentrates repeat
        // sessions on low client ids while the tail still touches the
        // whole population.
        let u = rng.next_f64();
        let client_id = ((u.powf(cfg.tail_alpha)) * cfg.clients as f64) as u64 % cfg.clients;
        let (word, bit) = ((client_id / 64) as usize, client_id % 64);
        if seen[word] & (1 << bit) == 0 {
            seen[word] |= 1 << bit;
            distinct += 1;
        }
        let attach = (client_id % cfg.attach_routers as u64) as usize;

        if plan_cache[attach].is_some() {
            cache_hits += 1;
            tracer.count("openloop.cache_hits", 1);
            continue;
        }
        let request = scale_request(server, attach_nodes[attach]);
        let plan_timer = WallTimer::start();
        let plan = planner
            .plan_hierarchical(net, &translator, &request, &memo)
            .expect("open-loop plan");
        tracer.observe("openloop.plan_wall_ms", plan_timer.elapsed_ms());
        tracer.count("openloop.plans", 1);
        plans += 1;
        plan_cache[attach] = Some(plan);
    }
    let wall_ms = timer.elapsed_ms();

    let hist = tracer
        .registry()
        .and_then(|r| r.histogram("openloop.plan_wall_ms"));
    let (p50, p99, max) = hist
        .map(|h| (h.p50(), h.p99(), h.max))
        .unwrap_or((0.0, 0.0, 0.0));
    let complete_hours = hour_counts.len().saturating_sub(1);
    OpenLoopOutcome {
        clients: cfg.clients,
        arrivals,
        distinct_clients: distinct,
        attach_routers: cfg.attach_routers,
        plans,
        cache_hits,
        memo_hits: memo.hits(),
        memo_misses: memo.misses(),
        virtual_hours: t_sec / 3_600.0,
        peak_hour_arrivals: hour_counts.iter().copied().max().unwrap_or(0),
        trough_hour_arrivals: hour_counts[..complete_hours.max(1)]
            .iter()
            .copied()
            .min()
            .unwrap_or(0),
        wall_ms,
        connects_per_sec: if wall_ms > 0.0 {
            arrivals as f64 / (wall_ms / 1_000.0)
        } else {
            0.0
        },
        plan_p50_ms: p50,
        plan_p99_ms: p99,
        plan_max_ms: max,
    }
}

/// Observability knobs for [`run_heal_workload_with`].
#[derive(Debug, Clone, Default)]
pub struct HealWorkloadOptions {
    /// Lease parameters; `None` keeps [`LeaseConfig::default`].
    pub lease: Option<LeaseConfig>,
    /// Enable the world's time-series sampler with this config.
    pub sampler: Option<SamplerConfig>,
    /// Wire bytes per lease renewal charged to link utilization;
    /// `0` disables the accounting.
    pub lease_renewal_bytes: u64,
    /// Extra virtual time to idle after recovery before the final
    /// charge/sample, so steady-state lease renewals show up in the
    /// series (the bare workload ends within ~50 ms of the redeployed
    /// instances' lease grants).
    pub settle: Option<SimDuration>,
    /// Plan hierarchically (gateway composition + shared region memo)
    /// instead of the flat exhaustive path, populating the
    /// `planner.region.*` registry metrics the timeline report
    /// attributes plan time with.
    pub hier: bool,
}

/// Outcome of the chaos-style heal workload (virtual-time derived
/// except `wall_ms`).
#[derive(Debug, Clone)]
pub struct HealWorkloadOutcome {
    /// Nodes in the topology.
    pub nodes: usize,
    /// The crashed node.
    pub crashed: NodeId,
    /// Healing passes executed.
    pub heal_passes: usize,
    /// Successful redeployments across all passes.
    pub replans: usize,
    /// Re-plan passes that found nothing feasible.
    pub infeasible: usize,
    /// Virtual time of the lease-based node-down verdict, ms.
    pub detected_ms: Option<f64>,
    /// Virtual time after which the managed plan avoided the crashed
    /// node, ms.
    pub recovered_ms: Option<f64>,
    /// Warm-start statistics aggregated over all healing passes.
    pub repair: PlanRepairStats,
    /// Wall time of the whole run, milliseconds (zeroed in stable
    /// mode by the caller).
    pub wall_ms: f64,
    /// Lease-renewal bytes charged to the network (0 when accounting
    /// was off).
    pub lease_renewal_bytes: u64,
    /// Time-series summaries, sorted by name (empty when the sampler
    /// was off).
    pub series: Vec<(String, SeriesSummary)>,
}

/// Runs the full self-healing stack on a scale topology: install the
/// mail service, connect and manage one branch client, crash a
/// mid-chain placement node at 1s virtual, then heal on a 1s cadence
/// until the plan avoids the crashed node. Leases are the failure
/// detector; no manual reconnects.
pub fn run_heal_workload(
    net: Network,
    server: NodeId,
    client: NodeId,
    seed: u64,
    tracer: &Tracer,
) -> HealWorkloadOutcome {
    run_heal_workload_with(
        net,
        server,
        client,
        seed,
        tracer,
        &HealWorkloadOptions::default(),
    )
}

/// [`run_heal_workload`] with observability knobs: lease override,
/// time-series sampling, and lease-renewal traffic accounting.
pub fn run_heal_workload_with(
    net: Network,
    server: NodeId,
    client: NodeId,
    seed: u64,
    tracer: &Tracer,
    options: &HealWorkloadOptions,
) -> HealWorkloadOutcome {
    let timer = WallTimer::start();
    let nodes = net.node_count();
    let mut framework = Framework::new(net, server, Box::new(mail_translator()));
    // Without a shared route table every route query during planning and
    // healing pays an on-demand Dijkstra; at 1000 routers that turns one
    // connect into minutes of work.
    framework.planner_config(PlannerConfig {
        algorithm: Algorithm::Exhaustive,
        share_route_table: true,
        hier: options.hier.then(HierConfig::default),
        ..PlannerConfig::default()
    });
    framework.enable_self_healing();
    framework.set_tracer(tracer.clone());
    register_mail_components(
        &mut framework.server.registry,
        Keyring::new(1),
        CoherencePolicy::CountLimit(500),
    );
    framework.register_service(
        ServiceRegistration::new(mail_spec())
            .attribute("type", "mail")
            .proxy_code_size(32 * 1024)
            .home_node(server),
    );
    framework
        .install_primary("mail", MAIL_SERVER, server)
        .expect("primary");
    framework.world.enable_retry(RetryPolicy {
        max_attempts: 3,
        timeout: SimDuration::from_secs(2),
        backoff_multiplier: 2.0,
        deadline: None,
    });
    framework
        .world
        .enable_leases(options.lease.unwrap_or_default());
    framework.world.set_fault_seed(seed);
    if let Some(sampler) = options.sampler {
        framework.enable_sampler(sampler);
    }
    if options.lease_renewal_bytes > 0 {
        framework.account_lease_traffic(options.lease_renewal_bytes);
    }

    let request = scale_request(server, client);
    let conn = framework.connect("mail", &request).expect("connect");
    let victim = conn
        .plan
        .placements
        .iter()
        .map(|p| p.node)
        .find(|&n| n != client && n != server)
        .or_else(|| {
            // All components sit on the client and pinned server: crash
            // a route via-node instead so healing still has to act.
            conn.plan
                .edges
                .iter()
                .flat_map(|e| e.route.via.iter().copied())
                .find(|&n| n != client && n != server)
        })
        .expect("a crashable node in the plan");
    let handle = framework.manage("mail", request, conn);

    let crash_at = SimTime::from_nanos(1_000_000_000);
    let mut plan = FaultPlan::new();
    plan.crash(crash_at, victim.0);
    framework.world.install_fault_plan(&plan);

    let horizon = SimTime::from_nanos(120_000_000_000);
    let heal_period = SimDuration::from_secs(1);
    let mut detected_at = None;
    let mut recovered_at = None;
    let mut replans = 0;
    let mut infeasible = 0;
    let mut heal_passes = 0;
    let mut repair = PlanRepairStats::default();
    framework.run_until(crash_at);
    let mut now = crash_at;
    while now < horizon {
        now += heal_period;
        framework.run_until(now);
        let report = framework.heal();
        heal_passes += 1;
        replans += report.recovered.len();
        infeasible += report.infeasible.len();
        repair += report.repair;
        for event in &report.liveness {
            if let LivenessKind::NodeDown { node } = event.kind {
                if node == victim && detected_at.is_none() {
                    detected_at = Some(event.at);
                }
            }
        }
        if detected_at.is_some() && recovered_at.is_none() {
            let healthy = framework.managed_connection(handle).is_some_and(|c| {
                c.plan.placements.iter().all(|p| p.node != victim)
                    && c.plan
                        .edges
                        .iter()
                        .all(|e| e.route.via.iter().all(|&n| n != victim))
            });
            if healthy {
                recovered_at = Some(report.at);
            }
        }
        if recovered_at.is_some() {
            break;
        }
    }
    framework.run();
    if let Some(settle) = options.settle {
        let end = framework.world.now() + settle;
        framework.world.run_until(end);
    }
    framework.world.charge_lease_renewals();
    if options.sampler.is_some() {
        framework.world.sample_now();
    }
    let series = framework
        .world
        .sampler()
        .map(|s| s.summaries())
        .unwrap_or_default();
    let lease_renewal_bytes = framework.world.lease_renewal_bytes();

    let ms = |t: SimTime| t.as_nanos() as f64 / 1_000_000.0;
    HealWorkloadOutcome {
        nodes,
        crashed: victim,
        heal_passes,
        replans,
        infeasible,
        detected_ms: detected_at.map(ms),
        recovered_ms: recovered_at.map(ms),
        repair,
        wall_ms: timer.elapsed_ms(),
        lease_renewal_bytes,
        series,
    }
}
