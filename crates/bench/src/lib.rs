//! # ps-bench — benchmark harness for every table and figure
//!
//! One module per experiment; the `src/bin/` binaries print the paper's
//! rows/series, and `benches/` contains the Criterion timing benches.

#![warn(missing_docs)]

pub mod chaos;
pub mod scenarios;

pub use chaos::{outcome_json, run_chaos, ChaosBenchConfig, ChaosOutcome, DriverStats};
pub use scenarios::{
    figure7_sweep, render_figure7, run_custom_policy, run_scenario, run_scenario_with_policy,
    Fig7Config, Scenario, ScenarioResult,
};
