//! # ps-bench — benchmark harness for every table and figure
//!
//! One module per experiment; the `src/bin/` binaries print the paper's
//! rows/series, and `benches/` contains the Criterion timing benches.

#![warn(missing_docs)]

pub mod chaos;
pub mod partition;
pub mod scale;
pub mod scenarios;

pub use chaos::{outcome_json, run_chaos, ChaosBenchConfig, ChaosOutcome, DriverStats};
pub use partition::{partition_json, run_partition, PartitionBenchConfig, PartitionOutcome};
pub use scale::{
    measure_engine_throughput, measure_replan, measure_route_repair, run_heal_workload,
    run_heal_workload_with, scale_network, EngineMeasure, HealWorkloadOptions, HealWorkloadOutcome,
    ReplanMeasure, RouteRepairMeasure,
};

/// Whether the bench bins should write *stable* artifacts: every
/// wall-clock-derived field zeroed/omitted (and planning forced serial)
/// so that two same-seed runs produce byte-identical JSON/JSONL.
///
/// Enabled by `PS_STABLE_ARTIFACTS=1`; `scripts/verify.sh` uses it for
/// the double-run determinism gate over every artifact-writing bin. The
/// default (unset) keeps the real timing numbers in the published
/// `BENCH_*.json` artifacts.
pub fn stable_artifacts() -> bool {
    std::env::var("PS_STABLE_ARTIFACTS").is_ok_and(|v| v == "1")
}
pub use scenarios::{
    figure7_sweep, render_figure7, run_custom_policy, run_scenario, run_scenario_with_policy,
    Fig7Config, Scenario, ScenarioResult,
};
