//! Trust/sensitivity ablation: measured send latency of the San Diego
//! deployment as the workload's sensitivity mix shifts above the view
//! server's trust level.
//!
//! Messages with sensitivity ≤ 3 are absorbed by the San Diego cache;
//! higher levels bypass it synchronously across the WAN. As the mix
//! shifts upward the measured latency climbs from the cached floor
//! toward the no-cache ceiling — the run-time enforcement of the
//! trust-level storage policy.

use ps_bench::{run_scenario_with_policy, Fig7Config, Scenario};
use ps_smock::CoherencePolicy;
use ps_trace::Report;

fn main() {
    let mut report = Report::new("Sensitivity mix vs send latency (San Diego, trust-3 cache)");
    report.line(format!(
        "{:<18} {:>14} {:>12} {:>12}",
        "sensitivity", "bypass[frac]", "mean[ms]", "p95[ms]"
    ));
    for (lo, hi) in [(1u8, 1u8), (1, 2), (1, 3), (1, 5), (3, 5), (4, 5), (5, 5)] {
        let config = Fig7Config {
            clients: 1,
            msgs_per_client: 500,
            sensitivity: (lo, hi),
            ..Default::default()
        };
        // Expected fraction of sends above trust level 3 under the
        // uniform mix.
        let levels: Vec<u8> = (lo..=hi).collect();
        let bypass = levels.iter().filter(|&&s| s > 3).count() as f64 / levels.len() as f64;
        let r = run_scenario_with_policy(Scenario::DS0, CoherencePolicy::None, &config);
        report.line(format!(
            "{:<18} {:>14.2} {:>12.3} {:>12.3}",
            format!("uniform {lo}..={hi}"),
            bypass,
            r.send.mean(),
            r.send_p95
        ));
    }
    report.line("");
    report.line(
        "(bypass fraction x WAN round trip dominates the mean once sensitive\n\
         messages outnumber cacheable ones)",
    );
    println!("{report}");
}
