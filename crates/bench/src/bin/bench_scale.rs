//! Thousand-node scaling benchmark: calendar event queue, incremental
//! route-table repair, and warm-start plan repair.
//!
//! For each world size (100, 250, 500, 1000 routers) this measures:
//!
//! * route-table delta repair after a single link change vs a full
//!   rebuild (sampled-equivalent by construction);
//! * a warm-start `plan_repair` seeded with the surviving plan and
//!   pre-damage route table vs a cold from-scratch `plan` after a
//!   placement node dies — identical objectives asserted, placement
//!   churn reported.
//!
//! It also drives the calendar event queue at steady state for an
//! events/second figure, and runs the full self-healing stack through
//! a chaos-style crash-and-recover workload on the 1000-router world.
//!
//! Writes `BENCH_scale.json` (hand-rolled JSON, no serde in the tree)
//! to the current directory and prints the same numbers as a table.
//! Under `PS_STABLE_ARTIFACTS=1` every wall-clock-derived field is
//! zeroed so same-seed double runs are byte-identical.

use ps_bench::scale::{
    measure_engine_throughput, measure_replan, measure_route_repair, run_heal_workload,
    scale_network,
};
use ps_trace::{Report, Tracer};
use std::fmt::Write as _;

/// Total routers per scaling step.
const WORLDS: [usize; 4] = [100, 250, 500, 1000];
/// Timed repetitions per measurement (fastest run reported).
const REPS: usize = 5;
/// Events pushed through the engine-throughput measurement.
const ENGINE_EVENTS: u64 = 1_000_000;
/// Concurrent events in flight during the throughput measurement.
const ENGINE_WIDTH: usize = 4_096;
/// Seed for all topologies and workloads.
const SEED: u64 = 7_000;

fn main() {
    let stable = ps_bench::stable_artifacts();
    // Stable runs zero every wall-clock field, so repeated timing reps
    // and the long throughput drive would only burn verify time.
    let reps = if stable { 1 } else { REPS };
    let engine_events = if stable {
        ENGINE_EVENTS / 10
    } else {
        ENGINE_EVENTS
    };
    let mut report = Report::new("Thousand-node scaling: route repair + warm-start replanning");
    let mut entries = Vec::new();

    // Engine throughput through the calendar queue.
    let mut engine = measure_engine_throughput(engine_events, ENGINE_WIDTH, SEED);
    if stable {
        engine.wall_ms = 0.0;
        engine.events_per_sec = 0.0;
    }
    report.kv(
        "event queue",
        format!(
            "{} events, {:.0} events/sec",
            engine.events, engine.events_per_sec
        ),
    );

    report.line("");
    report.line(format!(
        "{:<8} {:>9} {:>11} {:>11} {:>8} {:>10} {:>10} {:>8} {:>6}",
        "routers",
        "rt build",
        "rt rebuild",
        "rt repair",
        "rt spdup",
        "cold plan",
        "warm plan",
        "spdup",
        "churn"
    ));

    for &routers in &WORLDS {
        let (mut net, server, client) = scale_network(routers, SEED + routers as u64);

        eprintln!("[bench_scale] {routers} routers: replan...");
        let mut replan = measure_replan(&mut net.clone(), server, client, reps);
        eprintln!("[bench_scale] {routers} routers: route repair...");
        let mut route = measure_route_repair(&mut net, reps, SEED);
        assert!(
            !route.full_rebuild,
            "{routers} routers: single-link repair fell back to a full rebuild"
        );
        if !stable {
            assert!(
                replan.warm_us < replan.cold_us,
                "{routers} routers: warm repair ({}us) did not beat cold replan ({}us)",
                replan.warm_us,
                replan.cold_us
            );
            if routers >= 1000 {
                assert!(
                    route.speedup() >= 10.0,
                    "single-link route repair speedup {:.1}x below 10x at {routers} routers",
                    route.speedup()
                );
            }
        }

        let (route_speedup, replan_speedup) = if stable {
            route.build_us = 0;
            route.repair_us = 0;
            route.rebuild_us = 0;
            replan.cold_us = 0;
            replan.warm_us = 0;
            (0.0, 0.0)
        } else {
            (route.speedup(), replan.speedup())
        };

        report.line(format!(
            "{:<8} {:>8}u {:>10}u {:>10}u {:>7.1}x {:>9}u {:>9}u {:>7.1}x {:>3}/{}",
            route.nodes,
            route.build_us,
            route.rebuild_us,
            route.repair_us,
            route_speedup,
            replan.cold_us,
            replan.warm_us,
            replan_speedup,
            replan.churn_moved,
            replan.placements,
        ));

        let mut entry = String::new();
        write!(
            entry,
            "    {{\"routers\": {}, \"links\": {},\n      \
             \"route\": {{\"build_us\": {}, \"rebuild_us\": {}, \"repair_us\": {}, \
             \"speedup\": {:.3}, \"sources_rebuilt\": {}, \"sources_total\": {}}},\n      \
             \"replan\": {{\"cold_us\": {}, \"warm_us\": {}, \"speedup\": {:.3}, \
             \"objective\": {:.6}, \"churn_moved\": {}, \"placements\": {}, \
             \"chains_resolved\": {}, \"chains_reused\": {}, \"seeded_bound_cuts\": {}, \
             \"seeded\": {}}}}}",
            route.nodes,
            route.links,
            route.build_us,
            route.rebuild_us,
            route.repair_us,
            route_speedup,
            route.sources_rebuilt,
            route.sources_total,
            replan.cold_us,
            replan.warm_us,
            replan_speedup,
            replan.objective,
            replan.churn_moved,
            replan.placements,
            replan.repair.chains_resolved,
            replan.repair.chains_reused,
            replan.repair.seeded_bound_cuts,
            replan.repair.seeded,
        )
        .expect("write to string");
        entries.push(entry);
    }

    // The full self-healing stack on the largest world: crash a
    // mid-chain node, heal on a 1s cadence, leases as the detector.
    let routers = *WORLDS.last().expect("at least one world");
    eprintln!("[bench_scale] {routers} routers: heal workload...");
    let (net, server, client) = scale_network(routers, SEED + routers as u64);
    let tracer = Tracer::disabled();
    let mut heal = run_heal_workload(net, server, client, SEED, &tracer);
    assert!(
        heal.recovered_ms.is_some(),
        "1000-router heal workload did not recover within the horizon"
    );
    if stable {
        heal.wall_ms = 0.0;
    }
    report.line("");
    report.kv(
        "heal @1000 routers",
        format!(
            "crash detected {} ms, recovered {} ms (virtual), {} passes, {} replans, \
             chains {} re-solved / {} reused",
            heal.detected_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            heal.recovered_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            heal.heal_passes,
            heal.replans,
            heal.repair.chains_resolved,
            heal.repair.chains_reused,
        ),
    );

    let opt = |v: Option<f64>| v.map_or_else(|| "null".to_owned(), |v| format!("{v:.3}"));
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"engine\": {{\"events\": {}, \"wall_ms\": {:.3}, \
         \"events_per_sec\": {:.0}}},\n  \"worlds\": [\n{}\n  ],\n  \
         \"heal_1000\": {{\"nodes\": {}, \"crashed\": {}, \"heal_passes\": {}, \
         \"replans\": {}, \"infeasible\": {}, \"detected_ms\": {}, \"recovered_ms\": {}, \
         \"chains_resolved\": {}, \"chains_reused\": {}, \"seeded_bound_cuts\": {}, \
         \"seeded\": {}, \"wall_ms\": {:.3}}}\n}}\n",
        engine.events,
        engine.wall_ms,
        engine.events_per_sec,
        entries.join(",\n"),
        heal.nodes,
        heal.crashed.0,
        heal.heal_passes,
        heal.replans,
        heal.infeasible,
        opt(heal.detected_ms),
        opt(heal.recovered_ms),
        heal.repair.chains_resolved,
        heal.repair.chains_reused,
        heal.repair.seeded_bound_cuts,
        heal.repair.seeded,
        heal.wall_ms,
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    report.kv("wrote", "BENCH_scale.json");
    println!("{report}");
}
