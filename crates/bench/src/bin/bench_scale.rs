//! Thousand-node scaling benchmark: calendar event queue, incremental
//! route-table repair, and warm-start plan repair.
//!
//! For each world size (100, 250, 500, 1000 routers) this measures:
//!
//! * route-table delta repair after a single link change vs a full
//!   rebuild (sampled-equivalent by construction);
//! * a warm-start `plan_repair` seeded with the surviving plan and
//!   pre-damage route table vs a cold from-scratch `plan` after a
//!   placement node dies — identical objectives asserted, placement
//!   churn reported.
//!
//! It also drives the calendar event queue at steady state for an
//! events/second figure, and runs the full self-healing stack through
//! a chaos-style crash-and-recover workload on the 1000-router world.
//!
//! Writes `BENCH_scale.json` (hand-rolled JSON, no serde in the tree)
//! to the current directory and prints the same numbers as a table.
//! Under `PS_STABLE_ARTIFACTS=1` every wall-clock-derived field is
//! zeroed so same-seed double runs are byte-identical.

use ps_bench::scale::{
    measure_engine_throughput, measure_hier_plan, measure_replan, measure_route_repair,
    run_heal_workload, run_open_loop, scale_network, OpenLoopConfig,
};
use ps_trace::{Report, Tracer};
use std::fmt::Write as _;

/// Total routers per scaling step.
const WORLDS: [usize; 4] = [100, 250, 500, 1000];
/// Timed repetitions per measurement (fastest run reported).
const REPS: usize = 5;
/// Events pushed through the engine-throughput measurement.
const ENGINE_EVENTS: u64 = 1_000_000;
/// Concurrent events in flight during the throughput measurement.
const ENGINE_WIDTH: usize = 4_096;
/// Seed for all topologies and workloads.
const SEED: u64 = 7_000;

fn main() {
    let stable = ps_bench::stable_artifacts();
    // Stable runs zero every wall-clock field, so repeated timing reps
    // and the long throughput drive would only burn verify time.
    let reps = if stable { 1 } else { REPS };
    let engine_events = if stable {
        ENGINE_EVENTS / 10
    } else {
        ENGINE_EVENTS
    };
    let mut report = Report::new("Thousand-node scaling: route repair + warm-start replanning");
    let mut entries = Vec::new();

    // Engine throughput through the calendar queue.
    let mut engine = measure_engine_throughput(engine_events, ENGINE_WIDTH, SEED);
    if stable {
        engine.wall_ms = 0.0;
        engine.events_per_sec = 0.0;
    }
    report.kv(
        "event queue",
        format!(
            "{} events, {:.0} events/sec",
            engine.events, engine.events_per_sec
        ),
    );

    report.line("");
    report.line(format!(
        "{:<8} {:>9} {:>11} {:>11} {:>8} {:>10} {:>10} {:>8} {:>6}",
        "routers",
        "rt build",
        "rt rebuild",
        "rt repair",
        "rt spdup",
        "cold plan",
        "warm plan",
        "spdup",
        "churn"
    ));

    let mut hier_lines = Vec::new();
    for &routers in &WORLDS {
        let (mut net, server, client) = scale_network(routers, SEED + routers as u64);

        eprintln!("[bench_scale] {routers} routers: replan...");
        let mut replan = measure_replan(&mut net.clone(), server, client, reps);
        eprintln!("[bench_scale] {routers} routers: hierarchical plan...");
        let mut hier = measure_hier_plan(&net, server, client, reps);
        eprintln!("[bench_scale] {routers} routers: route repair...");
        let mut route = measure_route_repair(&mut net, reps, SEED);
        assert!(
            !route.full_rebuild,
            "{routers} routers: single-link repair fell back to a full rebuild"
        );
        if !stable {
            assert!(
                replan.warm_us < replan.cold_us,
                "{routers} routers: warm repair ({}us) did not beat cold replan ({}us)",
                replan.warm_us,
                replan.cold_us
            );
            if routers >= 1000 {
                assert!(
                    route.speedup() >= 10.0,
                    "single-link route repair speedup {:.1}x below 10x at {routers} routers",
                    route.speedup()
                );
                assert!(
                    hier.wall_speedup() >= 5.0,
                    "hierarchical cold plan speedup {:.1}x below 5x at {} nodes \
                     (flat {}us vs hier {}us)",
                    hier.wall_speedup(),
                    hier.nodes,
                    hier.flat_us,
                    hier.hier_cold_us
                );
            }
        }
        // The composed plan must either reach the flat optimum or carry
        // a non-zero admissible gap bound covering the shortfall.
        assert!(
            (hier.hier_objective - hier.flat_objective).abs()
                <= 1e-6 * hier.flat_objective.abs().max(1.0)
                || hier.gap_micro > 0,
            "{routers} routers: hier objective {} diverged from flat optimum {} \
             with no gap bound",
            hier.hier_objective,
            hier.flat_objective
        );

        let (route_speedup, replan_speedup, hier_wall_speedup) = if stable {
            route.build_us = 0;
            route.repair_us = 0;
            route.rebuild_us = 0;
            replan.cold_us = 0;
            replan.warm_us = 0;
            hier.flat_us = 0;
            hier.hier_cold_us = 0;
            hier.hier_warm_us = 0;
            (0.0, 0.0, 0.0)
        } else {
            (route.speedup(), replan.speedup(), hier.wall_speedup())
        };

        report.line(format!(
            "{:<8} {:>8}u {:>10}u {:>10}u {:>7.1}x {:>9}u {:>9}u {:>7.1}x {:>3}/{}",
            route.nodes,
            route.build_us,
            route.rebuild_us,
            route.repair_us,
            route_speedup,
            replan.cold_us,
            replan.warm_us,
            replan_speedup,
            replan.churn_moved,
            replan.placements,
        ));
        hier_lines.push(format!(
            "{:<8} {:>8} {:>10}u {:>10}u {:>10}u {:>7.1}x {:>8.1}x {:>5} {:>5} {:>8}",
            hier.nodes,
            hier.regions,
            hier.flat_us,
            hier.hier_cold_us,
            hier.hier_warm_us,
            hier_wall_speedup,
            hier.work_speedup(),
            hier.segments,
            hier.warm_memo_hits,
            hier.universe,
        ));

        let mut entry = String::new();
        write!(
            entry,
            "    {{\"routers\": {}, \"links\": {},\n      \
             \"route\": {{\"build_us\": {}, \"rebuild_us\": {}, \"repair_us\": {}, \
             \"speedup\": {:.3}, \"sources_rebuilt\": {}, \"sources_total\": {}}},\n      \
             \"replan\": {{\"cold_us\": {}, \"warm_us\": {}, \"speedup\": {:.3}, \
             \"objective\": {:.6}, \"churn_moved\": {}, \"placements\": {}, \
             \"chains_resolved\": {}, \"chains_reused\": {}, \"seeded_bound_cuts\": {}, \
             \"seeded\": {}}},\n      \
             \"hier\": {{\"regions\": {}, \"flat_us\": {}, \"cold_us\": {}, \"warm_us\": {}, \
             \"wall_speedup\": {:.3}, \"work_flat\": {}, \"work_hier\": {}, \
             \"work_speedup\": {:.3}, \"flat_objective\": {:.6}, \"hier_objective\": {:.6}, \
             \"gap_micro\": {}, \"segments\": {}, \"warm_memo_hits\": {}, \"universe\": {}}}}}",
            route.nodes,
            route.links,
            route.build_us,
            route.rebuild_us,
            route.repair_us,
            route_speedup,
            route.sources_rebuilt,
            route.sources_total,
            replan.cold_us,
            replan.warm_us,
            replan_speedup,
            replan.objective,
            replan.churn_moved,
            replan.placements,
            replan.repair.chains_resolved,
            replan.repair.chains_reused,
            replan.repair.seeded_bound_cuts,
            replan.repair.seeded,
            hier.regions,
            hier.flat_us,
            hier.hier_cold_us,
            hier.hier_warm_us,
            hier_wall_speedup,
            hier.work_flat,
            hier.work_hier,
            hier.work_speedup(),
            hier.flat_objective,
            hier.hier_objective,
            hier.gap_micro,
            hier.segments,
            hier.warm_memo_hits,
            hier.universe,
        )
        .expect("write to string");
        entries.push(entry);
    }

    report.line("");
    report.line(format!(
        "{:<8} {:>8} {:>11} {:>11} {:>11} {:>8} {:>9} {:>5} {:>5} {:>8}",
        "nodes",
        "regions",
        "flat plan",
        "hier cold",
        "hier warm",
        "spdup",
        "work",
        "segs",
        "hits",
        "universe"
    ));
    for line in &hier_lines {
        report.line(line.clone());
    }

    // The full self-healing stack on the largest world: crash a
    // mid-chain node, heal on a 1s cadence, leases as the detector.
    let routers = *WORLDS.last().expect("at least one world");
    eprintln!("[bench_scale] {routers} routers: heal workload...");
    let (net, server, client) = scale_network(routers, SEED + routers as u64);
    let tracer = Tracer::disabled();
    let mut heal = run_heal_workload(net, server, client, SEED, &tracer);
    assert!(
        heal.recovered_ms.is_some(),
        "1000-router heal workload did not recover within the horizon"
    );
    if stable {
        heal.wall_ms = 0.0;
    }
    report.line("");
    report.kv(
        "heal @1000 routers",
        format!(
            "crash detected {} ms, recovered {} ms (virtual), {} passes, {} replans, \
             chains {} re-solved / {} reused",
            heal.detected_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            heal.recovered_ms
                .map_or_else(|| "-".into(), |v| format!("{v:.0}")),
            heal.heal_passes,
            heal.replans,
            heal.repair.chains_resolved,
            heal.repair.chains_reused,
        ),
    );

    // Open-loop client population against the hierarchical planner on
    // the largest world: Poisson arrivals thinned to a diurnal profile,
    // heavy-tailed session popularity over 100k+ logical clients.
    eprintln!("[bench_scale] {routers} routers: open-loop population...");
    let (mut ol_net, ol_server, _ol_client) = scale_network(routers, SEED + routers as u64);
    let ol_cfg = OpenLoopConfig::from_env(SEED, stable);
    let (ol_tracer, _ol_sink) = Tracer::memory();
    let mut open_loop = run_open_loop(&mut ol_net, ol_server, &ol_cfg, &ol_tracer);
    assert!(
        open_loop.plans > 0 && open_loop.cache_hits > 0,
        "open-loop run must both plan and hit its plan cache \
         ({} plans, {} cache hits)",
        open_loop.plans,
        open_loop.cache_hits
    );
    if stable {
        open_loop.wall_ms = 0.0;
        open_loop.connects_per_sec = 0.0;
        open_loop.plan_p50_ms = 0.0;
        open_loop.plan_p99_ms = 0.0;
        open_loop.plan_max_ms = 0.0;
    }
    report.line("");
    report.kv(
        "open loop",
        format!(
            "{} arrivals over {} logical clients ({} seen) on {} attach routers, \
             {:.1} virtual hours",
            open_loop.arrivals,
            open_loop.clients,
            open_loop.distinct_clients,
            open_loop.attach_routers,
            open_loop.virtual_hours,
        ),
    );
    report.kv(
        "open loop served",
        format!(
            "{} plans + {} cache hits, region memo {} hits / {} segments, \
             {:.0} connects/sec, plan p50 {:.2}ms p99 {:.2}ms",
            open_loop.plans,
            open_loop.cache_hits,
            open_loop.memo_hits,
            open_loop.memo_misses,
            open_loop.connects_per_sec,
            open_loop.plan_p50_ms,
            open_loop.plan_p99_ms,
        ),
    );
    report.kv(
        "open loop diurnal",
        format!(
            "peak hour {} arrivals, trough hour {}",
            open_loop.peak_hour_arrivals, open_loop.trough_hour_arrivals,
        ),
    );

    let opt = |v: Option<f64>| v.map_or_else(|| "null".to_owned(), |v| format!("{v:.3}"));
    let json = format!(
        "{{\n  \"bench\": \"scale\",\n  \"engine\": {{\"events\": {}, \"wall_ms\": {:.3}, \
         \"events_per_sec\": {:.0}}},\n  \"worlds\": [\n{}\n  ],\n  \
         \"heal_1000\": {{\"nodes\": {}, \"crashed\": {}, \"heal_passes\": {}, \
         \"replans\": {}, \"infeasible\": {}, \"detected_ms\": {}, \"recovered_ms\": {}, \
         \"chains_resolved\": {}, \"chains_reused\": {}, \"seeded_bound_cuts\": {}, \
         \"seeded\": {}, \"wall_ms\": {:.3}}},\n  \
         \"open_loop\": {{\"clients\": {}, \"arrivals\": {}, \"distinct_clients\": {}, \
         \"attach_routers\": {}, \"plans\": {}, \"cache_hits\": {}, \"memo_hits\": {}, \
         \"memo_misses\": {}, \"virtual_hours\": {:.3}, \"peak_hour_arrivals\": {}, \
         \"trough_hour_arrivals\": {}, \"wall_ms\": {:.3}, \"connects_per_sec\": {:.0}, \
         \"plan_p50_ms\": {:.4}, \"plan_p99_ms\": {:.4}, \"plan_max_ms\": {:.4}}}\n}}\n",
        engine.events,
        engine.wall_ms,
        engine.events_per_sec,
        entries.join(",\n"),
        heal.nodes,
        heal.crashed.0,
        heal.heal_passes,
        heal.replans,
        heal.infeasible,
        opt(heal.detected_ms),
        opt(heal.recovered_ms),
        heal.repair.chains_resolved,
        heal.repair.chains_reused,
        heal.repair.seeded_bound_cuts,
        heal.repair.seeded,
        heal.wall_ms,
        open_loop.clients,
        open_loop.arrivals,
        open_loop.distinct_clients,
        open_loop.attach_routers,
        open_loop.plans,
        open_loop.cache_hits,
        open_loop.memo_hits,
        open_loop.memo_misses,
        open_loop.virtual_hours,
        open_loop.peak_hour_arrivals,
        open_loop.trough_hour_arrivals,
        open_loop.wall_ms,
        open_loop.connects_per_sec,
        open_loop.plan_p50_ms,
        open_loop.plan_p99_ms,
        open_loop.plan_max_ms,
    );
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    report.kv("wrote", "BENCH_scale.json");
    println!("{report}");
}
