//! Partition bench: the case-study WAN splits mid-workload, both sides
//! stay served, and the merge reconciles — writes `BENCH_partition.json`.
//!
//! Usage: `chaos_partition [SEED] [JSONL_PATH]`
//!
//! A correlated fault domain severs every WAN leg of the Seattle
//! gateway; the healer deploys a degraded detached-view chain inside
//! the minority component (writes buffer locally, reads serve from
//! cache) while the majority side keeps its full chain. When the legs
//! come back the healer reconciles: a cold re-plan on the merged
//! network, the detached view's buffer drained upstream, the duplicate
//! instances retired. Pass `JSONL_PATH` to also dump the trace stream;
//! two same-seed runs write byte-identical JSON and JSONL.

use ps_bench::partition::{partition_json, run_partition, PartitionBenchConfig};
use ps_trace::{Report, Tracer};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("SEED must be an integer"))
        .unwrap_or(42);
    let jsonl_path = args.next();

    let (tracer, sink) = Tracer::memory();
    let config = PartitionBenchConfig {
        seed,
        ..PartitionBenchConfig::default()
    };
    let outcome = run_partition(&config, &tracer);

    // The headline claims: during the split *both* sides are served —
    // the majority untouched, the minority on a local degraded chain —
    // and the merge reconciles back to the cold-plan optimum with the
    // duplicates retired and nothing lost on the majority side.
    assert_eq!(outcome.sd.lost, 0, "majority side must lose nothing");
    assert!(
        outcome.sd_during_split > 0,
        "majority side keeps operating through the split"
    );
    assert!(
        outcome.degraded_at.is_some(),
        "minority side should get a degraded chain"
    );
    assert!(
        outcome.seattle_during_split > 0,
        "minority side should be served during the split"
    );
    assert!(
        outcome.reconciled_at.is_some(),
        "the merge should reconcile"
    );
    assert!(
        outcome.retired > 0,
        "reconcile should retire the degraded duplicates"
    );
    if let Some(reconciled) = outcome.reconciled_latency_ms {
        assert!(
            (reconciled - outcome.initial_latency_ms).abs() < 1e-9,
            "reconciled plan should converge to the cold-plan optimum"
        );
    }

    let mut report = Report::new("chaos_partition: split, serve both sides, reconcile");
    report.section("partition");
    report.kv("seed", format!("{seed}"));
    report.kv(
        "split_at",
        format!("{:.1}s", outcome.split_at.as_secs_f64()),
    );
    report.kv(
        "restore_at",
        format!("{:.1}s", outcome.restore_at.as_secs_f64()),
    );
    report.kv(
        "degraded_after",
        outcome
            .degraded_latency()
            .map_or("-".into(), |d| format!("{d}")),
    );
    report.kv(
        "degraded_epoch",
        outcome
            .degraded_epoch
            .map_or("-".into(), |e| format!("{e}")),
    );
    report.section("reconcile");
    report.kv(
        "reconciled_after_restore",
        outcome
            .reconcile_latency()
            .map_or("-".into(), |d| format!("{d}")),
    );
    report.kv("retired_duplicates", format!("{}", outcome.retired));
    report.kv(
        "plan_latency",
        format!(
            "{} -> {} -> {} ms",
            outcome.initial_latency_ms,
            outcome
                .degraded_latency_ms
                .map_or("-".into(), |l| format!("{l}")),
            outcome
                .reconciled_latency_ms
                .map_or("-".into(), |l| format!("{l}")),
        ),
    );
    report.section("seattle (minority, degraded)");
    report.kv("completed", format!("{}", outcome.seattle.completed));
    report.kv("during_split", format!("{}", outcome.seattle_during_split));
    report.kv("lost", format!("{}", outcome.seattle.lost));
    report.kv("done", format!("{}", outcome.seattle.done));
    report.section("san diego (majority, untouched)");
    report.kv("completed", format!("{}", outcome.sd.completed));
    report.kv("during_split", format!("{}", outcome.sd_during_split));
    report.kv("lost", format!("{}", outcome.sd.lost));
    report.kv("done", format!("{}", outcome.sd.done));
    print!("{}", report.render());

    let json = partition_json(&outcome);
    std::fs::write("BENCH_partition.json", &json).expect("write BENCH_partition.json");
    println!("wrote BENCH_partition.json");

    if let Some(path) = jsonl_path {
        std::fs::write(&path, sink.to_jsonl()).expect("write JSONL dump");
        println!("wrote {path}");
    }
}
