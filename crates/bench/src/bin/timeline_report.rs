//! Heal-timeline and time-series telemetry report: runs the chaos
//! workload and the 1013-node crash-and-heal with the sampler and
//! lease-renewal accounting enabled, reconstructs the heal timeline
//! (detection → quarantine → redeploy) from the trace event stream,
//! extracts per-connection critical paths, tabulates percentile
//! latencies from the log-bucketed histograms, and summarizes the
//! sampled utilization series. Writes `BENCH_timeline.json`.
//!
//! Also sweeps the lease detection interval (heartbeat / duration) to
//! show the failure-detection-latency vs renewal-traffic tradeoff, and
//! doubles as the sampler overhead guard: with the sampler and tracer
//! left disabled (the default), the instrumented planning hot path must
//! stay within 5% of the freshly-measured `BENCH_planner.json` baseline
//! for the same scenario. Run `bench_planner` first.
//!
//! Every value in `BENCH_timeline.json` except the overhead guard is
//! virtual-time derived, so two same-seed runs are byte-identical; in
//! stable-artifact mode (`PS_STABLE_ARTIFACTS=1`) the wall-clock guard
//! is skipped and the field written as `null`, which `verify.sh` checks
//! with a double-run `cmp`.

use ps_bench::chaos::{run_chaos, ChaosBenchConfig, ChaosOutcome};
use ps_bench::scale::{run_heal_workload_with, scale_network, HealWorkloadOptions};
use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator};
use ps_net::casestudy::default_case_study;
use ps_planner::{Algorithm, Planner, PlannerConfig, ServiceRequest};
use ps_sim::SimDuration;
use ps_smock::LeaseConfig;
use ps_trace::{
    scope_critical_path, Event, HealTimeline, Registry, Report, SamplerConfig, SeriesSummary,
    Tracer, WallTimer,
};
use std::fmt::Write as _;

/// Minimum timed repetitions for the overhead guard (fastest kept).
const REPS: usize = 5;
/// Repetition budget, milliseconds.
const MIN_TOTAL_MS: f64 = 300.0;
/// Hard repetition cap.
const MAX_REPS: usize = 40;
/// Allowed overhead of the instrumented (sampler- and tracer-disabled)
/// planning path over the `bench_planner` baseline.
const MAX_OVERHEAD: f64 = 0.05;
/// Absolute slack (ms) so sub-millisecond baselines don't flake on
/// scheduler noise.
const ABS_SLACK_MS: f64 = 0.25;
/// Wire bytes charged per lease renewal (spec id + instance id + MAC,
/// roughly a UDP heartbeat).
const RENEWAL_BYTES: u64 = 256;

/// Histograms worth a percentile row: virtual-time latencies only
/// (`_wall_` metrics make no determinism promise and stay out).
const LATENCY_HISTOGRAMS: [&str; 3] = ["server.connect_ms", "world.invoke_ms", "heal.redeploy_ms"];

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

/// One percentile row rendered from a registry histogram.
fn percentile_rows(registry: &Registry) -> Vec<(String, ps_trace::Histogram)> {
    LATENCY_HISTOGRAMS
        .iter()
        .filter_map(|name| registry.histogram(name).map(|h| (name.to_string(), h)))
        .filter(|(_, h)| h.count > 0)
        .collect()
}

fn percentile_json(rows: &[(String, ps_trace::Histogram)]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|(name, h)| {
            format!(
                "      {{\"name\": \"{name}\", \"count\": {}, \"mean\": {:.4}, \
                 \"p50\": {:.4}, \"p90\": {:.4}, \"p99\": {:.4}, \"p999\": {:.4}, \
                 \"min\": {:.4}, \"max\": {:.4}}}",
                h.count,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.p999(),
                h.min,
                h.max,
            )
        })
        .collect();
    format!("[\n{}\n    ]", entries.join(",\n"))
}

fn series_json(series: &[(String, SeriesSummary)]) -> String {
    let entries: Vec<String> = series
        .iter()
        .map(|(name, s)| {
            format!(
                "      {{\"name\": \"{name}\", \"points\": {}, \"evicted\": {}, \
                 \"suppressed\": {}, \"min\": {:.6}, \"max\": {:.6}, \"mean\": {:.6}, \
                 \"last\": {:.6}}}",
                s.points,
                s.evicted,
                s.suppressed,
                s.min,
                s.max,
                s.mean(),
                s.last,
            )
        })
        .collect();
    if entries.is_empty() {
        "[]".to_owned()
    } else {
        format!("[\n{}\n    ]", entries.join(",\n"))
    }
}

fn timeline_json(timeline: &HealTimeline) -> String {
    let opt = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |ns| format!("{:.4}", ms(ns)));
    let incidents: Vec<String> = timeline
        .incidents
        .iter()
        .map(|i| {
            format!(
                "      {{\"node\": {}, \"instances\": {}, \"crash_ms\": {}, \
                 \"detection_ms\": {}, \"quarantine_ms\": {}, \"redeploy_ms\": {}, \
                 \"recovery_ms\": {}}}",
                i.node,
                i.instances,
                opt(i.crash_ns),
                opt(i.detection_ns()),
                opt(i.quarantine_lag_ns()),
                opt(i.redeploy_ns()),
                opt(i.recovery_ns()),
            )
        })
        .collect();
    let phases: Vec<String> = timeline
        .phase_totals()
        .iter()
        .map(|(phase, total_ns, n)| {
            format!(
                "      {{\"phase\": \"{phase}\", \"total_ms\": {:.4}, \"incidents\": {n}}}",
                ms(*total_ns)
            )
        })
        .collect();
    format!(
        "{{\"passes\": {}, \"incidents\": [\n{}\n    ],\n    \"phase_totals\": [\n{}\n    ]}}",
        timeline.passes.len(),
        incidents.join(",\n"),
        phases.join(",\n"),
    )
}

/// Critical-path JSON for one connection scope; `null` when the scope
/// produced no spans (e.g. an abandoned connection).
fn critical_json(scope: &str, events: &[Event]) -> String {
    let Some(path) = scope_critical_path(scope, events) else {
        return format!("{{\"scope\": \"{scope}\", \"path\": null}}");
    };
    let (dom_name, dom_ns) = path.dominant().unwrap_or(("", 0));
    let phases: Vec<String> = path
        .phase_totals()
        .iter()
        .map(|(name, ns)| format!("{{\"phase\": \"{name}\", \"ms\": {:.4}}}", ms(*ns)))
        .collect();
    format!(
        "{{\"scope\": \"{scope}\", \"total_ms\": {:.4}, \"dominant\": \"{dom_name}\", \
         \"dominant_ms\": {:.4}, \"phases\": [{}]}}",
        ms(path.total_ns),
        ms(dom_ns),
        phases.join(", "),
    )
}

/// Renders the shared per-leg report sections (timeline, percentiles,
/// series) into the human report.
fn report_leg(
    report: &mut Report,
    timeline: &HealTimeline,
    rows: &[(String, ps_trace::Histogram)],
    series: &[(String, SeriesSummary)],
) {
    for incident in &timeline.incidents {
        let phase_str = incident
            .phases()
            .iter()
            .map(|(phase, ns)| format!("{phase} {:.1}ms", ms(*ns)))
            .collect::<Vec<_>>()
            .join(" -> ");
        report.kv(
            format!("incident node {}", incident.node),
            if phase_str.is_empty() {
                "no recovery observed".to_owned()
            } else {
                phase_str
            },
        );
    }
    report.line(format!(
        "  {:<20} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "latency", "count", "mean", "p50", "p90", "p99", "max"
    ));
    for (name, h) in rows {
        report.line(format!(
            "  {:<20} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            name,
            h.count,
            h.mean(),
            h.p50(),
            h.p90(),
            h.p99(),
            h.max
        ));
    }
    for (name, s) in series {
        report.kv(
            format!("series {name}"),
            format!(
                "{} pts (evicted {}, suppressed {}) min {:.3} max {:.3} mean {:.3}",
                s.points,
                s.evicted,
                s.suppressed,
                s.min,
                s.max,
                s.mean()
            ),
        );
    }
}

/// One region's share of the hierarchical planner's work, read back
/// from the `planner.region.<site>.*` registry metrics.
struct RegionRow {
    region: String,
    segments: u64,
    memo_hits: u64,
    plan_wall_us: f64,
}

/// Collects per-region planning metrics from a registry snapshot.
fn region_planning_rows(registry: &Registry) -> Vec<RegionRow> {
    use std::collections::BTreeMap;
    let mut rows: BTreeMap<String, RegionRow> = BTreeMap::new();
    for (name, metric) in registry.snapshot() {
        let Some(rest) = name.strip_prefix("planner.region.") else {
            continue;
        };
        let Some((region, kind)) = rest.rsplit_once('.') else {
            continue;
        };
        let row = rows.entry(region.to_owned()).or_insert_with(|| RegionRow {
            region: region.to_owned(),
            segments: 0,
            memo_hits: 0,
            plan_wall_us: 0.0,
        });
        match (kind, metric) {
            ("segments", ps_trace::Metric::Counter(v)) => row.segments = v,
            ("memo_hits", ps_trace::Metric::Counter(v)) => row.memo_hits = v,
            ("plan_wall_us", ps_trace::Metric::Counter(v)) => row.plan_wall_us = v as f64,
            _ => {}
        }
    }
    rows.into_values().collect()
}

/// Same thread count `bench_planner` uses for its optimized stack.
fn planning_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(4)
}

/// Extracts the optimized-stack `time_ms` for `scenario` from
/// `BENCH_planner.json` by string search (no serde in the tree).
fn baseline_ms(json: &str, scenario: &str) -> Option<f64> {
    let at = json.find(&format!("\"scenario\": \"{scenario}\""))?;
    let tail = &json[at..];
    let new_at = tail.find("\"new\": {")?;
    let tail = &tail[new_at..];
    let t_at = tail.find("\"time_ms\": ")? + "\"time_ms\": ".len();
    let tail = &tail[t_at..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

/// Min-of-N planning time on the instrumented code path with the tracer
/// and sampler left disabled — the configuration `bench_planner` labels
/// `case-study/SanDiego` / `new`.
fn measure_disabled_planning() -> f64 {
    let cs = default_case_study();
    let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(2.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let planner = Planner::with_config(
        mail_spec(),
        PlannerConfig {
            algorithm: Algorithm::Exhaustive,
            share_route_table: true,
            ..Default::default()
        },
    );
    let translator = mail_translator();
    let threads = planning_threads();
    let mut best = f64::INFINITY;
    let mut total_ms = 0.0;
    let mut reps = 0;
    while reps < REPS || (total_ms < MIN_TOTAL_MS && reps < MAX_REPS) {
        let start = WallTimer::start();
        let plan = if threads > 1 {
            planner
                .plan_parallel(&cs.network, &translator, &request, threads)
                .expect("plan")
        } else {
            planner
                .plan(&cs.network, &translator, &request)
                .expect("plan")
        };
        let time_ms = start.elapsed_ms();
        std::hint::black_box(plan.objective_value);
        total_ms += time_ms;
        reps += 1;
        best = best.min(time_ms);
    }
    best
}

/// One detection-interval sweep point: a chaos run under the given lease
/// parameters, reduced workload so the sweep stays quick.
fn sweep_point(heartbeat_ms: u64, duration_ms: u64) -> ChaosOutcome {
    run_chaos(
        &ChaosBenchConfig {
            seattle_ops: (600, 30),
            sd_ops: (600, 30),
            lease: LeaseConfig {
                duration: SimDuration::from_millis(duration_ms),
                heartbeat: SimDuration::from_millis(heartbeat_ms),
            },
            lease_renewal_bytes: RENEWAL_BYTES,
            ..ChaosBenchConfig::default()
        },
        &Tracer::disabled(),
    )
}

fn main() {
    let stable = ps_bench::stable_artifacts();
    let mut report = Report::new("ps-trace timeline report: heal phases, percentiles, series");

    // Measure the overhead-guard timing first, before the heavy legs
    // heat the machine — the `bench_planner` baseline was taken at
    // process start too, so this keeps the comparison apples-to-apples.
    let disabled_ms = if stable {
        None
    } else {
        eprintln!("[timeline_report] overhead guard timing...");
        Some(measure_disabled_planning())
    };

    // ---- Leg 1: the 9-node chaos workload, fully instrumented. ----
    eprintln!("[timeline_report] chaos workload...");
    let (tracer, sink) = Tracer::memory();
    let chaos = run_chaos(
        &ChaosBenchConfig {
            sampler: Some(SamplerConfig::default()),
            lease_renewal_bytes: RENEWAL_BYTES,
            ..ChaosBenchConfig::default()
        },
        &tracer,
    );
    let events = sink.events();
    let timeline = HealTimeline::reconstruct(&events);
    assert!(
        !timeline.incidents.is_empty(),
        "chaos run must produce at least one incident"
    );
    assert_eq!(
        timeline.incidents[0].phases().len(),
        3,
        "the chaos crash must walk the full detection -> quarantine -> redeploy ladder, got {:?}",
        timeline.incidents[0]
    );
    let registry = tracer.registry().expect("enabled tracer has a registry");
    let chaos_rows = percentile_rows(registry);
    assert!(
        chaos_rows.iter().any(|(n, _)| n == "world.invoke_ms"),
        "chaos run must record invoke latencies"
    );
    report.section(format!(
        "chaos @9 nodes (seed {}, {} heal passes, {} renewal bytes)",
        chaos.seed, chaos.heal_passes, chaos.lease_renewal_bytes
    ));
    report_leg(&mut report, &timeline, &chaos_rows, &chaos.series);
    // conn-0 is the San Diego connect, conn-1 Seattle (connect order).
    let chaos_critical: Vec<String> = ["conn-0", "conn-1"]
        .iter()
        .map(|scope| critical_json(scope, &events))
        .collect();
    for scope in ["conn-0", "conn-1"] {
        if let Some(path) = scope_critical_path(scope, &events) {
            let (name, ns) = path.dominant().unwrap_or(("", 0));
            report.kv(
                format!("critical path {scope}"),
                format!(
                    "total {:.2}ms, dominant {name} {:.2}ms",
                    ms(path.total_ns),
                    ms(ns)
                ),
            );
        }
    }

    // ---- Leg 2: the 1013-node crash-and-heal from bench_scale. ----
    eprintln!("[timeline_report] 1013-node heal workload...");
    let (scale_tracer, scale_sink) = Tracer::memory();
    // Same topology + workload seeds as bench_scale's heal leg.
    let (net, server, client) = scale_network(1000, 8000);
    let scale_out = run_heal_workload_with(
        net,
        server,
        client,
        7000,
        &scale_tracer,
        &HealWorkloadOptions {
            lease: None,
            sampler: Some(SamplerConfig::default()),
            lease_renewal_bytes: RENEWAL_BYTES,
            settle: Some(SimDuration::from_secs(30)),
            // Plan hierarchically so the run exercises the shared
            // region memo and populates the per-region planner metrics
            // attributed below.
            hier: true,
        },
    );
    let scale_events = scale_sink.events();
    let scale_timeline = HealTimeline::reconstruct(&scale_events);
    assert!(
        scale_timeline
            .incidents
            .iter()
            .any(|i| i.detection_ns().is_some() && i.quarantine_lag_ns().is_some()),
        "the 1013-node crash must be detected and quarantined, got {:?}",
        scale_timeline.incidents
    );
    let scale_registry = scale_tracer
        .registry()
        .expect("enabled tracer has a registry");
    let scale_rows = percentile_rows(scale_registry);
    report.section(format!(
        "heal @{} nodes (crashed node {}, {} heal passes, {} renewal bytes)",
        scale_out.nodes, scale_out.crashed.0, scale_out.heal_passes, scale_out.lease_renewal_bytes
    ));
    report_leg(&mut report, &scale_timeline, &scale_rows, &scale_out.series);
    let scale_critical = critical_json("conn-0", &scale_events);

    // Per-region planning attribution: the hierarchical planner counts
    // segment solves and memo hits per region and gauges the wall time
    // each region's segment solves cost. Counters are seed-stable;
    // the wall gauge is written as `null` in stable mode.
    let region_rows = region_planning_rows(scale_registry);
    assert!(
        !region_rows.is_empty(),
        "hierarchical heal workload must populate planner.region.* metrics"
    );
    report.section("per-region planning (1013-node heal workload)");
    report.line(format!(
        "  {:<10} {:>9} {:>10} {:>13}",
        "region", "segments", "memo hits", "plan wall us"
    ));
    for row in &region_rows {
        report.line(format!(
            "  {:<10} {:>9} {:>10} {:>13}",
            row.region,
            row.segments,
            row.memo_hits,
            if stable {
                "-".to_owned()
            } else {
                format!("{:.0}", row.plan_wall_us)
            },
        ));
    }
    let regions_json: Vec<String> = region_rows
        .iter()
        .map(|row| {
            format!(
                "      {{\"region\": \"{}\", \"segments\": {}, \"memo_hits\": {}, \
                 \"plan_wall_us\": {}}}",
                row.region,
                row.segments,
                row.memo_hits,
                if stable {
                    "null".to_owned()
                } else {
                    format!("{:.1}", row.plan_wall_us)
                },
            )
        })
        .collect();
    let regions_json = format!("[\n{}\n    ]", regions_json.join(",\n"));

    // ---- Satellite: the lease detection-interval sweep. ----
    // Shorter heartbeats detect failures faster but renew more often;
    // the sweep prints the latency/traffic tradeoff.
    eprintln!("[timeline_report] detection-interval sweep...");
    report.section("lease detection-interval sweep (heartbeat/duration vs latency/traffic)");
    report.line(format!(
        "  {:>7} {:>9} {:>13} {:>12} {:>14}",
        "hb[ms]", "lease[ms]", "detect[ms]", "recover[ms]", "renewal bytes"
    ));
    let mut sweep_json = Vec::new();
    let mut last_detect = 0.0f64;
    for &(hb, dur) in &[
        (250u64, 1_000u64),
        (500, 2_000),
        (1_000, 4_000),
        (2_000, 8_000),
    ] {
        let out = sweep_point(hb, dur);
        let detect_ms = out
            .detection_latency()
            .map(|d| d.as_nanos() as f64 / 1e6)
            .expect("sweep point detects the crash");
        let recover_ms = out.recovery_latency().map(|d| d.as_nanos() as f64 / 1e6);
        assert!(
            detect_ms > last_detect,
            "detection latency must grow with the lease duration \
             ({detect_ms:.1}ms at {dur}ms lease, previous {last_detect:.1}ms)"
        );
        last_detect = detect_ms;
        report.line(format!(
            "  {:>7} {:>9} {:>13.1} {:>12} {:>14}",
            hb,
            dur,
            detect_ms,
            recover_ms.map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            out.lease_renewal_bytes,
        ));
        sweep_json.push(format!(
            "    {{\"heartbeat_ms\": {hb}, \"lease_ms\": {dur}, \"detect_ms\": {detect_ms:.4}, \
             \"recover_ms\": {}, \"renewal_bytes\": {}}}",
            recover_ms.map_or_else(|| "null".to_owned(), |v| format!("{v:.4}")),
            out.lease_renewal_bytes,
        ));
    }

    // ---- Overhead guard: sampler+tracer disabled vs bench_planner. ----
    // In stable mode the guard (pure wall-clock) is skipped and written
    // as null — the determinism check covers content, not timing.
    report.section("overhead guard (sampler+tracer disabled vs bench_planner baseline)");
    let overhead_json = if let Some(disabled_ms) = disabled_ms {
        report.kv("disabled_ms", format!("{disabled_ms:.3}"));
        let baseline = std::fs::read_to_string("BENCH_planner.json")
            .ok()
            .and_then(|json| baseline_ms(&json, "case-study/SanDiego"));
        match baseline {
            Some(base) => {
                let ratio = disabled_ms / base;
                report.kv("baseline_ms", format!("{base:.3}"));
                report.kv("ratio", format!("{ratio:.3}"));
                assert!(
                    disabled_ms <= base * (1.0 + MAX_OVERHEAD) + ABS_SLACK_MS,
                    "sampler overhead guard failed: disabled-sampler planning took \
                     {disabled_ms:.3} ms vs baseline {base:.3} ms (>{:.0}% + {ABS_SLACK_MS} ms slack)",
                    MAX_OVERHEAD * 100.0
                );
                report.kv(
                    "verdict",
                    format!(
                        "PASS (within {:.0}% + {ABS_SLACK_MS} ms slack)",
                        MAX_OVERHEAD * 100.0
                    ),
                );
                format!(
                    "{{\"baseline_ms\": {base:.3}, \"disabled_ms\": {disabled_ms:.3}, \
                     \"ratio\": {ratio:.3}, \"max_overhead\": {MAX_OVERHEAD}}}"
                )
            }
            None => {
                report.kv(
                    "verdict",
                    "SKIPPED (no BENCH_planner.json baseline; run bench_planner first)",
                );
                format!("{{\"baseline_ms\": null, \"disabled_ms\": {disabled_ms:.3}}}")
            }
        }
    } else {
        report.kv("verdict", "SKIPPED (stable-artifact mode)");
        "null".to_owned()
    };

    let mut json = String::new();
    write!(
        json,
        "{{\n  \"bench\": \"timeline_report\",\n  \
         \"chaos\": {{\n    \"nodes\": 9, \"seed\": {}, \"heal_passes\": {}, \
         \"lease_renewal_bytes\": {},\n    \"timeline\": {},\n    \
         \"critical_paths\": [\n      {}\n    ],\n    \
         \"percentiles\": {},\n    \"series\": {}\n  }},\n  \
         \"scale\": {{\n    \"nodes\": {}, \"crashed\": {}, \"heal_passes\": {}, \
         \"lease_renewal_bytes\": {},\n    \"timeline\": {},\n    \
         \"critical_paths\": [\n      {}\n    ],\n    \
         \"percentiles\": {},\n    \"series\": {},\n    \"regions\": {}\n  }},\n  \
         \"sweep\": [\n{}\n  ],\n  \"overhead\": {}\n}}\n",
        chaos.seed,
        chaos.heal_passes,
        chaos.lease_renewal_bytes,
        timeline_json(&timeline),
        chaos_critical.join(",\n      "),
        percentile_json(&chaos_rows),
        series_json(&chaos.series),
        scale_out.nodes,
        scale_out.crashed.0,
        scale_out.heal_passes,
        scale_out.lease_renewal_bytes,
        timeline_json(&scale_timeline),
        scale_critical,
        percentile_json(&scale_rows),
        series_json(&scale_out.series),
        regions_json,
        sweep_json.join(",\n"),
        overhead_json,
    )
    .expect("write to string");
    std::fs::write("BENCH_timeline.json", &json).expect("write BENCH_timeline.json");

    println!("{report}");
    println!("\nwrote BENCH_timeline.json");
}
