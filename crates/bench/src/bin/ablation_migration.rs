//! Migration-cost ablation: moving a live `ViewMailServer` replica to
//! another node as a function of the state it has accumulated.
//!
//! State transfer is charged over the actual route (the replica's cached
//! messages are its snapshot), so migration within the LAN is cheap and
//! across the WAN scales with cache size — the trade-off a re-planner
//! weighs against redeploying an empty replica that must re-warm.

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::workload::{ClusterConfig, ClusterDriver};
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::casestudy::default_case_study;
use ps_planner::ServiceRequest;
use ps_smock::{CoherencePolicy, ServiceRegistration};
use ps_spec::Behavior;
use ps_trace::Report;

fn main() {
    let mut report = Report::new("Migration cost vs cached state (ViewMailServer)");
    report.line(format!(
        "{:>14} {:>14} {:>18} {:>18}",
        "msgs cached", "state[KB]", "LAN move[ms]", "WAN move[ms]"
    ));
    for msgs in [0u32, 100, 500, 1000, 2000, 5000] {
        let mut lan_ms = 0.0;
        let mut wan_ms = 0.0;
        let mut state_kb = 0.0;
        for wan in [false, true] {
            let cs = default_case_study();
            let mut fw = Framework::new(
                cs.network.clone(),
                cs.mail_server,
                Box::new(mail_translator()),
            );
            register_mail_components(
                &mut fw.server.registry,
                Keyring::new(msgs as u64),
                CoherencePolicy::None,
            );
            fw.register_service(ServiceRegistration::new(mail_spec()));
            fw.install_primary("mail", MAIL_SERVER, cs.mail_server)
                .unwrap();
            let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
                .rate(10.0)
                .pin(MAIL_SERVER, cs.mail_server)
                .origin(cs.mail_server)
                .require("TrustLevel", 4i64);
            let conn = fw.connect("mail", &request).unwrap();
            let vms_idx = conn
                .plan
                .placement_of(VIEW_MAIL_SERVER)
                .unwrap()
                .graph_index;
            let vms = conn.deployment.instances[vms_idx];

            if msgs > 0 {
                let driver = ClusterDriver::new(ClusterConfig {
                    sends: msgs,
                    receives: 0,
                    ..ClusterConfig::paper("alice", "bob", 1 << 40)
                });
                let id = fw.world.instantiate(
                    "driver",
                    cs.sd_client,
                    Default::default(),
                    Behavior::new(),
                    Box::new(driver),
                    conn.ready_at,
                );
                fw.world.wire(id, vec![conn.root]);
            }
            fw.run();

            // Report the snapshot size once (same either way).
            if !wan {
                let logic = fw.world.logic_mut(vms);
                if let Some(snap) = logic.snapshot() {
                    state_kb = snap.wire_bytes as f64 / 1024.0;
                }
            }

            let target = if wan {
                // Move the replica to the Seattle site across the WAN
                // (hypothetically; trust conditions are the planner's
                // concern — this measures the mechanism).
                cs.seattle_gateway
            } else {
                cs.network
                    .site_nodes("SanDiego")
                    .into_iter()
                    .find(|&n| n != fw.world.instance(vms).node)
                    .unwrap()
            };
            let before = fw.world.now();
            let (_new, live_at) = fw.world.migrate(vms, target);
            let cost = live_at.since(before).as_millis_f64();
            if wan {
                wan_ms = cost;
            } else {
                lan_ms = cost;
            }
        }
        report.line(format!(
            "{:>14} {:>14.1} {:>18.2} {:>18.1}",
            msgs, state_kb, lan_ms, wan_ms
        ));
    }
    report.line("");
    report.line(
        "(LAN moves ride 100 Mb/s zero-latency links; WAN moves pay the\n\
         50 Mb/s / 100 ms Seattle link — linear in cached bytes either way)",
    );
    println!("{report}");
}
