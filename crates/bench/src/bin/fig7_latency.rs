//! Figure 7: average client-perceived send latency for the nine
//! scenarios at 1–5 clients.
//!
//! Usage: `fig7_latency [msgs_per_client] [seed]` (defaults 2000, 42).
//! Prints the mean send latency per scenario per client count, the
//! group structure the paper highlights, and the receive latencies.

use ps_bench::{Fig7Config, Scenario};
use ps_trace::Report;

fn main() {
    let mut args = std::env::args().skip(1);
    let msgs: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);
    let base = Fig7Config {
        msgs_per_client: msgs,
        seed,
        ..Default::default()
    };

    let mut report = Report::new("Figure 7: average client-perceived send latency [ms]");
    report.line(format!(
        "(workload: {msgs} sends + 10 receives per client cluster, seed {seed})\n"
    ));
    report.line(format!(
        "{:<8} {:>2} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "scenario", "g", "1 client", "2", "3", "4", "5"
    ));

    let results = ps_bench::figure7_sweep(5, &base);
    let mut means: Vec<(Scenario, Vec<f64>)> = Vec::new();
    for scenario in Scenario::ALL {
        let row: Vec<f64> = (1..=5usize)
            .map(|clients| {
                results
                    .iter()
                    .find(|r| r.scenario == scenario && r.clients == clients)
                    .map(|r| r.send.mean())
                    .unwrap_or(f64::NAN)
            })
            .collect();
        report.line(format!(
            "{:<8} {:>2} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            scenario.to_string(),
            scenario.paper_group(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4]
        ));
        means.push((scenario, row));
    }

    report.line("");
    report.line(ps_bench::render_figure7(&results, 5));

    // Planning-time claims are backed by recorded counters: the one-time
    // costs of the planner-driven (dynamic) scenarios at 1 client.
    report.section("recorded one-time planning costs (dynamic scenarios, 1 client)");
    for r in &results {
        if r.clients != 1 {
            continue;
        }
        if let Some(costs) = &r.plan_costs {
            report.line(format!("{:<8} {costs}", r.scenario.to_string()));
        }
    }

    // The paper's three observations, checked on the data.
    report.section("shape checks (the paper's three key points)");
    let mean_of = |s: Scenario, c: usize| -> f64 {
        means
            .iter()
            .find(|(sc, _)| *sc == s)
            .map(|(_, row)| row[c - 1])
            .unwrap_or(f64::NAN)
    };

    // 1. Dynamic == static counterparts.
    let pairs = [
        (Scenario::DF, Scenario::SF),
        (Scenario::DS0, Scenario::SS0),
        (Scenario::DS500, Scenario::SS500),
        (Scenario::DS1000, Scenario::SS1000),
    ];
    let max_gap = pairs
        .iter()
        .flat_map(|(d, s)| {
            (1..=5).map(move |c| {
                let (a, b) = (mean_of(*d, c), mean_of(*s, c));
                (a - b).abs() / b.max(1e-9)
            })
        })
        .fold(0.0f64, f64::max);
    report.line(format!(
        "1. dynamic vs static overhead: max relative gap {:.2}% (paper: virtually indistinguishable)",
        max_gap * 100.0
    ));

    // 2. Caching before the slow link vs the naive static deployment.
    let speedup = mean_of(Scenario::SS, 1) / mean_of(Scenario::DS0, 1);
    report.line(format!(
        "2. automatic caching gain: SS / DS0 = {speedup:.0}x at 1 client (paper: orders of magnitude)"
    ));

    // 3. Remote ~ local to the extent the coherence protocol permits.
    report.line(format!(
        "3. remote vs local access: DF {:.2} ms vs DS0 {:.2} / DS1000 {:.2} / DS500 {:.2} ms",
        mean_of(Scenario::DF, 1),
        mean_of(Scenario::DS0, 1),
        mean_of(Scenario::DS1000, 1),
        mean_of(Scenario::DS500, 1),
    ));

    // Group ordering.
    let g1 = mean_of(Scenario::DS0, 5).max(mean_of(Scenario::DF, 5));
    let g2 = mean_of(Scenario::DS1000, 5);
    let g3 = mean_of(Scenario::DS500, 5);
    let g4 = mean_of(Scenario::SS, 5);
    let ordered = g1 < g2 && g2 < g3 && g3 < g4;
    report.line(format!(
        "group ordering at 5 clients: {:.2} < {:.2} < {:.2} < {:.2} : {}",
        g1,
        g2,
        g3,
        g4,
        if ordered {
            "OK (matches Figure 7)"
        } else {
            "MISMATCH"
        }
    ));
    println!("{report}");
}
