//! Figure 5: the three-site case-study topology, plus a BRITE-style
//! generated topology for comparison.

use ps_net::brite::{hierarchical, HierParams};
use ps_net::casestudy::default_case_study;
use ps_net::shortest_route;
use ps_sim::Rng;
use ps_trace::Report;

fn main() {
    let cs = default_case_study();
    let net = &cs.network;
    if std::env::args().any(|a| a == "--dot") {
        // Machine-readable graphviz output, bypassing the report renderer.
        print!("{}", net.to_dot());
        return;
    }

    let mut report = Report::new("Figure 5: case-study network topology");
    report.section("nodes");
    for node in net.nodes() {
        report.line(format!(
            "  {:8} site={:9} trust={} domain={}",
            node.name,
            node.site,
            net.trust_rating(node.id).unwrap_or(0),
            node.credentials
                .get("Domain")
                .map(|v| v.to_string())
                .unwrap_or_default()
        ));
    }
    report.section("links");
    for link in net.links() {
        report.line(format!(
            "  {} -- {}  {:>7.0} ms  {:>6.0} Mb/s  {}",
            net.node(link.a).name,
            net.node(link.b).name,
            link.latency.as_millis_f64(),
            link.bandwidth_bps / 1e6,
            if net.link_secure(link.id) {
                "secure"
            } else {
                "INSECURE"
            }
        ));
    }

    report.section("inter-site routes");
    for (from, to, label) in [
        (cs.sd_client, cs.mail_server, "SanDiego -> NewYork"),
        (cs.seattle_client, cs.mail_server, "Seattle -> NewYork"),
        (cs.seattle_client, cs.sd_client, "Seattle -> SanDiego"),
    ] {
        let route = shortest_route(net, from, to).expect("connected");
        report.line(format!(
            "  {label:22} {} hops, {:.0} ms, bottleneck {:.0} Mb/s",
            route.hops(),
            route.latency.as_millis_f64(),
            route.bottleneck_bps / 1e6
        ));
    }

    report.section("BRITE-style generated topology (hierarchical, seed 7)");
    let mut rng = Rng::seed_from_u64(7);
    let generated = hierarchical(&mut rng, &HierParams::default());
    let secure = generated
        .links()
        .iter()
        .filter(|l| generated.link_secure(l.id))
        .count();
    report.line(format!(
        "  {} nodes, {} links ({} secure intra-AS, {} insecure inter-AS), connected: {}",
        generated.node_count(),
        generated.link_count(),
        secure,
        generated.link_count() - secure,
        generated.is_connected()
    ));
    println!("{report}");
}
