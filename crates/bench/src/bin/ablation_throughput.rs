//! Open-loop throughput ablation: offered rate vs mean send latency for
//! the cached San Diego deployment and the naive direct one.
//!
//! The planner's condition 3 reasons about exactly these rates; this
//! bench shows the queueing reality behind it — the direct deployment's
//! 8 Mb/s WAN saturates at a few hundred messages/second while the cache
//! absorbs an order of magnitude more, and each deployment's latency
//! stays flat until its own knee.

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::workload::ClusterConfig;
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring, OpenDriver};
use ps_net::casestudy::default_case_study;
use ps_planner::ServiceRequest;
use ps_smock::{CoherencePolicy, ServiceRegistration};
use ps_spec::Behavior;
use ps_trace::Report;

/// Runs `msgs` open-loop sends at `rate`; returns (mean ms, p95-ish max).
fn run(direct: bool, rate: f64, msgs: u32) -> (f64, f64, bool) {
    let cs = default_case_study();
    let mut fw = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(
        &mut fw.server.registry,
        Keyring::new(11),
        CoherencePolicy::None,
    );
    fw.register_service(ServiceRegistration::new(mail_spec()));
    fw.install_primary("mail", MAIL_SERVER, cs.mail_server)
        .unwrap();

    // Dynamic cached deployment, or a hand-built direct one (the SS
    // shape) for the baseline.
    let root = if direct {
        use ps_smock::FactoryArgs;
        let env = ps_net::PropertyTranslator::node_env(
            &mail_translator(),
            fw.world.network().node(cs.sd_client),
        );
        let args = FactoryArgs {
            component: MAIL_CLIENT,
            node: cs.sd_client,
            factors: &Default::default(),
            env: &env,
        };
        let logic = fw.server.registry.create(&args).unwrap();
        let mc = fw.world.instantiate(
            MAIL_CLIENT,
            cs.sd_client,
            Default::default(),
            mail_spec().behavior_of(MAIL_CLIENT),
            logic,
            fw.world.now(),
        );
        let primary = fw
            .world
            .find_instance(MAIL_SERVER, cs.mail_server, &Default::default())
            .unwrap();
        fw.world.wire(mc, vec![primary]);
        mc
    } else {
        let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
            .rate(1.0) // plan for a nominal rate; the sweep exceeds it
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", 4i64);
        fw.connect("mail", &request).unwrap().root
    };

    let driver = OpenDriver::new(
        ClusterConfig {
            sends: msgs,
            receives: 0,
            ..ClusterConfig::paper("alice", "bob", 1 << 40)
        },
        rate,
    );
    let id = fw.world.instantiate(
        "open-driver",
        cs.sd_client,
        Default::default(),
        Behavior::new(),
        Box::new(driver),
        fw.world.now(),
    );
    fw.world.wire(id, vec![root]);
    fw.run();

    let d = fw
        .world
        .logic_mut(id)
        .as_any()
        .unwrap()
        .downcast_ref::<OpenDriver>()
        .unwrap();
    let done = d.is_done();
    let n = d.completed.len().max(1) as f64;
    let mean = d.completed.iter().sum::<f64>() / n;
    let max = d.completed.iter().cloned().fold(0.0f64, f64::max);
    (mean, max, done)
}

fn main() {
    let mut report = Report::new("Open-loop saturation: offered rate vs send latency [ms]");
    report.line(format!(
        "{:>10} {:>14} {:>12} {:>16} {:>12}",
        "rate[/s]", "cached mean", "cached max", "direct mean", "direct max"
    ));
    for rate in [10.0, 50.0, 100.0, 200.0, 300.0, 400.0, 600.0] {
        let msgs = (rate as u32 * 4).max(200);
        let (cm, cx, cd) = run(false, rate, msgs);
        let (dm, dx, dd) = run(true, rate, msgs);
        report.line(format!(
            "{:>10.0} {:>14.2} {:>12.1} {:>16.1} {:>12.1}{}{}",
            rate,
            cm,
            cx,
            dm,
            dx,
            if cd { "" } else { "  cached-incomplete" },
            if dd { "" } else { "  direct-incomplete" },
        ));
    }
    report.line("");
    report.line(
        "(the direct deployment's latency explodes once the offered rate\n\
         exceeds what the 8 Mb/s WAN serializes — ~380 msg/s at ~2.6 KB —\n\
         while the cache-absorbed deployment stays flat)",
    );
    println!("{report}");
}
