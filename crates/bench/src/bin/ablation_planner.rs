//! Planner-algorithm ablation: exhaustive search vs the CANS-style chain
//! DP vs the IPP-style branch-and-bound solver.
//!
//! Reports, per algorithm and per request: wall-clock planning time,
//! complete mappings evaluated, partial assignments pruned, and the
//! objective value reached — confirming the cheaper algorithms match the
//! exhaustive oracle on the case study and quantifying their savings on
//! larger BRITE-generated networks.

use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator};
use ps_net::brite::{hierarchical, HierParams};
use ps_net::casestudy::default_case_study;
use ps_net::{Credentials, Network};
use ps_planner::{Algorithm, Planner, PlannerConfig, ServiceRequest};
use ps_sim::Rng;
use ps_trace::{Report, WallTimer};

fn run(
    net: &Network,
    request: &ServiceRequest,
    algorithm: Algorithm,
) -> Option<(f64, u64, u64, f64)> {
    let planner = Planner::with_config(
        mail_spec(),
        PlannerConfig {
            algorithm,
            ..Default::default()
        },
    );
    let start = WallTimer::start();
    let plan = planner.plan(net, &mail_translator(), request).ok()?;
    let elapsed_ms = start.elapsed_ms();
    Some((
        elapsed_ms,
        plan.stats.mappings_evaluated,
        plan.stats.prunes,
        plan.objective_value,
    ))
}

/// Decorates a BRITE network with the mail service's credentials so the
/// spec's conditions are satisfiable: first AS = trusted company HQ,
/// others alternate branch/partner.
fn decorate(net: &mut Network) {
    for id in net.node_ids().collect::<Vec<_>>() {
        let site = net.node(id).site.clone();
        let (trust, domain) = match site.as_str() {
            "as0" => (5i64, "company"),
            "as1" => (3, "company"),
            _ => (2, "partner"),
        };
        let node = net.node_mut(id);
        node.credentials = Credentials::new()
            .with("TrustRating", trust)
            .with("Domain", domain);
    }
}

fn main() {
    let mut report = Report::new("Planner ablation: exhaustive vs DP(chains) vs branch-and-bound");
    report.line(format!(
        "{:<26} {:<13} {:>10} {:>10} {:>10} {:>12}",
        "request", "algorithm", "time[ms]", "mappings", "prunes", "objective"
    ));

    // Case-study requests.
    let cs = default_case_study();
    for (label, client, trust) in [
        ("case-study/NewYork", cs.ny_client, 4i64),
        ("case-study/SanDiego", cs.sd_client, 4),
        ("case-study/Seattle", cs.seattle_client, 1),
    ] {
        let request = ServiceRequest::new(CLIENT_INTERFACE, client)
            .rate(2.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", trust);
        add_rows(&mut report, label, &cs.network, &request);
    }

    // Larger generated networks.
    for (as_count, routers) in [(3usize, 4usize), (4, 6), (5, 8)] {
        let mut rng = Rng::seed_from_u64(1234 + as_count as u64);
        let params = HierParams {
            as_count,
            router: ps_net::brite::FlatParams {
                nodes: routers,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut net = hierarchical(&mut rng, &params);
        decorate(&mut net);
        let server_node = net
            .node_ids()
            .find(|&n| net.trust_rating(n) == Some(5))
            .expect("an HQ node");
        let client_node = net
            .node_ids()
            .find(|&n| net.trust_rating(n) == Some(3))
            .expect("a branch node");
        let request = ServiceRequest::new(CLIENT_INTERFACE, client_node)
            .rate(2.0)
            .pin(MAIL_SERVER, server_node)
            .origin(server_node)
            .require("TrustLevel", 4i64);
        let label = format!("brite/{}as-x{}r ({}n)", as_count, routers, net.node_count());
        add_rows(&mut report, &label, &net, &request);
    }
    println!("{report}");
}

fn add_rows(report: &mut Report, label: &str, net: &Network, request: &ServiceRequest) {
    let mut objectives = Vec::new();
    for (name, algorithm) in [
        ("exhaustive", Algorithm::Exhaustive),
        ("partial-order", Algorithm::PartialOrder),
        ("dp+fallback", Algorithm::Auto),
    ] {
        match run(net, request, algorithm) {
            Some((ms, mappings, prunes, objective)) => {
                report.line(format!(
                    "{:<26} {:<13} {:>10.2} {:>10} {:>10} {:>12.4}",
                    label, name, ms, mappings, prunes, objective
                ));
                objectives.push(objective);
            }
            None => {
                report.line(format!("{label:<26} {name:<13} infeasible"));
            }
        }
    }
    if let (Some(first), Some(max)) = (
        objectives.first(),
        objectives
            .iter()
            .cloned()
            .max_by(|a, b| a.partial_cmp(b).expect("finite")),
    ) {
        let agree = (max - first).abs() <= 1e-6 * first.abs().max(1.0);
        report.line(format!(
            "{:<26} {:<13} {}",
            "",
            "",
            if agree {
                "objectives agree"
            } else {
                "OBJECTIVES DIVERGE"
            }
        ));
    }
    report.line("");
}
