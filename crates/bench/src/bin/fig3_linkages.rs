//! Figure 3: valid component chains for a `ClientInterface` request.
//!
//! Enumerates every linkage graph the planner's first step produces from
//! the mail specification and prints them, with the Figure 3 chains
//! highlighted.

use ps_mail::mail_spec;
use ps_planner::{enumerate_linkages, LinkageLimits};
use ps_trace::Report;

fn main() {
    let spec = mail_spec();

    let mut report = Report::new("Figure 3: valid component chains (max one repeat)");
    let limits = LinkageLimits {
        max_repeats: 1,
        max_depth: 8,
        max_graphs: 10_000,
        ..LinkageLimits::default()
    };
    let graphs = enumerate_linkages(&spec, "ClientInterface", &limits);
    for g in &graphs {
        report.line(format!("  {g}"));
    }
    report.line(format!(
        "\n  {} chains; all start at a client component and end at MailServer",
        graphs.len()
    ));

    report.section("With component repetition (the Seattle chains)");
    let limits = LinkageLimits::default(); // max_repeats = 2
    let graphs = enumerate_linkages(&spec, "ClientInterface", &limits);
    let chained: Vec<_> = graphs
        .iter()
        .filter(|g| g.to_string().matches("ViewMailServer").count() >= 2)
        .collect();
    report.line(format!(
        "  {} total graphs, of which {} chain two view servers, e.g.:",
        graphs.len(),
        chained.len()
    ));
    for g in chained.iter().take(4) {
        report.line(format!("    {g}"));
    }
    println!("{report}");
}
