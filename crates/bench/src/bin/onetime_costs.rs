//! Section 4.2's one-time costs: proxy download, planning, component
//! deployment, and startup, per client site.
//!
//! The paper reports these summing to roughly 10 seconds on its testbed
//! (JVM class loading over emulated links); our planning runs for real
//! (host wall-clock) while transfer/startup costs are simulated.

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::casestudy::default_case_study;
use ps_planner::ServiceRequest;
use ps_smock::{CoherencePolicy, ServiceRegistration};
use ps_trace::Report;

fn main() {
    let cs = default_case_study();
    let mut framework = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    register_mail_components(
        &mut framework.server.registry,
        Keyring::new(1),
        CoherencePolicy::CountLimit(500),
    );
    framework.register_service(
        ServiceRegistration::new(mail_spec())
            .attribute("type", "mail")
            .proxy_code_size(32 * 1024),
    );
    framework
        .install_primary("mail", MAIL_SERVER, cs.mail_server)
        .expect("primary");

    let mut report = Report::new("One-time connection costs per site (Section 4.2)");
    report.line(format!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>9} {:>7} {:>7} {:>7} {:>9} {:>9} {:>6}",
        "site",
        "proxy[ms]",
        "plan[ms]",
        "deploy[ms]",
        "startup[ms]",
        "total[ms]",
        "created",
        "reused",
        "evals",
        "prunes",
        "boundcut",
        "table[µs]",
        "hits"
    ));
    for (site, client, trust) in [
        ("NewYork", cs.ny_client, 4i64),
        ("SanDiego", cs.sd_client, 4),
        ("Seattle", cs.seattle_client, 1),
    ] {
        let request = ServiceRequest::new(CLIENT_INTERFACE, client)
            .rate(5.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", trust);
        let connection = framework.connect("mail", &request).expect("connect");
        let c = &connection.costs;
        report.line(format!(
            "{:<10} {:>12.1} {:>12.3} {:>12.1} {:>12.1} {:>12.1} {:>9} {:>7} {:>7} {:>7} {:>9} {:>9} {:>6}",
            site,
            c.proxy_download_ms,
            c.planning_ms,
            c.deploy_transfer_ms,
            c.startup_ms,
            c.total_ms(),
            connection.deployment.created,
            connection.deployment.reused,
            c.plan_stats.mappings_evaluated,
            c.plan_stats.prunes,
            c.plan_stats.bound_prunes,
            c.plan_stats.route_table_build_us,
            c.plan_stats.plan_cache_hits,
        ));
    }
    report.line("");
    report.line(
        "(paper: ~10 s total on a 1 GHz P3 with JVM class loading; the shape —\n\
         transfer-dominated, incurred once per connection — is the comparison point)",
    );
    println!("{report}");
}
