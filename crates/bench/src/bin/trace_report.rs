//! End-to-end tracing demo and guard: runs the mail case study with a
//! memory-sink tracer installed across the whole stack, reconstructs the
//! Figure 7-style per-connection latency breakdown (lookup / plan /
//! transfer / deploy / invoke) from the event stream, and renders both a
//! human report and `BENCH_trace.json`.
//!
//! Doubles as the tracing overhead guard: with the tracer left disabled
//! (the default), the instrumented planning hot path must stay within 5%
//! of the freshly-measured `BENCH_planner.json` baseline for the same
//! scenario (`case-study/SanDiego`, optimized stack). Run `bench_planner`
//! first so the baseline comes from the same machine and session.
//!
//! Usage: `trace_report [JSONL_PATH]` — the optional argument dumps the
//! raw event stream as JSONL. Two runs with identical inputs produce
//! byte-identical streams (wall-clock values are banned from events; they
//! live in the metrics registry only), which `verify.sh` checks with
//! `cmp`.

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::workload::{ClusterConfig, ClusterDriver};
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::casestudy::default_case_study;
use ps_planner::{Algorithm, Planner, PlannerConfig, ServiceRequest};
use ps_smock::{CoherencePolicy, ServiceRegistration};
use ps_spec::{Behavior, ResolvedBindings};
use ps_trace::{breakdowns, closed_spans, Event, Metric, Report, Tracer, WallTimer};
use std::fmt::Write as _;

/// Minimum timed repetitions for the overhead guard (fastest kept),
/// matching `bench_planner`'s measurement idiom.
const REPS: usize = 5;
/// Repetition budget, milliseconds.
const MIN_TOTAL_MS: f64 = 300.0;
/// Hard repetition cap.
const MAX_REPS: usize = 40;
/// Allowed overhead of the instrumented (tracer-disabled) planning path
/// over the `bench_planner` baseline.
const MAX_OVERHEAD: f64 = 0.05;
/// Absolute slack (ms) so sub-millisecond baselines don't flake on
/// scheduler noise.
const ABS_SLACK_MS: f64 = 0.25;

/// Same thread count `bench_planner` uses for its optimized stack.
fn planning_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(4)
}

struct ConnInfo {
    site: &'static str,
    scope: String,
    root: u64,
}

/// Runs the mail case study with a memory-sink tracer installed: three
/// site connections (the Section 4.2 trio) plus a small message workload
/// per site so `invoke` spans flow through the deployed pipelines.
fn traced_run(tracer: &Tracer) -> Vec<ConnInfo> {
    let cs = default_case_study();
    let mut framework = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    framework.set_tracer(tracer.clone());
    register_mail_components(
        &mut framework.server.registry,
        Keyring::new(1),
        CoherencePolicy::CountLimit(500),
    );
    framework.register_service(
        ServiceRegistration::new(mail_spec())
            .attribute("type", "mail")
            .proxy_code_size(32 * 1024),
    );
    framework
        .install_primary("mail", MAIL_SERVER, cs.mail_server)
        .expect("primary");

    let mut connections = Vec::new();
    for (i, (site, client, trust)) in [
        ("NewYork", cs.ny_client, 4i64),
        ("SanDiego", cs.sd_client, 4),
        ("Seattle", cs.seattle_client, 1),
    ]
    .into_iter()
    .enumerate()
    {
        let request = ServiceRequest::new(CLIENT_INTERFACE, client)
            .rate(5.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", trust);
        let connection = framework.connect("mail", &request).expect("connect");
        connections.push(ConnInfo {
            site,
            scope: format!("conn-{i}"),
            root: connection.root.0 as u64,
        });

        // A small per-site workload driving the freshly-built pipeline.
        let driver = ClusterDriver::new(ClusterConfig {
            user: format!("user-{site}"),
            peers: vec![format!("user-{site}")],
            sends: 25,
            receives: 5,
            body_bytes: (1024, 3072),
            sensitivity: (1, 2),
            id_base: (i as u64 + 1) << 40,
            seed: 42 ^ (i as u64).wrapping_mul(0x9E37_79B9),
        });
        let id = framework.world.instantiate(
            format!("driver-{site}"),
            client,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(driver),
            framework.world.now(),
        );
        framework.world.wire(id, vec![connection.root]);
    }

    framework.run();
    framework.world.publish_resource_metrics();
    connections
}

/// Per-connection `invoke` totals: client-visible requests are the spans
/// whose `to` field is the connection's root instance (inner pipeline
/// hops are separate spans and intentionally excluded).
fn invoke_totals(events: &[Event], root: u64) -> (u64, u64) {
    let mut total_ns = 0;
    let mut count = 0;
    for span in closed_spans(events) {
        if span.name == "invoke" && span.field_u64("to") == Some(root) {
            total_ns += span.duration_ns();
            count += 1;
        }
    }
    (total_ns, count)
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

/// Extracts the optimized-stack `time_ms` for `scenario` from
/// `BENCH_planner.json` by string search (no serde in the tree).
fn baseline_ms(json: &str, scenario: &str) -> Option<f64> {
    let at = json.find(&format!("\"scenario\": \"{scenario}\""))?;
    let tail = &json[at..];
    let new_at = tail.find("\"new\": {")?;
    let tail = &tail[new_at..];
    let t_at = tail.find("\"time_ms\": ")? + "\"time_ms\": ".len();
    let tail = &tail[t_at..];
    let end = tail.find([',', '}'])?;
    tail[..end].trim().parse().ok()
}

/// Min-of-N planning time on the instrumented code path with the tracer
/// left disabled — the configuration `bench_planner` labels
/// `case-study/SanDiego` / `new`.
fn measure_disabled_planning() -> f64 {
    let cs = default_case_study();
    let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
        .rate(2.0)
        .pin(MAIL_SERVER, cs.mail_server)
        .origin(cs.mail_server)
        .require("TrustLevel", 4i64);
    let planner = Planner::with_config(
        mail_spec(),
        PlannerConfig {
            algorithm: Algorithm::Exhaustive,
            share_route_table: true,
            ..Default::default()
        },
    );
    let translator = mail_translator();
    let threads = planning_threads();
    let mut best = f64::INFINITY;
    let mut total_ms = 0.0;
    let mut reps = 0;
    while reps < REPS || (total_ms < MIN_TOTAL_MS && reps < MAX_REPS) {
        let start = WallTimer::start();
        let plan = if threads > 1 {
            planner
                .plan_parallel(&cs.network, &translator, &request, threads)
                .expect("plan")
        } else {
            planner
                .plan(&cs.network, &translator, &request)
                .expect("plan")
        };
        let time_ms = start.elapsed_ms();
        std::hint::black_box(plan.objective_value);
        total_ms += time_ms;
        reps += 1;
        best = best.min(time_ms);
    }
    best
}

fn main() {
    let jsonl_path = std::env::args().nth(1);
    // Stable-artifact mode: skip the wall-clock overhead guard and strip
    // `_wall_` registry metrics so two runs write identical JSON.
    let stable = ps_bench::stable_artifacts();

    let (tracer, sink) = Tracer::memory();
    let connections = traced_run(&tracer);
    let events = sink.events();
    let all_breakdowns = breakdowns(&events);

    let mut report = Report::new("ps-trace report: mail case study");
    report.kv("events", events.len());
    report.kv("spans", closed_spans(&events).len());
    report.kv("connections", connections.len());

    report.section("per-connection latency breakdown (virtual ms)");
    report.line(format!(
        "{:<10} {:>8} {:>9} {:>8} {:>9} {:>8} {:>9} {:>8} {:>10}",
        "site", "scope", "lookup", "plan", "transfer", "deploy", "connect", "invokes", "invoke[ms]"
    ));
    let mut conn_json = Vec::new();
    for conn in &connections {
        let breakdown = all_breakdowns
            .iter()
            .find(|b| b.scope == conn.scope)
            .expect("breakdown for connection");
        let (invoke_ns, invokes) = invoke_totals(&events, conn.root);
        report.line(format!(
            "{:<10} {:>8} {:>9.2} {:>8.3} {:>9.1} {:>8.1} {:>9.1} {:>8} {:>10.2}",
            conn.site,
            conn.scope,
            ms(breakdown.phase_ns("lookup")),
            ms(breakdown.phase_ns("plan")),
            ms(breakdown.phase_ns("transfer")),
            ms(breakdown.phase_ns("deploy")),
            ms(breakdown.phase_ns("connect")),
            invokes,
            ms(invoke_ns),
        ));
        let mut entry = String::new();
        write!(
            entry,
            "    {{\"site\": \"{}\", \"scope\": \"{}\", \"root\": {},\n      \
             \"lookup_ms\": {:.4}, \"plan_ms\": {:.4}, \"transfer_ms\": {:.4}, \
             \"deploy_ms\": {:.4}, \"connect_ms\": {:.4},\n      \
             \"invokes\": {}, \"invoke_ms\": {:.4}}}",
            conn.site,
            conn.scope,
            conn.root,
            ms(breakdown.phase_ns("lookup")),
            ms(breakdown.phase_ns("plan")),
            ms(breakdown.phase_ns("transfer")),
            ms(breakdown.phase_ns("deploy")),
            ms(breakdown.phase_ns("connect")),
            invokes,
            ms(invoke_ns),
        )
        .expect("write to string");
        conn_json.push(entry);
    }

    report.section("registry (counters / gauges / histograms)");
    let registry = tracer.registry().expect("enabled tracer has a registry");
    // Stable mode strips the `_wall_` metrics (host planning time), the
    // only registry entries that legitimately differ between same-seed
    // runs.
    let registry_json = if stable {
        registry.to_json_deterministic()
    } else {
        registry.to_json()
    };
    for (name, metric) in registry.snapshot() {
        let rendered = match metric {
            Metric::Counter(c) => c.to_string(),
            Metric::Gauge(g) => format!("{g:.3}"),
            Metric::Histogram(h) => format!(
                "count={} mean={:.3} min={:.3} max={:.3}",
                h.count,
                h.mean(),
                h.min,
                h.max
            ),
        };
        report.kv(name, rendered);
    }

    // Overhead guard: the instrumented planning path with tracing
    // disabled vs the bench_planner baseline for the same scenario. In
    // stable mode the guard (pure wall-clock) is skipped and the field
    // is written as null — the determinism check covers content, not
    // timing.
    let baseline = if stable {
        None
    } else {
        std::fs::read_to_string("BENCH_planner.json")
            .ok()
            .and_then(|json| baseline_ms(&json, "case-study/SanDiego"))
    };
    report.section("overhead guard (tracer disabled vs bench_planner baseline)");
    let overhead_json = if stable {
        report.kv("verdict", "SKIPPED (stable-artifact mode)");
        "null".to_owned()
    } else {
        let disabled_ms = measure_disabled_planning();
        report.kv("disabled_ms", format!("{disabled_ms:.3}"));
        match baseline {
            Some(base) => {
                let ratio = disabled_ms / base;
                report.kv("baseline_ms", format!("{base:.3}"));
                report.kv("ratio", format!("{ratio:.3}"));
                assert!(
                    disabled_ms <= base * (1.0 + MAX_OVERHEAD) + ABS_SLACK_MS,
                    "tracing instrumentation overhead guard failed: \
                 disabled-tracer planning took {disabled_ms:.3} ms vs \
                 baseline {base:.3} ms (>{:.0}% + {ABS_SLACK_MS} ms slack)",
                    MAX_OVERHEAD * 100.0
                );
                report.kv(
                    "verdict",
                    format!(
                        "PASS (within {:.0}% + {ABS_SLACK_MS} ms slack)",
                        MAX_OVERHEAD * 100.0
                    ),
                );
                format!(
                    "{{\"baseline_ms\": {base:.3}, \"disabled_ms\": {disabled_ms:.3}, \
                 \"ratio\": {ratio:.3}, \"max_overhead\": {MAX_OVERHEAD}}}"
                )
            }
            None => {
                report.kv(
                    "verdict",
                    "SKIPPED (no BENCH_planner.json baseline; run bench_planner first)",
                );
                format!("{{\"baseline_ms\": null, \"disabled_ms\": {disabled_ms:.3}}}")
            }
        }
    };

    if let Some(path) = &jsonl_path {
        std::fs::write(path, sink.to_jsonl()).expect("write JSONL");
        report.section("event stream");
        report.kv("jsonl", path);
    }

    let json = format!(
        "{{\n  \"bench\": \"trace_report\",\n  \"events\": {},\n  \
         \"connections\": [\n{}\n  ],\n  \"overhead\": {},\n  \"registry\": {}\n}}\n",
        events.len(),
        conn_json.join(",\n"),
        overhead_json,
        registry_json,
    );
    std::fs::write("BENCH_trace.json", &json).expect("write BENCH_trace.json");

    println!("{report}");
    println!("\nwrote BENCH_trace.json");
}
