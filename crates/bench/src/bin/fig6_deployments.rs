//! Figure 6: the deployments the framework generates for clients at the
//! three sites, following the paper's timeline (New York, then San
//! Diego, then Seattle, each seeing the earlier deployments).

use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator};
use ps_net::casestudy::default_case_study;
use ps_planner::{Plan, Planner, PlannerConfig, ServiceRequest};
use ps_trace::Report;

fn main() {
    let cs = default_case_study();
    let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
    let translator = mail_translator();

    let mut existing: Vec<Plan> = Vec::new();
    let mut report = Report::new("Figure 6: dynamically deployed components");
    for (site, client, trust) in [
        ("New York", cs.ny_client, 4i64),
        ("San Diego", cs.sd_client, 4),
        ("Seattle", cs.seattle_client, 1),
    ] {
        let mut request = ServiceRequest::new(CLIENT_INTERFACE, client)
            .rate(2.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", trust);
        for plan in &existing {
            request = request.with_existing_plan(plan);
        }
        let plan = planner
            .plan(&cs.network, &translator, &request)
            .expect("feasible deployment");
        report.section(format!("client request from {site}"));
        for p in &plan.placements {
            report.line(format!(
                "  {:16} @ {:10} {}{}",
                p.component,
                cs.network.node(p.node).name,
                if p.factors.is_empty() {
                    String::new()
                } else {
                    format!("[{}] ", p.factors)
                },
                if p.preexisting {
                    "(existing)"
                } else {
                    "(deployed)"
                }
            ));
        }
        report.line(format!(
            "  expected latency {:8.3} ms | deploy cost {:8.1} ms | sustainable {:7.1} req/s",
            plan.expected_latency_ms, plan.deployment_cost_ms, plan.sustainable_rate
        ));
        report.line(format!(
            "  search: {} graphs, {} mappings evaluated, {} prunes",
            plan.stats.graphs_enumerated, plan.stats.mappings_evaluated, plan.stats.prunes
        ));
        if std::env::args().any(|a| a == "--dot") {
            report.line(format!("--- graphviz ---\n{}", plan.to_dot(&cs.network)));
        }
        existing.push(plan);
    }
    println!("{report}");
}
