//! Figure 2 + Figure 4: the declarative mail-service specification.
//!
//! Prints the paper-style DSL text of the mail service, proves it parses
//! back to the programmatic specification, validates it, and shows the
//! Confidentiality modification rule in action.

use ps_mail::{mail_spec, MAIL_SPEC_DSL};
use ps_spec::{parse_spec, print_spec, PropertyValue};

fn main() {
    let spec = mail_spec();
    spec.validate().expect("mail spec is valid");

    println!("=== Figure 2: declarative specification of the mail service ===\n");
    println!("{}", print_spec(&spec));

    let parsed = parse_spec("mail", MAIL_SPEC_DSL).expect("DSL parses");
    assert_eq!(parsed, spec, "DSL text and programmatic spec agree");
    println!("--- DSL text parses to an identical specification: OK");

    println!("\n=== Figure 4: property modification rules ===\n");
    let rule = spec.rules.get("Confidentiality").expect("rule exists");
    for row in &rule.rows {
        println!("  {row}");
    }
    println!("\nApplying the rule:");
    let t = PropertyValue::Bool(true);
    let f = PropertyValue::Bool(false);
    for (input, env) in [(&t, &t), (&t, &f), (&f, &t), (&f, &f)] {
        println!(
            "  In: {input}  x  Env: {env}  =>  Out: {}",
            rule.apply(input, env)
        );
    }

    println!(
        "\nspec size: {} properties, {} interfaces, {} components, {} rules",
        spec.properties.len(),
        spec.interfaces.len(),
        spec.components.len(),
        spec.rules.len()
    );
}
