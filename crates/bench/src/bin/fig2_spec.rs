//! Figure 2 + Figure 4: the declarative mail-service specification.
//!
//! Prints the paper-style DSL text of the mail service, proves it parses
//! back to the programmatic specification, validates it, and shows the
//! Confidentiality modification rule in action.

use ps_mail::{mail_spec, MAIL_SPEC_DSL};
use ps_spec::{parse_spec, print_spec, PropertyValue};
use ps_trace::Report;

fn main() {
    let spec = mail_spec();
    spec.validate().expect("mail spec is valid");

    let mut report = Report::new("Figure 2: declarative specification of the mail service");
    report.line(print_spec(&spec));

    let parsed = parse_spec("mail", MAIL_SPEC_DSL).expect("DSL parses");
    assert_eq!(parsed, spec, "DSL text and programmatic spec agree");
    report.line("DSL text parses to an identical specification: OK");

    report.section("Figure 4: property modification rules");
    let rule = spec.rules.get("Confidentiality").expect("rule exists");
    for row in &rule.rows {
        report.line(format!("  {row}"));
    }
    report.line("");
    report.line("Applying the rule:");
    let t = PropertyValue::Bool(true);
    let f = PropertyValue::Bool(false);
    for (input, env) in [(&t, &t), (&t, &f), (&f, &t), (&f, &f)] {
        report.line(format!(
            "  In: {input}  x  Env: {env}  =>  Out: {}",
            rule.apply(input, env)
        ));
    }

    report.section("spec size");
    report.kv("properties", spec.properties.len());
    report.kv("interfaces", spec.interfaces.len());
    report.kv("components", spec.components.len());
    report.kv("rules", spec.rules.len());
    println!("{report}");
}
