//! Chaos-recovery bench: the mail case study under a seeded fault
//! schedule, healed automatically — writes `BENCH_chaos.json`.
//!
//! Usage: `chaos_recovery [SEED] [JSONL_PATH]`
//!
//! The San Diego client node crashes mid-workload; leases detect the
//! failure, the healer quarantines the node and re-deploys the Seattle
//! connection (which was chaining through San Diego's instances), and
//! the Seattle driver finishes its workload — with zero manual
//! `connect` calls. Pass `JSONL_PATH` to also dump the full trace
//! stream; two same-seed runs write byte-identical JSON and JSONL.

use ps_bench::chaos::{outcome_json, run_chaos, ChaosBenchConfig};
use ps_trace::{Report, Tracer};

fn main() {
    let mut args = std::env::args().skip(1);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("SEED must be an integer"))
        .unwrap_or(42);
    let jsonl_path = args.next();

    let (tracer, sink) = Tracer::memory();
    let config = ChaosBenchConfig {
        seed,
        ..ChaosBenchConfig::default()
    };
    let outcome = run_chaos(&config, &tracer);

    // The headline claim: automatic recovery. The crash kills the San
    // Diego connection outright (its client died) and guts the Seattle
    // connection's mid-chain; healing must restore Seattle to service
    // without any manual reconnect.
    assert!(outcome.sd_abandoned, "SD connection should be abandoned");
    assert!(
        outcome.detected_at.is_some(),
        "lease expiry should detect the crash"
    );
    assert!(outcome.replans >= 1, "healer should redeploy Seattle");
    assert!(
        outcome.seattle.done,
        "Seattle workload should finish after recovery"
    );
    assert!(
        outcome.seattle.completed > outcome.seattle.completed_before_crash,
        "Seattle should complete operations after the crash"
    );

    let mut report = Report::new("chaos_recovery: crash, detect, heal");
    report.section("fault");
    report.kv("seed", format!("{seed}"));
    report.kv(
        "crash_at",
        format!("{:.1}s", outcome.crash_at.as_secs_f64()),
    );
    report.kv(
        "detected_after",
        outcome
            .detection_latency()
            .map_or("-".into(), |d| format!("{d}")),
    );
    report.section("recovery");
    report.kv(
        "serving_again_after",
        outcome
            .recovery_latency()
            .map_or("-".into(), |d| format!("{d}")),
    );
    report.kv("replans", format!("{}", outcome.replans));
    report.kv("heal_passes", format!("{}", outcome.heal_passes));
    report.kv(
        "quarantined",
        format!(
            "{:?}",
            outcome.quarantined.iter().map(|n| n.0).collect::<Vec<_>>()
        ),
    );
    report.section("seattle (recovered)");
    report.kv("completed", format!("{}", outcome.seattle.completed));
    report.kv(
        "completed_before_crash",
        format!("{}", outcome.seattle.completed_before_crash),
    );
    report.kv("lost_to_retries", format!("{}", outcome.seattle.lost));
    report.kv("done", format!("{}", outcome.seattle.done));
    report.section("san diego (abandoned with its client node)");
    report.kv("completed", format!("{}", outcome.sd.completed));
    report.kv("lost", format!("{}", outcome.sd.lost));
    print!("{}", report.render());

    let json = outcome_json(&outcome);
    std::fs::write("BENCH_chaos.json", &json).expect("write BENCH_chaos.json");
    println!("wrote BENCH_chaos.json");

    if let Some(path) = jsonl_path {
        std::fs::write(&path, sink.to_jsonl()).expect("write JSONL dump");
        println!("wrote {path}");
    }
}
