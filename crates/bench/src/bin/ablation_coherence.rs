//! Coherence-policy ablation: send latency and flush behaviour of the
//! San Diego deployment under write-through, count-limited, time-driven,
//! and no propagation.

use ps_bench::{run_custom_policy, Fig7Config};
use ps_sim::SimDuration;
use ps_smock::CoherencePolicy;
use ps_trace::Report;

fn main() {
    let base = Fig7Config {
        clients: 3,
        msgs_per_client: 1000,
        ..Default::default()
    };
    let mut report =
        Report::new("Coherence-policy ablation (San Diego deployment, 3 clients x 1000 msgs)");
    report.line(format!(
        "{:<22} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "policy", "mean[ms]", "p50[ms]", "p95[ms]", "recv[ms]", "simtime[s]"
    ));

    let mut policies: Vec<(String, CoherencePolicy)> = vec![
        ("none".into(), CoherencePolicy::None),
        ("write-through".into(), CoherencePolicy::WriteThrough),
    ];
    for limit in [50u32, 100, 250, 500, 1000, 2000] {
        policies.push((
            format!("count-limit({limit})"),
            CoherencePolicy::CountLimit(limit),
        ));
    }
    for ms in [100u64, 500, 1000, 5000] {
        policies.push((
            format!("time-driven({ms}ms)"),
            CoherencePolicy::TimeDriven(SimDuration::from_millis(ms)),
        ));
    }

    for (name, policy) in policies {
        let r = run_custom_policy(policy, &base);
        report.line(format!(
            "{:<22} {:>12.3} {:>10.3} {:>10.3} {:>12.3} {:>12.2}",
            name,
            r.send.mean(),
            r.send_p50,
            r.send_p95,
            r.receive.mean(),
            r.completed_at.as_secs_f64()
        ));
    }
    report.line("");
    report.line(
        "(write-through pays the WAN on every send; looser limits amortize the\n\
         per-flush fixed cost, approaching the no-coherence floor)",
    );
    println!("{report}");
}
