//! RRF crossover ablation: at what declared Request Reduction Factor
//! does the planner stop deploying a `ViewMailServer` cache before the
//! slow link?
//!
//! The cache pays two local hops and its own CPU on every request and
//! saves `(1 − RRF)` of the WAN round trips; past a break-even RRF the
//! direct (encrypted) connection wins. The same sweep across WAN
//! latencies shows the crossover moving: the slower the link, the worse
//! a cache must be before it loses.

use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator};
use ps_net::casestudy::default_case_study;
use ps_planner::{Planner, PlannerConfig, ServiceRequest};
use ps_sim::SimDuration;
use ps_trace::Report;
use std::fmt::Write as _;

fn main() {
    let mut report = Report::new("RRF crossover: does the planner deploy the cache?");
    report.line(format!("{:<14}", "WAN latency"));
    let rrfs: Vec<f64> = vec![0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.98, 0.99, 1.0];
    let mut header = format!("{:<14}", "rrf:");
    for rrf in &rrfs {
        let _ = write!(header, " {rrf:>5.2}");
    }
    report.line(header);

    for wan_ms in [1u64, 2, 5, 10, 50, 400] {
        let mut cs = default_case_study();
        // Rescale the NY–SD link.
        let link_id = cs
            .network
            .link_between(cs.ny_gateway, cs.sd_gateway)
            .expect("wan link")
            .id;
        cs.network.link_mut(link_id).latency = SimDuration::from_millis(wan_ms);

        let mut row = format!("{:<14}", format!("{wan_ms} ms"));
        for rrf in &rrfs {
            let mut spec = mail_spec();
            spec.components
                .get_mut(VIEW_MAIL_SERVER)
                .expect("vms exists")
                .behavior
                .rrf = *rrf;
            let planner = Planner::with_config(spec, PlannerConfig::default());
            let request = ServiceRequest::new(CLIENT_INTERFACE, cs.sd_client)
                .rate(2.0)
                .pin(MAIL_SERVER, cs.mail_server)
                .origin(cs.mail_server)
                .require("TrustLevel", 4i64);
            let plan = planner
                .plan(&cs.network, &mail_translator(), &request)
                .expect("feasible");
            let cached = plan.placement_of(VIEW_MAIL_SERVER).is_some();
            let _ = write!(row, " {:>5}", if cached { "cache" } else { "-" });
        }
        report.line(row);
    }
    report.line("");
    report.line("('cache' = plan includes a ViewMailServer; '-' = direct encrypted connection)");
    println!("{report}");
}
