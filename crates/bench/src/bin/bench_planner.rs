//! Planner hot-path benchmark: seed algorithm vs the optimized path.
//!
//! Measures, in one harness, the planning stack as shipped by the seed
//! (unbounded exhaustive oracle, per-mapper lazy Dijkstra routes,
//! serial) against the optimized stack (bounded branch-and-bound
//! exhaustive search, one shared all-pairs [`RouteTable`] per call,
//! `plan_parallel` workers) on the case-study topology and progressively
//! larger BRITE hierarchies. Both configurations solve the identical
//! multi-linkage mail-service request and must report the identical
//! objective — the speedup is pure search/route engineering, not a
//! different answer.
//!
//! Writes `BENCH_planner.json` (hand-rolled JSON, no serde in the tree)
//! to the current directory and prints the same numbers as a table.
//!
//! [`RouteTable`]: ps_net::RouteTable

use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator};
use ps_net::brite::{hierarchical, FlatParams, HierParams};
use ps_net::casestudy::default_case_study;
use ps_net::{Credentials, Network};
use ps_planner::{Algorithm, PlanStats, Planner, PlannerConfig, ServiceRequest};
use ps_sim::Rng;
use ps_trace::{Report, WallTimer};
use std::fmt::Write as _;

/// Minimum timed repetitions per configuration (the fastest is
/// reported). Short scenarios keep repeating until `MIN_TOTAL_MS` of
/// measurement accumulates, which damps scheduler noise on small runs.
const REPS: usize = 5;
/// Repetition budget per configuration, milliseconds.
const MIN_TOTAL_MS: f64 = 300.0;
/// Hard repetition cap per configuration.
const MAX_REPS: usize = 40;

/// Planning threads for the optimized configuration: matched to the
/// machine (capped at 4) so `plan_parallel` never pays thread overhead
/// the hardware cannot repay — on a single-core box it runs one worker.
fn planning_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(4)
}

struct Measurement {
    time_ms: f64,
    objective: f64,
    stats: PlanStats,
}

fn planner_for(algorithm: Algorithm, share_route_table: bool) -> Planner {
    Planner::with_config(
        mail_spec(),
        PlannerConfig {
            algorithm,
            share_route_table,
            ..Default::default()
        },
    )
}

/// Runs one configuration `REPS` times; keeps the fastest run.
fn measure(
    net: &Network,
    request: &ServiceRequest,
    algorithm: Algorithm,
    share_route_table: bool,
    threads: usize,
) -> Option<Measurement> {
    let planner = planner_for(algorithm, share_route_table);
    let translator = mail_translator();
    let mut best: Option<Measurement> = None;
    let mut total_ms = 0.0;
    let mut reps = 0;
    while reps < REPS || (total_ms < MIN_TOTAL_MS && reps < MAX_REPS) {
        let start = WallTimer::start();
        let plan = if threads > 1 {
            planner
                .plan_parallel(net, &translator, request, threads)
                .ok()?
        } else {
            planner.plan(net, &translator, request).ok()?
        };
        let time_ms = start.elapsed_ms();
        total_ms += time_ms;
        reps += 1;
        if best.as_ref().is_none_or(|b| time_ms < b.time_ms) {
            best = Some(Measurement {
                time_ms,
                objective: plan.objective_value,
                stats: plan.stats,
            });
        }
    }
    best
}

/// Decorates a BRITE network with the mail service's credentials (first
/// AS = trusted HQ, second = branch, rest = partner), mirroring the
/// planner-ablation bench.
fn decorate(net: &mut Network) {
    for id in net.node_ids().collect::<Vec<_>>() {
        let site = net.node(id).site.clone();
        let (trust, domain) = match site.as_str() {
            "as0" => (5i64, "company"),
            "as1" => (3, "company"),
            _ => (2, "partner"),
        };
        let node = net.node_mut(id);
        node.credentials = Credentials::new()
            .with("TrustRating", trust)
            .with("Domain", domain);
    }
}

fn json_measurement(m: &Measurement) -> String {
    format!(
        "{{\"time_ms\": {:.3}, \"objective\": {:.6}, \"mappings_evaluated\": {}, \
         \"prunes\": {}, \"bound_prunes\": {}, \"route_table_build_us\": {}}}",
        m.time_ms,
        m.objective,
        m.stats.mappings_evaluated,
        m.stats.prunes,
        m.stats.bound_prunes,
        m.stats.route_table_build_us,
    )
}

fn main() {
    // Stable-artifact mode (PS_STABLE_ARTIFACTS=1): wall-clock fields
    // are zeroed and planning runs serial — with >1 worker the shared
    // incumbent makes prune/eval counts depend on thread timing, which
    // would break the byte-identical double-run guarantee.
    let stable = ps_bench::stable_artifacts();
    let threads = if stable { 1 } else { planning_threads() };
    let mut scenarios: Vec<(String, Network, ServiceRequest)> = Vec::new();

    let cs = default_case_study();
    for (label, client, trust) in [
        ("case-study/SanDiego", cs.sd_client, 4i64),
        ("case-study/Seattle", cs.seattle_client, 1),
    ] {
        let request = ServiceRequest::new(CLIENT_INTERFACE, client)
            .rate(2.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", trust);
        scenarios.push((label.to_owned(), cs.network.clone(), request));
    }

    for (as_count, routers) in [(3usize, 4usize), (4, 6), (5, 8)] {
        let mut rng = Rng::seed_from_u64(1234 + as_count as u64);
        let params = HierParams {
            as_count,
            router: FlatParams {
                nodes: routers,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut net = hierarchical(&mut rng, &params);
        decorate(&mut net);
        let server_node = net
            .node_ids()
            .find(|&n| net.trust_rating(n) == Some(5))
            .expect("an HQ node");
        let client_node = net
            .node_ids()
            .find(|&n| net.trust_rating(n) == Some(3))
            .expect("a branch node");
        let request = ServiceRequest::new(CLIENT_INTERFACE, client_node)
            .rate(2.0)
            .pin(MAIL_SERVER, server_node)
            .origin(server_node)
            .require("TrustLevel", 4i64);
        let label = format!("brite/{}as-x{}r ({}n)", as_count, routers, net.node_count());
        scenarios.push((label, net, request));
    }

    let mut report =
        Report::new("Planner hot path: seed (oracle, lazy routes, serial) vs optimized");
    report.line(format!(
        "    (bounded search + shared route table + {threads} plan_parallel threads)"
    ));
    report.line(format!(
        "{:<24} {:>10} {:>10} {:>8} {:>11} {:>11} {:>9}",
        "scenario", "seed[ms]", "new[ms]", "speedup", "seed evals", "new evals", "bound cut"
    ));

    let mut entries = Vec::new();
    let mut log_speedup_sum = 0.0;
    let mut compared = 0usize;
    for (label, net, request) in &scenarios {
        // The seed stack: unbounded oracle, per-mapper lazy Dijkstra,
        // serial planning — the algorithm this repo shipped before the
        // route-table/bounding work, re-run in this very harness.
        let seed = measure(net, request, Algorithm::Oracle, false, 1);
        // The optimized stack.
        let new = measure(net, request, Algorithm::Exhaustive, true, threads);
        match (seed, new) {
            (Some(mut seed), Some(mut new)) => {
                if stable {
                    for m in [&mut seed, &mut new] {
                        m.time_ms = 0.0;
                        m.stats.route_table_build_us = 0;
                    }
                }
                assert!(
                    (seed.objective - new.objective).abs() <= 1e-6 * seed.objective.abs().max(1.0),
                    "{label}: objectives diverged ({} vs {})",
                    seed.objective,
                    new.objective
                );
                let speedup = if stable {
                    0.0
                } else {
                    seed.time_ms / new.time_ms
                };
                report.line(format!(
                    "{:<24} {:>10.2} {:>10.2} {:>7.1}x {:>11} {:>11} {:>9}",
                    label,
                    seed.time_ms,
                    new.time_ms,
                    speedup,
                    seed.stats.mappings_evaluated,
                    new.stats.mappings_evaluated,
                    new.stats.bound_prunes,
                ));
                if !stable {
                    log_speedup_sum += speedup.ln();
                }
                compared += 1;
                let mut entry = String::new();
                write!(
                    entry,
                    "    {{\"scenario\": \"{label}\", \"nodes\": {}, \"speedup\": {speedup:.3},\n      \
                     \"seed\": {},\n      \"new\": {}}}",
                    net.node_count(),
                    json_measurement(&seed),
                    json_measurement(&new),
                )
                .expect("write to string");
                entries.push(entry);
            }
            _ => {
                report.line(format!("{label:<24} infeasible"));
            }
        }
    }

    let geomean = if compared > 0 && !stable {
        (log_speedup_sum / compared as f64).exp()
    } else {
        0.0
    };
    report.line("");
    report.kv(
        "geometric-mean speedup",
        format!("{geomean:.2}x over {compared} scenarios"),
    );

    let json = format!(
        "{{\n  \"bench\": \"planner_hot_path\",\n  \"threads\": {threads},\n  \
         \"seed_config\": \"oracle + lazy per-mapper routes, serial\",\n  \
         \"new_config\": \"bounded exhaustive + shared route table, plan_parallel\",\n  \
         \"geomean_speedup\": {geomean:.3},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_planner.json", &json).expect("write BENCH_planner.json");
    report.kv("wrote", "BENCH_planner.json");
    println!("{report}");
}
