//! Criterion timing of the planning module: one full `plan()` per
//! case-study site, per search algorithm (the planner-algorithm
//! ablation's timing half).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator};
use ps_net::casestudy::default_case_study;
use ps_planner::{Algorithm, Planner, PlannerConfig, ServiceRequest};

fn bench_planning(c: &mut Criterion) {
    let cs = default_case_study();
    let translator = mail_translator();
    let mut group = c.benchmark_group("planner");
    group.sample_size(10);

    for (site, client, trust) in [
        ("NewYork", cs.ny_client, 4i64),
        ("SanDiego", cs.sd_client, 4),
        ("Seattle", cs.seattle_client, 1),
    ] {
        let request = ServiceRequest::new(CLIENT_INTERFACE, client)
            .rate(2.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", trust);
        for (name, algorithm) in [
            ("exhaustive", Algorithm::Exhaustive),
            ("partial-order", Algorithm::PartialOrder),
            ("auto", Algorithm::Auto),
        ] {
            let planner = Planner::with_config(
                mail_spec(),
                PlannerConfig {
                    algorithm,
                    ..Default::default()
                },
            );
            group.bench_with_input(BenchmarkId::new(name, site), &request, |b, request| {
                b.iter(|| {
                    planner
                        .plan(&cs.network, &translator, request)
                        .expect("feasible")
                        .objective_value
                })
            });
        }
        let planner = Planner::with_config(mail_spec(), PlannerConfig::default());
        group.bench_with_input(
            BenchmarkId::new("auto-parallel4", site),
            &request,
            |b, request| {
                b.iter(|| {
                    planner
                        .plan_parallel(&cs.network, &translator, request, 4)
                        .expect("feasible")
                        .objective_value
                })
            },
        );
    }
    group.finish();
}

fn bench_linkage_enumeration(c: &mut Criterion) {
    let spec = mail_spec();
    c.bench_function("linkage_enumeration/mail", |b| {
        b.iter(|| {
            ps_planner::enumerate_linkages(
                &spec,
                "ClientInterface",
                &ps_planner::LinkageLimits::default(),
            )
            .len()
        })
    });
}

criterion_group!(benches, bench_planning, bench_linkage_enumeration);
criterion_main!(benches);
