//! Criterion timing of specification parsing, printing, and validation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ps_mail::{mail_spec, MAIL_SPEC_DSL};
use ps_spec::{parse_spec, print_spec};

fn bench_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec");
    group.throughput(Throughput::Bytes(MAIL_SPEC_DSL.len() as u64));
    group.bench_function("parse_dsl", |b| {
        b.iter(|| parse_spec("mail", MAIL_SPEC_DSL).expect("parses"))
    });
    let spec = mail_spec();
    group.bench_function("print", |b| b.iter(|| print_spec(&spec).len()));
    group.bench_function("validate", |b| b.iter(|| spec.validate().is_ok()));
    group.bench_function("roundtrip", |b| {
        b.iter(|| {
            let text = print_spec(&spec);
            parse_spec("mail", &text).expect("reparses")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_spec);
criterion_main!(benches);
