//! Criterion timing of complete Figure 7 scenario runs (small workload),
//! also serving as a regression guard on the harness itself: each
//! iteration plans, deploys, and simulates a full client workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_bench::{run_scenario, Fig7Config, Scenario};

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    let config = Fig7Config {
        clients: 2,
        msgs_per_client: 200,
        ..Default::default()
    };
    for scenario in [Scenario::DF, Scenario::DS0, Scenario::DS500, Scenario::SS] {
        group.bench_with_input(
            BenchmarkId::new("run", scenario.to_string()),
            &scenario,
            |b, &s| b.iter(|| run_scenario(s, &config).send.count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
