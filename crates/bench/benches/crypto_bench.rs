//! Criterion timing of the from-scratch ChaCha20 (the Cryptix JCE
//! stand-in) and of the end-to-end seal/unseal path the encryptor and
//! decryptor components execute per message.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ps_mail::crypto::chacha20::{self, Key, Nonce};
use ps_mail::payload::{decode_op, encode_op, MailOp};
use ps_mail::{Keyring, MailMessage, Sensitivity};

fn bench_chacha20(c: &mut Criterion) {
    let key = Key([7u8; 32]);
    let nonce = Nonce([3u8; 12]);
    let mut group = c.benchmark_group("chacha20");
    for size in [256usize, 4 * 1024, 64 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("encrypt/{size}B"), |b| {
            b.iter(|| chacha20::encrypt(&key, &nonce, &data).len())
        });
    }
    group.finish();
}

fn bench_seal_path(c: &mut Criterion) {
    let keyring = Keyring::new(11);
    let channel = keyring.channel_key("bench");
    let msg = MailMessage::new(1, "alice", "bob", "bench", vec![0u8; 2048], Sensitivity(2));
    let op = MailOp::Send(msg);
    c.bench_function("seal_unseal/2KB_send", |b| {
        b.iter(|| {
            let plain = encode_op(&op);
            let ct = chacha20::encrypt(&channel, &Keyring::nonce(9), &plain);
            let back = chacha20::decrypt(&channel, &Keyring::nonce(9), &ct);
            decode_op(&back).expect("roundtrip")
        })
    });
}

criterion_group!(benches, bench_chacha20, bench_seal_path);
criterion_main!(benches);
