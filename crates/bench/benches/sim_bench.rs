//! Criterion timing of the discrete-event substrate: raw engine event
//! throughput and end-to-end message round trips through the world.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ps_net::{Credentials, Network};
use ps_sim::{Engine, SimDuration, SimTime};
use ps_smock::{ComponentLogic, Outbox, Payload, RequestHandle, World};
use ps_spec::{Behavior, ResolvedBindings};

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    let events = 100_000u64;
    group.throughput(Throughput::Elements(events));
    group.bench_function("schedule_and_drain", |b| {
        b.iter(|| {
            let mut engine: Engine<u64> = Engine::new();
            for i in 0..events {
                engine.schedule(SimDuration::from_nanos(i % 1000), i);
            }
            let mut sum = 0u64;
            engine.run(&mut sum, |_, sum, e| *sum = sum.wrapping_add(e));
            sum
        })
    });
    group.finish();
}

struct Echo;
impl ComponentLogic for Echo {
    fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, payload: &Payload) {
        out.reply(req, payload.clone());
    }
    fn on_response(&mut self, _o: &mut Outbox, _t: u64, _p: &Payload) {}
}

struct Pinger {
    remaining: u32,
}
impl ComponentLogic for Pinger {
    fn on_start(&mut self, out: &mut Outbox) {
        out.call(0, Payload::new((), 1024), 0);
    }
    fn on_request(&mut self, _o: &mut Outbox, _r: RequestHandle, _p: &Payload) {}
    fn on_response(&mut self, out: &mut Outbox, _t: u64, _p: &Payload) {
        if self.remaining > 0 {
            self.remaining -= 1;
            out.call(0, Payload::new((), 1024), 0);
        }
    }
}

fn bench_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("world");
    let round_trips = 10_000u32;
    group.throughput(Throughput::Elements(round_trips as u64));
    group.bench_function("request_response_over_link", |b| {
        b.iter(|| {
            let mut net = Network::new();
            let a = net.add_node("a", "s", 1.0, Credentials::new());
            let z = net.add_node("z", "t", 1.0, Credentials::new());
            net.add_link(a, z, SimDuration::from_micros(50), 1e9, Credentials::new());
            let mut world = World::new(net);
            let server = world.instantiate(
                "Echo",
                z,
                ResolvedBindings::new(),
                Behavior::new(),
                Box::new(Echo),
                SimTime::ZERO,
            );
            let client = world.instantiate(
                "Pinger",
                a,
                ResolvedBindings::new(),
                Behavior::new(),
                Box::new(Pinger {
                    remaining: round_trips,
                }),
                SimTime::ZERO,
            );
            world.wire(client, vec![server]);
            world.run();
            world.events_processed()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_world);
criterion_main!(benches);
