//! Critical-path extraction against the mail case study: the connect
//! span tree for each Section 4.2 site must reproduce the known
//! dominant phase (deploy for the LAN-local New York client; the WAN
//! lookup round trip for San Diego), and the path segmentation must
//! cover the whole connect interval.

use ps_core::Framework;
use ps_mail::spec::names::*;
use ps_mail::{mail_spec, mail_translator, register_mail_components, Keyring};
use ps_net::casestudy::default_case_study;
use ps_planner::ServiceRequest;
use ps_smock::{CoherencePolicy, ServiceRegistration};
use ps_trace::{scope_critical_path, Tracer};

/// Connects the three case-study sites under a memory tracer and
/// returns the captured event stream.
fn traced_connects() -> Vec<ps_trace::Event> {
    let (tracer, sink) = Tracer::memory();
    let cs = default_case_study();
    let mut framework = Framework::new(
        cs.network.clone(),
        cs.mail_server,
        Box::new(mail_translator()),
    );
    framework.set_tracer(tracer);
    register_mail_components(
        &mut framework.server.registry,
        Keyring::new(1),
        CoherencePolicy::CountLimit(500),
    );
    framework.register_service(
        ServiceRegistration::new(mail_spec())
            .attribute("type", "mail")
            .proxy_code_size(32 * 1024),
    );
    framework
        .install_primary("mail", MAIL_SERVER, cs.mail_server)
        .expect("primary");
    for (client, trust) in [
        (cs.ny_client, 4i64),
        (cs.sd_client, 4),
        (cs.seattle_client, 1),
    ] {
        let request = ServiceRequest::new(CLIENT_INTERFACE, client)
            .rate(5.0)
            .pin(MAIL_SERVER, cs.mail_server)
            .origin(cs.mail_server)
            .require("TrustLevel", trust);
        framework.connect("mail", &request).expect("connect");
    }
    framework.run();
    sink.events()
}

#[test]
fn connect_critical_paths_match_known_dominant_phases() {
    let events = traced_connects();

    // New York sits on the server's LAN: lookup and transfer are
    // near-instant, the fixed component deploy time dominates.
    let ny = scope_critical_path("conn-0", &events).expect("conn-0 path");
    assert_eq!(ny.root, "connect");
    let (phase, ns) = ny.dominant().expect("non-empty path");
    assert_eq!(
        phase,
        "deploy",
        "New York's connect must be dominated by deploy, got {phase} ({ns} ns): {:?}",
        ny.phase_totals()
    );
    // Deploy is a fixed 500 ms; the path attributes the overlapped head
    // of the interval to the earlier-entered transfer span.
    assert!(
        (490_000_000..=500_000_000).contains(&ns),
        "deploy's critical-path share should be ~500 ms, got {ns} ns"
    );

    // San Diego is behind the WAN: the 801 ms lookup round trip leads
    // the path, and the overlapping proxy transfer only contributes its
    // un-shadowed tail (earliest-enter-first attribution).
    let sd = scope_critical_path("conn-1", &events).expect("conn-1 path");
    let (phase, ns) = sd.dominant().expect("non-empty path");
    assert_eq!(
        phase,
        "lookup",
        "San Diego's connect path must be led by the WAN lookup: {:?}",
        sd.phase_totals()
    );
    assert_eq!(ns, 801_024_000);
    assert!(
        sd.phase_ns("transfer") < 801_024_000 && sd.phase_ns("transfer") > 0,
        "the overlapped transfer contributes only its tail, got {} ns",
        sd.phase_ns("transfer")
    );

    // The segmentation is gap-free: segments tile the root interval.
    for path in [&ny, &sd] {
        let covered: u64 = path.segments.iter().map(|s| s.duration_ns()).sum();
        assert_eq!(
            covered, path.total_ns,
            "critical-path segments must tile the connect interval exactly"
        );
    }
}
