//! Fixture tests: each rule fires at exactly the expected (rule, line)
//! sites in its `*_bad.rs` fixture, and an inline
//! `// ps-lint: allow(...)` comment silences it in the `*_allow.rs`
//! twin. Fixtures live under `tests/fixtures/`, which the workspace walk
//! skips, so the lint gate never trips on its own test corpus.

use ps_lint::{scan_source, FileReport};

fn scan_fixture(name: &str) -> FileReport {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {path}: {e}"));
    scan_source(name, &source)
}

fn rule_lines(report: &FileReport) -> Vec<(&'static str, u32)> {
    report.findings.iter().map(|f| (f.rule, f.line)).collect()
}

#[test]
fn d001_fires_on_chain_and_for_loop() {
    let report = scan_fixture("d001_bad.rs");
    assert_eq!(rule_lines(&report), vec![("D001", 4), ("D001", 9)]);
    assert_eq!(report.unsuppressed().count(), 2);
}

#[test]
fn d001_allow_silences_both_forms() {
    let report = scan_fixture("d001_allow.rs");
    assert_eq!(rule_lines(&report), vec![("D001", 5), ("D001", 11)]);
    assert_eq!(report.unsuppressed().count(), 0);
    assert_eq!(report.allows.len(), 2);
    assert!(report.allows.iter().all(|a| a.used == 1));
    assert!(report.allows[0].allow.reason.contains("set-equality"));
}

#[test]
fn d002_fires_on_instant_and_system_time() {
    let report = scan_fixture("d002_bad.rs");
    assert_eq!(rule_lines(&report), vec![("D002", 2), ("D002", 3)]);
    assert_eq!(report.unsuppressed().count(), 2);
}

#[test]
fn d002_allow_silences_wall_clock() {
    let report = scan_fixture("d002_allow.rs");
    assert_eq!(rule_lines(&report), vec![("D002", 3)]);
    assert_eq!(report.unsuppressed().count(), 0);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].used, 1);
}

#[test]
fn d003_fires_on_random_state() {
    let report = scan_fixture("d003_bad.rs");
    assert_eq!(rule_lines(&report), vec![("D003", 2)]);
    assert_eq!(report.unsuppressed().count(), 1);
}

#[test]
fn d003_allow_silences_entropy() {
    let report = scan_fixture("d003_allow.rs");
    assert_eq!(rule_lines(&report), vec![("D003", 3)]);
    assert_eq!(report.unsuppressed().count(), 0);
    assert!(report.allows[0].allow.reason.contains("cache key"));
}

#[test]
fn d004_fires_on_channel_and_spawn() {
    let report = scan_fixture("d004_bad.rs");
    assert_eq!(rule_lines(&report), vec![("D004", 2), ("D004", 5)]);
    assert_eq!(report.unsuppressed().count(), 2);
}

#[test]
fn d004_allow_silences_slot_indexed_fanout() {
    let report = scan_fixture("d004_allow.rs");
    assert_eq!(rule_lines(&report), vec![("D004", 7)]);
    assert_eq!(report.unsuppressed().count(), 0);
    assert!(report.allows[0].allow.reason.contains("slot-indexed"));
}

#[test]
fn d005_fires_on_float_sum_and_fold() {
    let report = scan_fixture("d005_bad.rs");
    assert_eq!(rule_lines(&report), vec![("D005", 4), ("D005", 8)]);
    assert_eq!(report.unsuppressed().count(), 2);
}

#[test]
fn d005_allow_silences_chain_and_loop_accumulator() {
    let report = scan_fixture("d005_allow.rs");
    assert_eq!(
        rule_lines(&report),
        vec![("D005", 5), ("D001", 11), ("D005", 13)]
    );
    assert_eq!(report.unsuppressed().count(), 0);
    assert_eq!(report.allows.len(), 3);
    assert!(report.allows.iter().all(|a| a.used == 1));
}

/// Runs the full two-layer pipeline on one fixture. The label is placed
/// under a fake `crates/fx/src/` path so the semantic passes do not
/// treat the fixture as test code.
fn analyze_fixture(name: &str, entries: &[&str]) -> FileReport {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let source =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read fixture {path}: {e}"));
    let label = format!("crates/fx/src/{name}");
    let mut analysis = ps_lint::analyze_sources(&[(label, source)], entries);
    analysis.reports.remove(0)
}

#[test]
fn n001_laundered_taint_fires_where_token_rules_cannot() {
    let report = analyze_fixture("n001_bad.rs", &[]);
    // Token layer: only the (allowed) leaf D002. Semantic layer: the
    // sink contact in `emit`, three calls away from the clock read.
    let n001: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "N001")
        .collect();
    assert_eq!(n001.len(), 1);
    assert_eq!(n001[0].line, 18);
    assert!(!n001[0].suppressed);
    assert_eq!(
        n001[0].chain,
        vec![
            "Instant::now (crates/fx/src/n001_bad.rs:12)",
            "read_clock",
            "launder",
            "emit",
            "Tracer::observe (crates/fx/src/n001_bad.rs:18)",
        ]
    );
    // The token-only scanner provably misses the sink contact: its only
    // finding is the D002 at the clock read itself.
    let path = format!("{}/tests/fixtures/n001_bad.rs", env!("CARGO_MANIFEST_DIR"));
    let token_only = scan_source("n001_bad.rs", &std::fs::read_to_string(path).unwrap());
    assert!(token_only.findings.iter().all(|f| f.rule == "D002"));
    assert!(token_only.findings.iter().all(|f| f.line != 18));
}

#[test]
fn n001_allow_at_source_is_a_sanctioned_boundary() {
    let report = analyze_fixture("n001_allow.rs", &[]);
    // D002 and the N001 boundary finding, both suppressed by the one
    // combined allow; no sink contact downstream.
    assert_eq!(report.unsuppressed().count(), 0);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "N001" && f.line == 11));
    assert!(report.findings.iter().all(|f| f.line <= 11));
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].used, 2);
}

#[test]
fn p001_fires_reachable_panic_with_entry_chain() {
    let report = analyze_fixture("p001_bad.rs", &["Framework::heal"]);
    let p001: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "P001")
        .collect();
    assert_eq!(p001.len(), 1, "only the reachable unwrap fires");
    assert_eq!(p001[0].line, 14);
    assert_eq!(p001[0].chain, vec!["Framework::heal", "helper", "deep"]);
    assert!(p001[0].message.contains("Framework::heal → helper → deep"));
}

#[test]
fn p001_allow_silences_reachable_panic() {
    let report = analyze_fixture("p001_allow.rs", &["Framework::heal"]);
    assert_eq!(report.unsuppressed().count(), 0);
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == "P001" && f.suppressed));
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].used, 1);
}

#[test]
fn r001_fires_on_result_drop_but_not_fmt_macro() {
    let report = analyze_fixture("r001_bad.rs", &[]);
    let r001: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "R001")
        .collect();
    assert_eq!(r001.len(), 1);
    assert_eq!(r001[0].line, 8);
    assert_eq!(r001[0].chain, vec!["go"]);
    assert!(r001[0].message.contains("fallible()"));
}

#[test]
fn r001_allow_silences_discard() {
    let report = analyze_fixture("r001_allow.rs", &[]);
    assert_eq!(report.unsuppressed().count(), 0);
    assert_eq!(report.allows.len(), 1);
    assert_eq!(report.allows[0].used, 1);
}

#[test]
fn malformed_allow_is_an_unsuppressable_finding() {
    let src = "// ps-lint: allow(D001)\nfn f() {}\n";
    let report = scan_source("inline.rs", src);
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "D000");
    assert!(!report.findings[0].suppressed);
}

/// The real workspace must stay clean: zero unsuppressed findings, and
/// every suppression actually in use. This mirrors the verify.sh gate so
/// a plain `cargo test` catches regressions too.
#[test]
fn workspace_is_clean() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let reports = ps_lint::scan_workspace(std::path::Path::new(&root));
    assert!(reports.len() > 50, "workspace walk found too few files");
    let mut problems = Vec::new();
    for report in &reports {
        for f in report.unsuppressed() {
            problems.push(format!(
                "{} {}:{}: {}",
                f.rule, report.path, f.line, f.message
            ));
        }
        for a in &report.allows {
            if a.used == 0 {
                problems.push(format!(
                    "{}:{}: unused suppression allow({})",
                    report.path,
                    a.allow.line,
                    a.allow.rules.join(",")
                ));
            }
        }
    }
    assert!(
        problems.is_empty(),
        "workspace lint debt:\n{}",
        problems.join("\n")
    );
}
