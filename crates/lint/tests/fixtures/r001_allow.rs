//! R001 fixture: a reasoned allow on the discard silences it.
fn fallible() -> Result<u32, String> {
    Ok(1)
}
pub fn go() {
    // ps-lint: allow(R001): best-effort call, failure handled upstream
    let _ = fallible();
}
