//! P001 fixture: a reasoned allow on the panic site silences it even
//! though the site is reachable from the entry.
pub struct Framework;
impl Framework {
    pub fn heal(&mut self) {
        helper();
    }
}
fn helper() {
    let v: Option<u32> = Some(1);
    // ps-lint: allow(P001): invariant — seeded one line above
    v.unwrap();
}
