pub fn profile_build() -> u64 {
    let started = std::time::Instant::now();
    let stamp = std::time::SystemTime::now();
    let _ = stamp;
    started.elapsed().as_micros() as u64
}
