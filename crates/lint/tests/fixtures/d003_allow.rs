pub fn cache_key() -> u64 {
    // ps-lint: allow(D003): hasher feeds an in-memory cache key; never traced or replayed
    let state = std::collections::hash_map::RandomState::new();
    std::hash::BuildHasher::hash_one(&state, 42u8)
}
