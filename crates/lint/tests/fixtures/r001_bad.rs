//! R001 fixture: `let _ =` on a fallible call fires; fmt-macro writes
//! are exempt by design.
use std::fmt::Write as _;
fn fallible() -> Result<u32, String> {
    Ok(1)
}
pub fn go() {
    let _ = fallible();
    let mut s = String::new();
    let _ = writeln!(s, "ok");
}
