use std::collections::HashMap;

pub fn total_cost(costs: &HashMap<u32, f64>) -> f64 {
    costs.values().sum::<f64>()
}

pub fn folded_cost(costs: &HashMap<u32, f64>) -> f64 {
    costs.values().fold(0.0, |acc, v| acc + v)
}
