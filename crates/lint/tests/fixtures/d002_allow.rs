pub fn wall_reading() -> bool {
    // ps-lint: allow(D002): recording-only reading; duration is logged, never consumed
    let t = std::time::SystemTime::now();
    t.elapsed().is_ok()
}
