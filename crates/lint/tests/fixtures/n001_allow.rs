//! N001 fixture: an `allow(N001)` at the source declares a sanctioned
//! boundary — taint stops there and the sink below stays silent.
pub struct Tracer;
impl Tracer {
    pub fn observe(&self, v: u64) {
        drop(v);
    }
}
fn read_clock() -> u64 {
    // ps-lint: allow(D002, N001): sanctioned recording-only boundary
    std::time::Instant::now().elapsed().as_micros() as u64
}
pub fn emit(t: &Tracer) {
    t.observe(read_clock());
}
