pub fn fan_out(jobs: Vec<u64>) -> Vec<u64> {
    let mut results: Vec<Option<u64>> = vec![None; jobs.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (slot, j) in jobs.iter().enumerate() {
            // ps-lint: allow(D004): slot-indexed merge — output order is fixed by slot, not completion time
            handles.push((slot, scope.spawn(move || j * 2)));
        }
        for (slot, h) in handles {
            results[slot] = Some(h.join().unwrap());
        }
    });
    results.into_iter().map(Option::unwrap).collect()
}
