use std::collections::HashMap;

pub fn total_cost(costs: &HashMap<u32, f64>) -> f64 {
    // ps-lint: allow(D005): display-only total; bit-exactness not required
    costs.values().sum::<f64>()
}

pub fn loop_total(costs: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    // ps-lint: allow(D001): totalling loop; order not otherwise observed
    for (_k, v) in costs {
        // ps-lint: allow(D005): same display-only total as above
        total += v;
    }
    total
}
