pub fn ambient_hash() -> u64 {
    let state = std::collections::hash_map::RandomState::new();
    std::hash::BuildHasher::hash_one(&state, 42u8)
}
