use std::collections::HashMap;

pub fn order_leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}

pub fn loop_leak(m: &HashMap<u32, u32>) -> u32 {
    let mut last = 0;
    for (_k, v) in m {
        last = last.max(*v);
    }
    last
}
