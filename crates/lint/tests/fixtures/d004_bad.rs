pub fn fan_out(jobs: Vec<u64>) -> u64 {
    let (tx, rx) = std::sync::mpsc::channel();
    for j in jobs {
        let tx = tx.clone();
        std::thread::spawn(move || tx.send(j * 2).unwrap());
    }
    drop(tx);
    rx.iter().sum()
}
