//! P001 fixture: panic-capable sites reachable from the entry fire with
//! an entry → … → site chain; unreachable ones stay silent.
pub struct Framework;
impl Framework {
    pub fn heal(&mut self) {
        helper();
    }
}
fn helper() {
    deep();
}
fn deep() {
    let v: Option<u32> = None;
    v.unwrap();
}
pub fn off_path() {
    let v: Option<u32> = None;
    v.unwrap();
}
