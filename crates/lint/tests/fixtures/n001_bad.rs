//! N001 fixture: a wall-clock read laundered through a helper reaches a
//! trace sink. The token rules see only the leaf read (D002, allowed
//! here); the sink contact below is invisible without the call graph.
pub struct Tracer;
impl Tracer {
    pub fn observe(&self, v: u64) {
        drop(v);
    }
}
fn read_clock() -> u64 {
    // ps-lint: allow(D002): leaf excused — the flow is still audited
    std::time::Instant::now().elapsed().as_micros() as u64
}
fn launder() -> u64 {
    read_clock()
}
pub fn emit(t: &Tracer) {
    t.observe(launder());
}
