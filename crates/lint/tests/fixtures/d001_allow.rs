use std::collections::HashMap;

pub fn order_leak(m: &HashMap<u32, u32>) -> Vec<u32> {
    // ps-lint: allow(D001): result feeds a set-equality assertion; order never observed
    m.keys().copied().collect()
}

pub fn loop_leak(m: &HashMap<u32, u32>) -> u32 {
    let mut last = 0;
    // ps-lint: allow(D001): reduction below is max-like and order-insensitive
    for (_k, v) in m {
        last = last.max(*v);
    }
    last
}
