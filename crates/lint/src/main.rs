//! CLI for ps-lint. Usage:
//!
//! ```text
//! cargo run -p ps-lint                      # scan the workspace, exit 1 on findings
//! cargo run -p ps-lint -- --list-allows     # print the suppression inventory
//! cargo run -p ps-lint -- --root <dir>      # scan a different root
//! cargo run -p ps-lint -- --format json     # machine-readable report (stable field order)
//! cargo run -p ps-lint -- --format github   # GitHub workflow annotations
//! cargo run -p ps-lint -- file.rs ...       # scan specific files
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Human,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut list_allows = false;
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Human;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-allows" => list_allows = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ps-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    eprintln!(
                        "ps-lint: --format requires one of human|json|github (got {other:?})"
                    );
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "ps-lint: determinism & protocol-invariant static analysis\n\
                     \n\
                     usage: ps-lint [--root DIR] [--format human|json|github] \
                     [--list-allows] [FILE.rs ...]\n\
                     \n\
                     token rules: D001 hash-order iteration, D002 wall-clock reads,\n\
                     D003 unseeded randomness, D004 unordered parallel reduction,\n\
                     D005 float accumulation order (D000 = malformed suppression)\n\
                     \n\
                     semantic rules (workspace call graph, chain-printed):\n\
                     N001 nondeterminism taint reaching artifacts or trace sinks,\n\
                     P001 panic-capable sites reachable from the heal/invoke hot\n\
                     path, R001 dropped fallibility (`let _ =` on fallible calls)\n\
                     \n\
                     suppress with `// ps-lint: allow(RULE, ...): <reason>` on the\n\
                     preceding line; --list-allows prints the full inventory"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let analysis = if files.is_empty() {
        // Default root: the workspace this binary was built from.
        let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
        ps_lint::analyze_workspace(&root)
    } else {
        let mut sources = Vec::new();
        for path in &files {
            match std::fs::read_to_string(path) {
                Ok(src) => sources.push((path.to_string_lossy().into_owned(), src)),
                Err(e) => {
                    eprintln!("ps-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        ps_lint::analyze_sources(&sources, &[])
    };
    let reports = &analysis.reports;

    if list_allows {
        let mut total = 0usize;
        let mut unused = 0usize;
        for report in reports {
            for rec in &report.allows {
                total += 1;
                let rules = rec.allow.rules.join(",");
                let status = if rec.used > 0 { "used" } else { "UNUSED" };
                if rec.used == 0 {
                    unused += 1;
                }
                println!(
                    "{}:{}: allow({rules}) [{status}] — {}",
                    report.path, rec.allow.line, rec.allow.reason
                );
            }
        }
        println!("ps-lint: {total} suppression(s), {unused} unused");
        return ExitCode::SUCCESS;
    }

    let unsuppressed: usize = reports.iter().map(|r| r.unsuppressed().count()).sum();

    match format {
        Format::Json => print_json(&analysis, unsuppressed),
        Format::Github => print_github(reports),
        Format::Human => print_human(&analysis, unsuppressed),
    }

    if unsuppressed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn print_human(analysis: &ps_lint::WorkspaceAnalysis, unsuppressed: usize) {
    let mut suppressed = 0usize;
    for report in &analysis.reports {
        for finding in &report.findings {
            if finding.suppressed {
                suppressed += 1;
                continue;
            }
            println!(
                "{} {}:{}: {}",
                finding.rule, report.path, finding.line, finding.message
            );
        }
    }
    let t = &analysis.timings;
    println!(
        "ps-lint: {} file(s), {} fn(s); {unsuppressed} finding(s), {suppressed} suppressed",
        t.files, t.fns
    );
    println!(
        "ps-lint: stages: read+parse {:.1}ms, token rules {:.1}ms, \
         call graph {:.1}ms, semantic passes {:.1}ms, total {:.1}ms",
        t.read_parse_us as f64 / 1000.0,
        t.token_rules_us as f64 / 1000.0,
        t.graph_us as f64 / 1000.0,
        t.passes_us as f64 / 1000.0,
        t.total_us as f64 / 1000.0,
    );
}

/// GitHub workflow-command annotations: one `::error`/`::notice` line per
/// finding, attributed to file and line in the diff view.
fn print_github(reports: &[ps_lint::FileReport]) {
    for report in reports {
        for finding in &report.findings {
            if finding.suppressed {
                continue;
            }
            println!(
                "::error file={},line={},title=ps-lint {}::{}",
                report.path,
                finding.line,
                finding.rule,
                gh_escape(&finding.message)
            );
        }
    }
}

/// Hand-rolled JSON report. Field order is fixed by construction; files
/// and findings arrive pre-sorted, so byte-identical inputs produce
/// byte-identical reports. Stage timings come from the library, which
/// zeroes them under `PS_STABLE_ARTIFACTS=1` — in stable mode two runs
/// over the same tree `cmp` equal.
fn print_json(analysis: &ps_lint::WorkspaceAnalysis, unsuppressed: usize) {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"version\": 2,\n  \"findings\": [");
    let mut first = true;
    let mut suppressed = 0usize;
    let mut allows = 0usize;
    let mut unused_allows = 0usize;
    for report in &analysis.reports {
        for rec in &report.allows {
            allows += 1;
            if rec.used == 0 {
                unused_allows += 1;
            }
        }
        for finding in &report.findings {
            if finding.suppressed {
                suppressed += 1;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {\"rule\": ");
            json_string(&mut out, finding.rule);
            out.push_str(", \"path\": ");
            json_string(&mut out, &report.path);
            out.push_str(&format!(", \"line\": {}", finding.line));
            out.push_str(&format!(", \"suppressed\": {}", finding.suppressed));
            out.push_str(", \"message\": ");
            json_string(&mut out, &finding.message);
            out.push_str(", \"chain\": [");
            for (i, hop) in finding.chain.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                json_string(&mut out, hop);
            }
            out.push_str("]}");
        }
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("],\n");
    out.push_str(&format!(
        "  \"summary\": {{\"files\": {}, \"fns\": {}, \"unsuppressed\": {unsuppressed}, \
         \"suppressed\": {suppressed}, \"allows\": {allows}, \
         \"unused_allows\": {unused_allows}}},\n",
        analysis.timings.files, analysis.timings.fns
    ));
    // Stable mode: zero the wall-clock stage timings so two runs over
    // the same tree produce byte-identical reports (`cmp`-able in CI).
    let stable = std::env::var("PS_STABLE_ARTIFACTS").is_ok_and(|v| v == "1");
    let t = if stable {
        ps_lint::StageTimings {
            files: analysis.timings.files,
            fns: analysis.timings.fns,
            ..Default::default()
        }
    } else {
        analysis.timings
    };
    out.push_str(&format!(
        "  \"timings_us\": {{\"read_parse\": {}, \"token_rules\": {}, \"graph\": {}, \
         \"passes\": {}, \"total\": {}}}\n}}",
        t.read_parse_us, t.token_rules_us, t.graph_us, t.passes_us, t.total_us
    ));
    println!("{out}");
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// GitHub workflow commands require percent-encoding of `%`, CR and LF
/// in the message body.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}
