//! CLI for ps-lint. Usage:
//!
//! ```text
//! cargo run -p ps-lint                      # scan the workspace, exit 1 on findings
//! cargo run -p ps-lint -- --list-allows     # print the suppression inventory
//! cargo run -p ps-lint -- --root <dir>      # scan a different root
//! cargo run -p ps-lint -- file.rs ...       # scan specific files
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut list_allows = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-allows" => list_allows = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("ps-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "ps-lint: determinism & protocol-invariant static analysis\n\
                     \n\
                     usage: ps-lint [--root DIR] [--list-allows] [FILE.rs ...]\n\
                     \n\
                     rules: D001 hash-order iteration, D002 wall-clock reads,\n\
                     D003 unseeded randomness, D004 unordered parallel reduction,\n\
                     D005 float accumulation order (D000 = malformed suppression)\n\
                     \n\
                     suppress with `// ps-lint: allow(D00x): <reason>` on the\n\
                     preceding line; --list-allows prints the full inventory"
                );
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }

    let reports = if files.is_empty() {
        // Default root: the workspace this binary was built from.
        let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
        ps_lint::scan_workspace(&root)
    } else {
        let mut out = Vec::new();
        for path in &files {
            match std::fs::read_to_string(path) {
                Ok(src) => out.push(ps_lint::scan_source(&path.to_string_lossy(), &src)),
                Err(e) => {
                    eprintln!("ps-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        out
    };

    if list_allows {
        let mut total = 0usize;
        let mut unused = 0usize;
        for report in &reports {
            for rec in &report.allows {
                total += 1;
                let rules = rec.allow.rules.join(",");
                let status = if rec.used > 0 { "used" } else { "UNUSED" };
                if rec.used == 0 {
                    unused += 1;
                }
                println!(
                    "{}:{}: allow({rules}) [{status}] — {}",
                    report.path, rec.allow.line, rec.allow.reason
                );
            }
        }
        println!("ps-lint: {total} suppression(s), {unused} unused");
        return ExitCode::SUCCESS;
    }

    let mut unsuppressed = 0usize;
    let mut suppressed = 0usize;
    let mut scanned = 0usize;
    for report in &reports {
        scanned += 1;
        for finding in &report.findings {
            if finding.suppressed {
                suppressed += 1;
                continue;
            }
            unsuppressed += 1;
            println!(
                "{} {}:{}: {}",
                finding.rule, report.path, finding.line, finding.message
            );
        }
    }
    println!(
        "ps-lint: {scanned} file(s) scanned, {unsuppressed} finding(s), \
         {suppressed} suppressed"
    );
    if unsuppressed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
