//! A small hand-rolled Rust lexer: comment-, string-, and
//! raw-string-aware, producing a flat token stream with line numbers.
//!
//! This is deliberately *not* a parser (the build is offline, so no
//! `syn`): the rule engine in [`crate::rules`] pattern-matches over the
//! token stream. The lexer's one extra job is extracting `ps-lint:
//! allow(...)` suppression comments, which never appear as tokens.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (multi-char operators appear as
    /// consecutive tokens: `::` is two `:`).
    Punct,
    /// Numeric, string, byte, or char literal (text preserved).
    Literal,
    /// A lifetime such as `'a` (without the quote in `text`).
    Lifetime,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Source text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.as_bytes()[0] as char == c
    }
}

/// A parsed `// ps-lint: allow(D00x[, D00y]): reason` suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// Rule IDs the suppression covers (e.g. `["D001"]`).
    pub rules: Vec<String>,
    /// The mandatory human-written justification.
    pub reason: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Well-formed suppression comments.
    pub allows: Vec<Allow>,
    /// Malformed suppression comments: `(line, what is wrong)`. These
    /// are reported as hard findings — a suppression without a written
    /// reason is itself a violation of the audit contract.
    pub malformed: Vec<(u32, String)>,
}

/// The marker a suppression comment must contain.
pub const ALLOW_MARKER: &str = "ps-lint: allow(";

/// Lexes `source`, returning tokens plus suppression comments.
pub fn lex(source: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = source.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    while i < b.len() {
        let c = b[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                parse_allow_comment(&source[start..i], line, &mut out);
            }
            '/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let (len, newlines) = scan_string(&source[i..]);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..i + len].to_owned(),
                    line,
                });
                line += newlines;
                i += len;
            }
            'r' | 'b' if starts_raw_or_byte_string(&source[i..]) => {
                let (len, newlines) = scan_raw_or_byte_string(&source[i..]);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..i + len].to_owned(),
                    line,
                });
                line += newlines;
                i += len;
            }
            '\'' => {
                let (tok_len, kind) = scan_quote(&source[i..]);
                let (skip, text) = match kind {
                    TokenKind::Lifetime => (tok_len, source[i + 1..i + tok_len].to_owned()),
                    _ => (tok_len, source[i..i + tok_len].to_owned()),
                };
                out.tokens.push(Token { kind, text, line });
                i += skip;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Fractional part: only when `.` is followed by a digit,
                // so `0..n` stays three tokens.
                if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    out
}

/// Recognizes `r"`, `r#`, `b"`, `br"`, `br#` string openers.
fn starts_raw_or_byte_string(s: &str) -> bool {
    let b = s.as_bytes();
    match b[0] {
        b'r' => b.get(1).is_some_and(|&c| c == b'"' || c == b'#'),
        b'b' => match b.get(1) {
            Some(b'"') => true,
            Some(b'r') => b.get(2).is_some_and(|&c| c == b'"' || c == b'#'),
            _ => false,
        },
        _ => false,
    }
}

/// Scans a normal `"..."` string (escapes honoured). Returns (length,
/// newline count).
fn scan_string(s: &str) -> (usize, u32) {
    let b = s.as_bytes();
    let mut i = 1;
    let mut newlines = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), newlines)
}

/// Scans raw/byte strings (`r#"..."#`, `b"..."`, `br##"..."##`).
fn scan_raw_or_byte_string(s: &str) -> (usize, u32) {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
        i += 1;
    }
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return (i.max(1), 0); // not actually a string; consume the prefix
    }
    let raw = hashes > 0 || s.starts_with('r') || s.starts_with("br");
    i += 1;
    let mut newlines = 0;
    while i < b.len() {
        match b[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0;
                while seen < hashes && j < b.len() && b[j] == b'#' {
                    seen += 1;
                    j += 1;
                }
                if seen == hashes {
                    return (j, newlines);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), newlines)
}

/// Distinguishes a char literal from a lifetime at a leading `'`.
/// Returns (token length, kind).
fn scan_quote(s: &str) -> (usize, TokenKind) {
    let b = s.as_bytes();
    if b.len() >= 2 && b[1] == b'\\' {
        // Escaped char literal: find the closing quote.
        let mut i = 2;
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return (i + 1, TokenKind::Literal);
    }
    if b.len() >= 3 && b[2] == b'\'' {
        return (3, TokenKind::Literal);
    }
    // Lifetime: consume identifier characters after the quote.
    let mut i = 1;
    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
        i += 1;
    }
    (i.max(2), TokenKind::Lifetime)
}

/// Parses a `ps-lint: allow(...)` directive out of a line comment, if
/// present, recording either a well-formed [`Allow`] or a malformed
/// entry. Doc comments (`///`, `//!`) are documentation, not directives,
/// so they are ignored — which also lets docs quote the syntax freely.
fn parse_allow_comment(comment: &str, line: u32, out: &mut Lexed) {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return;
    }
    let Some(pos) = comment.find(ALLOW_MARKER) else {
        return;
    };
    let rest = &comment[pos + ALLOW_MARKER.len()..];
    let Some(close) = rest.find(')') else {
        out.malformed
            .push((line, "unterminated allow(...) rule list".to_owned()));
        return;
    };
    let mut rules = Vec::new();
    for raw in rest[..close].split(',') {
        let id = raw.trim();
        // Rule families: D (token determinism), N (nondeterminism
        // taint), P (panic path), R (dropped fallibility).
        let well_formed = id.len() == 4
            && id.starts_with(['D', 'N', 'P', 'R'])
            && id[1..].chars().all(|c| c.is_ascii_digit());
        if !well_formed {
            out.malformed
                .push((line, format!("bad rule id `{id}` in allow(...)")));
            return;
        }
        rules.push(id.to_owned());
    }
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        out.malformed.push((
            line,
            "suppression carries no reason — write `ps-lint: allow(D00x): <why>`".to_owned(),
        ));
        return;
    }
    out.allows.push(Allow {
        line,
        rules,
        reason: reason.to_owned(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_strings_and_idents() {
        let src = r##"
// a comment with HashMap in it
fn f() {
    let s = "HashMap::iter() inside a string";
    let r = r#"raw "quoted" HashMap"#;
    let c = 'x';
    let life: &'static str = s;
    for i in 0..10 {}
}
"##;
        let lexed = lex(src);
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(
            !idents.contains(&"HashMap"),
            "strings/comments must not leak"
        );
        assert!(idents.contains(&"for"));
        // `0..10` lexes as literal, dot, dot, literal.
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn allow_comment_parses() {
        let src = "// ps-lint: allow(D001): keys feed a membership set only\nlet x = 1;\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 1);
        assert_eq!(lexed.allows[0].rules, vec!["D001".to_owned()]);
        assert_eq!(lexed.allows[0].line, 1);
        assert!(lexed.malformed.is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let src = "// ps-lint: allow(D002)\nlet x = 1;\n";
        let lexed = lex(src);
        assert!(lexed.allows.is_empty());
        assert_eq!(lexed.malformed.len(), 1);
    }

    #[test]
    fn multi_rule_allow() {
        let src = "// ps-lint: allow(D001, D005): sorted upstream\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows[0].rules.len(), 2);
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let src = "/* outer /* inner */ still comment */ fn g() {}\nlet y = 2;\n";
        let lexed = lex(src);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
        let y = lexed.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!(y.line, 2);
    }
}
