//! A lightweight item parser over the token stream: enough structure to
//! build a workspace call graph, no more.
//!
//! The lexer ([`crate::lexer`]) strips comments and strings; this module
//! recovers the *item tree* from the flat token stream — `mod` nesting,
//! `impl`/`trait` blocks, `use` imports, and `fn` definitions with their
//! body token ranges and return types. It is deliberately not a full
//! Rust parser (the build is offline, so no `syn`): expressions stay
//! flat tokens, generics are skipped, and the handful of constructs the
//! semantic passes need are recovered by brace-tracking a single linear
//! walk. The output feeds [`crate::callgraph`].

use crate::lexer::{Lexed, Token, TokenKind};

/// One parsed function (or method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any (`HealReport` for
    /// `impl fmt::Display for HealReport`, trait name inside `trait`).
    pub self_ty: Option<String>,
    /// Module path inside the crate (file modules + inline `mod`s).
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body: `(open_brace, close_brace)`.
    /// `None` for bodiless trait method declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the declared return type mentions `Result` (directly or
    /// via a workspace `type` alias resolved by the call-graph builder).
    pub returns_result: bool,
    /// Raw identifiers of the return type (for alias resolution).
    pub return_idents: Vec<String>,
    /// Whether the fn carries `#[must_use]`.
    pub must_use: bool,
    /// Whether the fn is test code: `#[test]`, `#[cfg(test)]`, inside a
    /// `#[cfg(test)] mod`, or in a file under `tests/`.
    pub is_test: bool,
}

impl FnDef {
    /// Display name: `Type::name` for methods, `name` for free fns.
    pub fn qualified(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One `use` import: `alias` is the name visible in the module,
/// `path` the full segment list it stands for.
#[derive(Debug, Clone)]
pub struct Import {
    /// Module path the `use` sits in.
    pub module: Vec<String>,
    /// Locally visible name (last segment, or the `as` rename).
    pub alias: String,
    /// Full path segments (`["ps_net", "RouteTable"]`).
    pub path: Vec<String>,
}

/// One `type Alias = ...;` declaration (for `returns_result` through
/// aliases like `type PlanResult = Result<Plan, PlanError>;`).
#[derive(Debug, Clone)]
pub struct TypeAlias {
    /// Alias name.
    pub name: String,
    /// Whether the aliased type mentions `Result`.
    pub is_result: bool,
}

/// The item tree recovered from one file.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative path label.
    pub label: String,
    /// Crate the file belongs to (underscored package name).
    pub krate: String,
    /// Functions in source order.
    pub fns: Vec<FnDef>,
    /// `use` imports.
    pub imports: Vec<Import>,
    /// `type` aliases.
    pub aliases: Vec<TypeAlias>,
    /// Whether the whole file is test code (under a `tests/` root).
    pub test_file: bool,
}

/// What a `{` on the frame stack belongs to.
#[derive(Debug)]
enum Frame {
    /// Inline `mod name {`; `test` when `#[cfg(test)]`-gated.
    Module { test: bool },
    /// `impl`/`trait` block with the self type it defines methods on.
    Impl { prev_ty: Option<String> },
    /// A function body; index into `ParsedFile::fns`.
    Fn { idx: usize, prev_fn: Option<usize> },
    /// Any other brace (struct/enum/match/expr blocks).
    Other,
}

/// Derives the crate label and module path from a workspace-relative
/// path: `crates/core/src/heal.rs` → (`ps_core`, `["heal"]`).
pub fn path_context(label: &str) -> (String, Vec<String>, bool) {
    let parts: Vec<&str> = label.split(['/', '\\']).collect();
    let mut test_file = false;
    let (krate, rest): (String, &[&str]) = if parts.first() == Some(&"crates") && parts.len() > 2 {
        let pkg = format!("ps_{}", crate_dir_to_pkg(parts[1]));
        if parts.get(2) == Some(&"src") {
            (pkg, &parts[3..])
        } else {
            // crates/<x>/tests/... — integration tests of that crate.
            test_file = parts.get(2) == Some(&"tests");
            (pkg, &parts[3..])
        }
    } else if parts.first() == Some(&"src") {
        ("partitionable_services".to_owned(), &parts[1..])
    } else if parts.first() == Some(&"tests") {
        test_file = true;
        ("tests".to_owned(), &parts[1..])
    } else if parts.first() == Some(&"examples") {
        ("examples".to_owned(), &parts[1..])
    } else {
        ("unknown".to_owned(), &parts[..])
    };
    let mut module: Vec<String> = Vec::new();
    for (i, part) in rest.iter().enumerate() {
        let last = i + 1 == rest.len();
        if last {
            let stem = part.trim_end_matches(".rs");
            if stem != "lib" && stem != "main" && stem != "mod" {
                module.push(stem.to_owned());
            }
        } else {
            module.push((*part).to_owned());
        }
    }
    (krate, module, test_file)
}

/// `crates/<dir>` directory names to package-name suffixes where they
/// differ (`netmodel` builds `ps-net`).
fn crate_dir_to_pkg(dir: &str) -> &str {
    match dir {
        "netmodel" => "net",
        other => other,
    }
}

/// Parses the item tree out of a lexed file.
pub fn parse_file(label: &str, lexed: &Lexed) -> ParsedFile {
    let (krate, file_module, test_file) = path_context(label);
    let toks = &lexed.tokens;
    let mut out = ParsedFile {
        label: label.to_owned(),
        krate,
        fns: Vec::new(),
        imports: Vec::new(),
        aliases: Vec::new(),
        test_file,
    };

    let mut stack: Vec<Frame> = Vec::new();
    let mut module_path = file_module;
    let mut cur_ty: Option<String> = None;
    let mut cur_fn: Option<usize> = None;
    // Attributes seen since the last item boundary.
    let mut attr_test = false;
    let mut attr_must_use = false;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokenKind::Punct if t.is_punct('#') => {
                // Attribute: `#[...]` or `#![...]` — skip balanced, note
                // `test` / `cfg(test)` / `must_use`.
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_punct('!') {
                    j += 1;
                }
                if j < toks.len() && toks[j].is_punct('[') {
                    let mut depth = 0i32;
                    let start = j;
                    while j < toks.len() {
                        if toks[j].is_punct('[') {
                            depth += 1;
                        } else if toks[j].is_punct(']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    let body = &toks[start..j.min(toks.len())];
                    if body.iter().any(|t| t.is_ident("test")) {
                        attr_test = true;
                    }
                    if body.iter().any(|t| t.is_ident("must_use")) {
                        attr_must_use = true;
                    }
                    i = j + 1;
                    continue;
                }
                i += 1;
            }
            TokenKind::Ident if t.text == "mod" => {
                // `mod name {` opens an inline module; `mod name;` is a
                // file-module declaration (the file walk covers it).
                if i + 2 < toks.len()
                    && toks[i + 1].kind == TokenKind::Ident
                    && toks[i + 2].is_punct('{')
                {
                    module_path.push(toks[i + 1].text.clone());
                    stack.push(Frame::Module { test: attr_test });
                    attr_test = false;
                    attr_must_use = false;
                    i += 3;
                    continue;
                }
                attr_test = false;
                attr_must_use = false;
                i += 1;
            }
            TokenKind::Ident if t.text == "impl" || t.text == "trait" => {
                let is_trait = t.text == "trait";
                let Some((self_ty, open)) = parse_impl_header(toks, i, is_trait) else {
                    i += 1;
                    continue;
                };
                stack.push(Frame::Impl {
                    prev_ty: cur_ty.take(),
                });
                cur_ty = Some(self_ty);
                attr_test = false;
                attr_must_use = false;
                i = open + 1;
                continue;
            }
            TokenKind::Ident if t.text == "use" => {
                parse_use(toks, i, &module_path, &mut out.imports);
                while i < toks.len() && !toks[i].is_punct(';') {
                    i += 1;
                }
                attr_test = false;
                attr_must_use = false;
                i += 1;
            }
            TokenKind::Ident if t.text == "type" => {
                // `type Alias = ...;` (skip associated `type X;` decls).
                if i + 1 < toks.len() && toks[i + 1].kind == TokenKind::Ident {
                    let name = toks[i + 1].text.clone();
                    let mut j = i + 2;
                    let mut is_result = false;
                    while j < toks.len() && !toks[j].is_punct(';') {
                        if toks[j].is_ident("Result") {
                            is_result = true;
                        }
                        j += 1;
                    }
                    out.aliases.push(TypeAlias { name, is_result });
                    i = j + 1;
                } else {
                    i += 1;
                }
                attr_test = false;
                attr_must_use = false;
            }
            TokenKind::Ident if t.text == "fn" => {
                let in_test_scope = test_file
                    || attr_test
                    || stack
                        .iter()
                        .any(|f| matches!(f, Frame::Module { test: true }));
                if let Some((def, after)) = parse_fn(
                    toks,
                    i,
                    cur_ty.clone(),
                    &module_path,
                    in_test_scope,
                    attr_must_use,
                ) {
                    let has_body = def.body.is_some();
                    let body_open = def.body.map(|(o, _)| o);
                    out.fns.push(def);
                    let idx = out.fns.len() - 1;
                    if has_body {
                        stack.push(Frame::Fn {
                            idx,
                            prev_fn: cur_fn,
                        });
                        cur_fn = Some(idx);
                        i = body_open.unwrap_or(after) + 1;
                    } else {
                        i = after;
                    }
                } else {
                    i += 1;
                }
                attr_test = false;
                attr_must_use = false;
            }
            TokenKind::Punct if t.is_punct('{') => {
                stack.push(Frame::Other);
                i += 1;
            }
            TokenKind::Punct if t.is_punct('}') => {
                match stack.pop() {
                    Some(Frame::Module { .. }) => {
                        module_path.pop();
                    }
                    Some(Frame::Impl { prev_ty }) => {
                        cur_ty = prev_ty;
                    }
                    Some(Frame::Fn { idx, prev_fn }) => {
                        // Close the body range at this token.
                        if let Some((open, _)) = out.fns[idx].body {
                            out.fns[idx].body = Some((open, i));
                        }
                        cur_fn = prev_fn;
                    }
                    _ => {}
                }
                i += 1;
            }
            _ => {
                i += 1;
            }
        }
    }
    out
}

/// Parses an `impl`/`trait` header starting at `kw`, returning the self
/// type name and the index of the opening `{`.
fn parse_impl_header(toks: &[Token], kw: usize, is_trait: bool) -> Option<(String, usize)> {
    let mut j = kw + 1;
    // Skip `<...>` generics (angle depth; `<<`/`>>` never appear in
    // generic position here).
    if j < toks.len() && toks[j].is_punct('<') {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                depth += 1;
            } else if toks[j].is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    // Walk to the `{`, remembering the last identifier at angle-depth 0
    // before it; `for` resets (the self type follows it), `where` stops
    // collection. A `;` first means an `impl Trait for X;`-style stub or
    // associated decl — skip.
    let mut last_ident: Option<String> = None;
    let mut angle = 0i32;
    let mut in_where = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // The `>` of a `->` arrow (e.g. `where F: Fn() -> bool`)
            // does not close an angle bracket.
            if !(j > 0 && toks[j - 1].is_punct('-')) {
                angle -= 1;
            }
        } else if t.is_punct('{') && angle <= 0 {
            return last_ident.map(|ty| (ty, j));
        } else if t.is_punct(';') {
            return None;
        } else if t.kind == TokenKind::Ident && angle <= 0 && !in_where {
            if t.text == "for" && !is_trait {
                last_ident = None; // self type comes next
            } else if t.text == "where" {
                in_where = true; // bounds follow; keep what we have
            } else if t.text != "dyn" && t.text != "mut" && t.text != "const" {
                // Path segments overwrite, so `fmt::Display` ends at
                // `Display` and `&mut Type` at `Type`.
                last_ident = Some(t.text.clone());
            }
        }
        j += 1;
    }
    None
}

/// Parses a `fn` item starting at `kw`, returning the definition and the
/// token index *after* the signature (body `{` or trailing `;`).
fn parse_fn(
    toks: &[Token],
    kw: usize,
    self_ty: Option<String>,
    module: &[String],
    is_test: bool,
    must_use: bool,
) -> Option<(FnDef, usize)> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokenKind::Ident {
        return None;
    }
    let name = name_tok.text.clone();
    // Scan the signature: track () and <> depth; collect return-type
    // idents between `->` and the body `{` (or `;`).
    let mut j = kw + 2;
    let mut paren = 0i32;
    let mut angle = 0i32;
    let mut in_return = false;
    let mut return_idents = Vec::new();
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            TokenKind::Punct => {
                let c = t.text.as_bytes()[0] as char;
                match c {
                    '(' | '[' => paren += 1,
                    ')' | ']' => paren -= 1,
                    '<' if paren == 0 => angle += 1,
                    '>' if paren == 0 => {
                        // `->` arrow: previous token is `-`.
                        if j > 0 && toks[j - 1].is_punct('-') {
                            if paren == 0 && angle == 0 {
                                in_return = true;
                            }
                        } else {
                            angle -= 1;
                        }
                    }
                    '{' if paren == 0 && angle <= 0 => {
                        let def = FnDef {
                            name,
                            self_ty,
                            module: module.to_vec(),
                            line: toks[kw].line,
                            body: Some((j, j)), // close patched at pop
                            returns_result: return_idents.iter().any(|s| s == "Result"),
                            return_idents,
                            must_use,
                            is_test,
                        };
                        return Some((def, j));
                    }
                    ';' if paren == 0 && angle <= 0 => {
                        let def = FnDef {
                            name,
                            self_ty,
                            module: module.to_vec(),
                            line: toks[kw].line,
                            body: None,
                            returns_result: return_idents.iter().any(|s| s == "Result"),
                            return_idents,
                            must_use,
                            is_test,
                        };
                        return Some((def, j + 1));
                    }
                    _ => {}
                }
            }
            TokenKind::Ident if in_return => {
                if t.text == "where" {
                    in_return = false;
                } else {
                    return_idents.push(t.text.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Parses one `use` declaration starting at `kw` into flat imports,
/// expanding `{...}` groups and `as` renames. Glob imports are dropped
/// (the resolver falls back to same-crate lookup anyway).
fn parse_use(toks: &[Token], kw: usize, module: &[String], out: &mut Vec<Import>) {
    // Collect tokens to the `;`.
    let mut end = kw + 1;
    let mut depth = 0i32;
    while end < toks.len() {
        if toks[end].is_punct('{') {
            depth += 1;
        } else if toks[end].is_punct('}') {
            depth -= 1;
        } else if toks[end].is_punct(';') && depth <= 0 {
            break;
        }
        end += 1;
    }
    let body = &toks[kw + 1..end.min(toks.len())];
    parse_use_item(body, 0, &[], module, out);
}

/// Recursive descent over one `use` item (`path`, `path as x`,
/// `path::{item, item}`, `path::*`) starting at token `i` with the path
/// segments accumulated so far in `prefix`. Returns the index just past
/// the item (pointing at `,`, `}`, or the end).
fn parse_use_item(
    toks: &[Token],
    mut i: usize,
    prefix: &[String],
    module: &[String],
    out: &mut Vec<Import>,
) -> usize {
    let mut path: Vec<String> = prefix.to_vec();
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident {
            if t.text == "as" {
                if let Some(alias) = toks.get(i + 1) {
                    emit_import(alias.text.clone(), &path, module, out);
                }
                return i + 2;
            }
            path.push(t.text.clone());
            i += 1;
        } else if t.is_punct(':') {
            i += 1; // `::` arrives as two `:` tokens; both skipped
        } else if t.is_punct('{') {
            i += 1;
            loop {
                i = parse_use_item(toks, i, &path, module, out);
                match toks.get(i) {
                    Some(t) if t.is_punct(',') => i += 1,
                    Some(t) if t.is_punct('}') => return i + 1,
                    _ => return i.max(toks.len()),
                }
            }
        } else if t.is_punct('*') {
            return i + 1; // glob: dropped (resolver falls back per-crate)
        } else {
            break; // `,` or `}` — end of this item
        }
    }
    if path.len() > prefix.len() {
        // `use a::b::{self, c}`: `self` names the prefix itself.
        if path.last().is_some_and(|s| s == "self") {
            path.pop();
        }
        if let Some(alias) = path.last().cloned() {
            emit_import(alias, &path, module, out);
        }
    }
    i
}

/// Records one resolved import.
fn emit_import(alias: String, path: &[String], module: &[String], out: &mut Vec<Import>) {
    out.push(Import {
        module: module.to_vec(),
        alias,
        path: path.to_vec(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(label: &str, src: &str) -> ParsedFile {
        parse_file(label, &lex(src))
    }

    #[test]
    fn fn_and_impl_structure() {
        let src = r#"
            pub struct Healer { x: u32 }
            impl Healer {
                pub fn heal(&mut self) -> Result<u32, String> {
                    self.step();
                    Ok(self.x)
                }
                fn step(&mut self) {}
            }
            fn free() -> u32 { 7 }
        "#;
        let p = parse("crates/core/src/heal.rs", src);
        assert_eq!(p.krate, "ps_core");
        let names: Vec<String> = p.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, vec!["Healer::heal", "Healer::step", "free"]);
        assert!(p.fns[0].returns_result);
        assert!(!p.fns[2].returns_result);
        assert!(p.fns.iter().all(|f| !f.is_test));
        // Body ranges are real and nested correctly.
        let (o, c) = p.fns[0].body.unwrap();
        assert!(o < c);
    }

    #[test]
    fn trait_impls_and_test_mods() {
        let src = r#"
            impl fmt::Display for Report {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
            }
            trait Planner {
                fn plan(&self) -> u32;
                fn describe(&self) -> u32 { self.plan() }
            }
            #[cfg(test)]
            mod tests {
                #[test]
                fn check() { assert!(true); }
            }
        "#;
        let p = parse("crates/planner/src/lib.rs", src);
        let fmt = &p.fns[0];
        assert_eq!(fmt.self_ty.as_deref(), Some("Report"));
        assert!(fmt.returns_result); // fmt::Result is an alias but names Result
        let plan = &p.fns[1];
        assert_eq!(plan.self_ty.as_deref(), Some("Planner"));
        assert!(plan.body.is_none());
        let check = p.fns.iter().find(|f| f.name == "check").unwrap();
        assert!(check.is_test);
        assert_eq!(check.module, vec!["tests"]);
    }

    #[test]
    fn use_groups_and_renames() {
        let src = "use ps_net::{Network, route::{build as mk, RouteTable}};\nuse std::fmt;\n";
        let p = parse("crates/core/src/lib.rs", src);
        let mut pairs: Vec<(String, Vec<String>)> = p
            .imports
            .iter()
            .map(|i| (i.alias.clone(), i.path.clone()))
            .collect();
        pairs.sort();
        assert!(pairs.contains(&(
            "Network".to_owned(),
            vec!["ps_net".to_owned(), "Network".to_owned()]
        )));
        assert!(pairs
            .iter()
            .any(|(a, p)| a == "mk" && p.ends_with(&["route".to_owned(), "build".to_owned()])));
        assert!(pairs.iter().any(|(a, _)| a == "RouteTable"));
        assert!(pairs.iter().any(|(a, _)| a == "fmt"));
    }

    #[test]
    fn module_path_from_file_layout() {
        let (k, m, t) = path_context("crates/netmodel/src/route_table.rs");
        assert_eq!(k, "ps_net");
        assert_eq!(m, vec!["route_table"]);
        assert!(!t);
        let (k, m, t) = path_context("crates/spec/src/parser/xml.rs");
        assert_eq!(k, "ps_spec");
        assert_eq!(m, vec!["parser", "xml"]);
        assert!(!t);
        let (_, _, t) = path_context("tests/chaos_properties.rs");
        assert!(t);
        let (_, _, t) = path_context("crates/trace/tests/percentiles.rs");
        assert!(t);
    }

    #[test]
    fn type_alias_result_detection() {
        let src = "type PlanResult = Result<Plan, PlanError>;\ntype Id = u64;\n";
        let p = parse("crates/planner/src/lib.rs", src);
        assert_eq!(p.aliases.len(), 2);
        assert!(p.aliases[0].is_result);
        assert!(!p.aliases[1].is_result);
    }
}
