//! The determinism rule engine: D001–D005 over a lexed token stream.
//!
//! Every rule is a lexical heuristic — deliberately simple, tuned so
//! that the workspace's real hazards fire and ordinary ordered code does
//! not. Escapes are explicit: a `// ps-lint: allow(D00x): <reason>`
//! comment on the preceding (or same) line suppresses a finding, and the
//! suppression inventory is auditable via `ps-lint --list-allows`.
//!
//! | rule | hazard |
//! |------|--------|
//! | D001 | order-observable iteration over `HashMap`/`HashSet` |
//! | D002 | wall-clock reads (`Instant::now`, `SystemTime`, …) |
//! | D003 | unseeded randomness / ambient entropy |
//! | D004 | unordered parallel reduction (spawns, channels) |
//! | D005 | order-sensitive float accumulation over unordered iteration |

use crate::lexer::{lex, Allow, Token, TokenKind};
use std::collections::BTreeSet;

/// Iteration methods that expose element order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Idents that, appearing later in the same statement, certify the
/// iteration result is (re)ordered before anything can observe it.
const SORT_HINTS: &[&str] = &[
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_by_key",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Reduction terminators whose result does not depend on visit order
/// (modulo float non-associativity, which D005 handles separately).
const ORDER_INSENSITIVE: &[&str] = &[
    "sum", "product", "fold", "count", "len", "min", "max", "any", "all", "contains",
];

/// Unseeded-randomness / ambient-entropy identifiers.
const ENTROPY_IDENTS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "RandomState",
    "DefaultHasher",
    "OsRng",
    "getrandom",
];

/// One finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule ID (`D001`..`D005`, or `D000` for a malformed suppression).
    pub rule: &'static str,
    /// 1-based line.
    pub line: u32,
    /// Human explanation of the hazard at this site.
    pub message: String,
    /// Whether an `allow` comment covers it.
    pub suppressed: bool,
    /// For semantic rules (N001/P001/R001): the witness call chain,
    /// source/entry first. Empty for token rules.
    pub chain: Vec<String>,
}

/// A suppression found in a file, with usage accounting.
#[derive(Debug, Clone)]
pub struct AllowRecord {
    /// The parsed comment.
    pub allow: Allow,
    /// How many findings it silenced.
    pub used: usize,
}

/// Everything the engine learned about one file.
#[derive(Debug)]
pub struct FileReport {
    /// Path label (workspace-relative where possible).
    pub path: String,
    /// All findings, suppressed ones included, sorted by (line, rule).
    pub findings: Vec<Finding>,
    /// Suppression inventory for `--list-allows`.
    pub allows: Vec<AllowRecord>,
}

impl FileReport {
    /// Findings not silenced by an allow.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }
}

/// Runs the token rules over one file's source text. (The semantic
/// rules need the whole workspace; see [`crate::analyze_workspace`].)
pub fn scan_source(path: &str, source: &str) -> FileReport {
    let lexed = lex(source);
    let mut findings = token_findings(&lexed);
    findings.sort_by_key(|f| (f.line, f.rule));

    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut allows: Vec<AllowRecord> = lexed
        .allows
        .into_iter()
        .map(|allow| AllowRecord { allow, used: 0 })
        .collect();
    apply_allows(&mut findings, &mut allows, &token_lines);

    FileReport {
        path: path.to_owned(),
        findings,
        allows,
    }
}

/// Runs only the token rules over a pre-lexed file, without applying
/// suppressions — the workspace analyzer merges these with the semantic
/// findings and applies allows once over the union.
pub(crate) fn token_findings(lexed: &crate::lexer::Lexed) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let hash_idents = hash_typed_idents(toks);
    let float_idents = float_typed_idents(toks);
    let mut findings: Vec<Finding> = Vec::new();
    for (line, what) in &lexed.malformed {
        findings.push(Finding {
            rule: "D000",
            line: *line,
            message: format!("malformed ps-lint suppression: {what}"),
            suppressed: false,
            chain: Vec::new(),
        });
    }
    scan_iteration(toks, &hash_idents, &float_idents, &mut findings);
    scan_wallclock(toks, &mut findings);
    scan_entropy(toks, &mut findings);
    scan_parallel(toks, &mut findings);
    findings
}

/// Whether an allow comment on `allow_line` covers a finding on
/// `finding_line`: its own line, or the next token-bearing line after
/// it.
pub(crate) fn allow_covers(
    token_lines: &BTreeSet<u32>,
    allow_line: u32,
    finding_line: u32,
) -> bool {
    let next_code_line = token_lines
        .range(allow_line + 1..)
        .next()
        .copied()
        .unwrap_or(u32::MAX);
    finding_line == allow_line || finding_line == next_code_line
}

/// Applies suppressions over a finding set, accounting usage on each
/// allow. D000 (malformed suppression) cannot itself be suppressed.
pub(crate) fn apply_allows(
    findings: &mut [Finding],
    allows: &mut [AllowRecord],
    token_lines: &BTreeSet<u32>,
) {
    for finding in findings.iter_mut() {
        if finding.rule == "D000" {
            continue;
        }
        for rec in allows.iter_mut() {
            if allow_covers(token_lines, rec.allow.line, finding.line)
                && rec.allow.rules.iter().any(|r| r == finding.rule)
            {
                finding.suppressed = true;
                rec.used += 1;
                break;
            }
        }
    }
}

/// Collects identifiers whose declared type (or initializer) is a
/// `HashMap`/`HashSet`, including through `type` aliases defined in the
/// same file.
fn hash_typed_idents(toks: &[Token]) -> BTreeSet<String> {
    typed_idents(toks, &["HashMap", "HashSet"])
}

/// Collects identifiers whose declared type (or initializer) names one
/// of `type_names`, including through `type` aliases defined in the same
/// file. Shared by D001 (hash containers) and the semantic passes (map
/// indexing in P001).
pub(crate) fn typed_idents(toks: &[Token], type_names: &[&str]) -> BTreeSet<String> {
    let mut hash_types: BTreeSet<String> = type_names.iter().map(|s| s.to_string()).collect();

    // Alias pass: `type Alias = ... HashMap<...>;`
    for i in 0..toks.len() {
        if toks[i].is_ident("type") && i + 1 < toks.len() && toks[i + 1].kind == TokenKind::Ident {
            let alias = toks[i + 1].text.clone();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct(';') {
                if toks[j].kind == TokenKind::Ident && hash_types.contains(&toks[j].text) {
                    hash_types.insert(alias.clone());
                    break;
                }
                j += 1;
            }
        }
    }

    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident || !hash_types.contains(&toks[i].text) {
            continue;
        }
        // Walk back over type-position tokens to the `:` (declaration /
        // struct field / parameter) or `=` (inferred let binding), then
        // take the identifier just before it.
        let mut j = i;
        let mut hops = 0;
        while j > 0 && hops < 12 {
            j -= 1;
            hops += 1;
            let t = &toks[j];
            if t.is_punct(':') || t.is_punct('=') {
                // Skip a doubled colon (path separator): not a decl.
                if t.is_punct(':') && j > 0 && toks[j - 1].is_punct(':') {
                    j -= 1;
                    continue;
                }
                let mut k = j;
                while k > 0 {
                    k -= 1;
                    let p = &toks[k];
                    if p.is_ident("mut") || p.is_ident("ref") {
                        continue;
                    }
                    if p.kind == TokenKind::Ident
                        && !p.is_ident("let")
                        && !p.is_ident("static")
                        && !p.is_ident("const")
                    {
                        out.insert(p.text.clone());
                    }
                    break;
                }
                break;
            }
            // Tokens that may legitimately sit between the name and the
            // hash type: path segments, wrappers, references.
            let type_ish = matches!(t.kind, TokenKind::Ident | TokenKind::Lifetime)
                || "<>&(),".contains(t.text.as_str())
                || t.is_punct(':');
            if !type_ish {
                break;
            }
        }
    }
    out
}

/// Collects identifiers declared as floats (`: f64`, `: f32`, or
/// initialized from a float literal) — used by D005's accumulator check.
fn float_typed_idents(toks: &[Token]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        let is_float_ty = toks[i].is_ident("f64") || toks[i].is_ident("f32");
        let is_float_lit = toks[i].kind == TokenKind::Literal
            && toks[i].text.contains('.')
            && toks[i]
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_digit());
        if !is_float_ty && !is_float_lit {
            continue;
        }
        if i >= 2
            && (toks[i - 1].is_punct(':') || toks[i - 1].is_punct('='))
            && !(i >= 3 && toks[i - 2].is_punct(':'))
        {
            let mut k = i - 1;
            while k > 0 {
                k -= 1;
                let p = &toks[k];
                if p.is_ident("mut") {
                    continue;
                }
                if p.kind == TokenKind::Ident && !p.is_ident("let") {
                    out.insert(p.text.clone());
                }
                break;
            }
        }
    }
    out
}

/// D001 + D005: iteration over hash containers.
fn scan_iteration(
    toks: &[Token],
    hash_idents: &BTreeSet<String>,
    float_idents: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    // Method-chain form: `recv.iter()`, `recv.keys()`, ...
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if i + 1 >= toks.len() || !toks[i + 1].is_punct('(') || i == 0 || !toks[i - 1].is_punct('.')
        {
            continue;
        }
        let chain = receiver_chain(toks, i - 1);
        let Some(recv) = chain.iter().find(|id| hash_idents.contains(*id)) else {
            continue;
        };
        let trailing = statement_tail(toks, i);
        if contains_any(&trailing, SORT_HINTS) {
            continue;
        }
        if let Some(term) = trailing
            .iter()
            .find(|t| ORDER_INSENSITIVE.contains(&t.text.as_str()))
        {
            // Order-insensitive reduction — except float accumulation,
            // where addition order changes the low bits (D005).
            if is_float_reduction(&trailing, term) {
                findings.push(Finding {
                    rule: "D005",
                    line: t.line,
                    message: format!(
                        "float accumulation over unordered `{recv}` iteration — \
                         the sum depends on hash order; collect and sort first, \
                         or switch `{recv}` to a BTreeMap/BTreeSet"
                    ),
                    suppressed: false,
                    chain: Vec::new(),
                });
            }
            continue;
        }
        findings.push(Finding {
            rule: "D001",
            line: t.line,
            message: format!(
                "`.{}()` over HashMap/HashSet-typed `{recv}` leaks hash iteration \
                 order — sort the result, or switch `{recv}` to a BTreeMap/BTreeSet",
                t.text
            ),
            suppressed: false,
            chain: Vec::new(),
        });
    }

    // `for pat in expr` form (no iteration method present).
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("for") {
            i += 1;
            continue;
        }
        let Some(in_idx) = find_for_in(toks, i) else {
            i += 1;
            continue;
        };
        let Some(body_open) = find_loop_body(toks, in_idx) else {
            i += 1;
            continue;
        };
        let expr = &toks[in_idx + 1..body_open];
        let has_range = expr
            .windows(2)
            .any(|w| w[0].is_punct('.') && w[1].is_punct('.'));
        let hash_rooted = expr
            .iter()
            .find(|t| t.kind == TokenKind::Ident && hash_idents.contains(&t.text));
        let sorted = contains_any(expr, SORT_HINTS);
        if let Some(recv) = hash_rooted {
            if !has_range && !sorted {
                let has_iter_method = expr
                    .iter()
                    .any(|t| t.kind == TokenKind::Ident && ITER_METHODS.contains(&t.text.as_str()));
                if !has_iter_method {
                    findings.push(Finding {
                        rule: "D001",
                        line: toks[i].line,
                        message: format!(
                            "`for` over HashMap/HashSet-typed `{}` leaks hash iteration \
                             order — iterate a sorted copy or switch to a BTreeMap/BTreeSet",
                            recv.text
                        ),
                        suppressed: false,
                        chain: Vec::new(),
                    });
                }
                // D005: float accumulation inside the unordered loop body.
                if let Some(body_close) = matching_brace(toks, body_open) {
                    for b in body_open + 1..body_close.saturating_sub(1) {
                        if toks[b].is_punct('+') && toks[b + 1].is_punct('=') {
                            let target = receiver_chain(toks, b);
                            if target.iter().any(|id| float_idents.contains(id)) {
                                findings.push(Finding {
                                    rule: "D005",
                                    line: toks[b].line,
                                    message: format!(
                                        "float `+=` inside a loop over unordered `{}` — \
                                         accumulation order follows hash order",
                                        recv.text
                                    ),
                                    suppressed: false,
                                    chain: Vec::new(),
                                });
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// D002: wall-clock access.
fn scan_wallclock(toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
        {
            findings.push(Finding {
                rule: "D002",
                line: t.line,
                message: "`Instant::now()` outside the wall-clock accounting whitelist — \
                          use `ps_trace::wallclock::WallTimer` (recording-only) or virtual time"
                    .to_owned(),
                suppressed: false,
                chain: Vec::new(),
            });
        }
        if t.is_ident("SystemTime") || t.is_ident("UNIX_EPOCH") {
            findings.push(Finding {
                rule: "D002",
                line: t.line,
                message: format!(
                    "`{}` — the simulator runs on virtual time; wall-clock types are \
                     banned outside `ps_trace::wallclock`",
                    t.text
                ),
                suppressed: false,
                chain: Vec::new(),
            });
        }
    }
}

/// D003: unseeded randomness / ambient entropy.
fn scan_entropy(toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind == TokenKind::Ident && ENTROPY_IDENTS.contains(&t.text.as_str()) {
            findings.push(Finding {
                rule: "D003",
                line: t.line,
                message: format!(
                    "`{}` draws ambient entropy — every random stream must come from \
                     `ps_sim::Rng::seed_from_u64` (or a `derive`d child) so runs replay",
                    t.text
                ),
                suppressed: false,
                chain: Vec::new(),
            });
        }
        if t.is_ident("random")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks
                .get(i.wrapping_sub(3))
                .is_some_and(|t| t.is_ident("rand"))
        {
            findings.push(Finding {
                rule: "D003",
                line: t.line,
                message: "`rand::random` is unseeded — use `ps_sim::Rng`".to_owned(),
                suppressed: false,
                chain: Vec::new(),
            });
        }
    }
}

/// D004: thread spawns and channel construction (unordered reduction
/// hazards) — the merge order of concurrent producers must be proven
/// deterministic and annotated.
fn scan_parallel(toks: &[Token], findings: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let t = &toks[i];
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let is_decl = i > 0 && toks[i - 1].is_ident("fn");
        if is_decl || !called {
            continue;
        }
        if t.is_ident("spawn") {
            findings.push(Finding {
                rule: "D004",
                line: t.line,
                message: "thread spawn — if results are merged, the reduction must be \
                          slot-indexed or sorted (annotate with the proof if it is)"
                    .to_owned(),
                suppressed: false,
                chain: Vec::new(),
            });
        }
        if t.is_ident("channel") || t.is_ident("sync_channel") {
            findings.push(Finding {
                rule: "D004",
                line: t.line,
                message: "channel construction — receiver drain order tracks thread \
                          timing; collected results must be re-sorted deterministically"
                    .to_owned(),
                suppressed: false,
                chain: Vec::new(),
            });
        }
        if t.is_ident("par_iter") || t.is_ident("into_par_iter") || t.is_ident("par_bridge") {
            findings.push(Finding {
                rule: "D004",
                line: t.line,
                message: "parallel iterator — reduction order is nondeterministic".to_owned(),
                suppressed: false,
                chain: Vec::new(),
            });
        }
    }
}

/// Walks the dotted receiver chain left of token index `dot` (which must
/// be a `.` or the first token after the chain), returning every plain
/// identifier in it (`self.state.pending` → `[pending, state, self]`).
pub(crate) fn receiver_chain(toks: &[Token], dot: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = dot; // points at the `.` (or one past the chain end)
    loop {
        if j == 0 {
            break;
        }
        j -= 1;
        match toks[j].kind {
            TokenKind::Ident => {
                out.push(toks[j].text.clone());
                // Continue through `.` or `::` separators.
                if j >= 1 && toks[j - 1].is_punct('.') {
                    j -= 1;
                    continue;
                }
                if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                    j -= 2;
                    continue;
                }
                break;
            }
            TokenKind::Punct => {
                let c = toks[j].text.as_bytes()[0] as char;
                if c == ')' || c == ']' {
                    // Balance back over the call/index and keep walking.
                    let open = if c == ')' { '(' } else { '[' };
                    let mut depth = 1;
                    while j > 0 && depth > 0 {
                        j -= 1;
                        if toks[j].is_punct(c) {
                            depth += 1;
                        } else if toks[j].is_punct(open) {
                            depth -= 1;
                        }
                    }
                    continue;
                }
                break;
            }
            _ => break,
        }
    }
    out
}

/// The tokens from `from` to the end of the statement (`;` at depth 0,
/// an unbalanced closer, or a block opener), capped for safety.
fn statement_tail(toks: &[Token], from: usize) -> Vec<Token> {
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    for t in toks.iter().skip(from).take(300) {
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes()[0] as char {
                '(' | '[' => depth += 1,
                ')' | ']' => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ';' if depth == 0 => break,
                '{' | '}' if depth == 0 => break,
                _ => {}
            }
        }
        out.push(t.clone());
    }
    out
}

/// Whether any token is one of the given identifiers.
fn contains_any(toks: &[Token], idents: &[&str]) -> bool {
    toks.iter()
        .any(|t| t.kind == TokenKind::Ident && idents.contains(&t.text.as_str()))
}

/// Whether an order-insensitive terminator is actually a float
/// reduction: `sum::<f64>()`, `product::<f32>()`, or `fold(0.0, ...)`.
fn is_float_reduction(trailing: &[Token], term: &Token) -> bool {
    let pos = trailing
        .iter()
        .position(|t| std::ptr::eq(t, term))
        .unwrap_or(0);
    let next: Vec<&Token> = trailing.iter().skip(pos + 1).take(4).collect();
    if term.is_ident("sum") || term.is_ident("product") {
        return next.iter().any(|t| t.is_ident("f64") || t.is_ident("f32"));
    }
    if term.is_ident("fold") {
        return next.iter().any(|t| {
            t.kind == TokenKind::Literal
                && (t.text.contains('.') || t.text.contains("f6") || t.text.contains("f3"))
        });
    }
    false
}

/// Index of the `in` keyword of a `for` loop starting at `for_idx`.
fn find_for_in(toks: &[Token], for_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks.iter().enumerate().skip(for_idx + 1).take(80) {
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes()[0] as char {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' | ';' => return None, // not a for-in after all
                _ => {}
            }
        }
        if depth == 0 && t.is_ident("in") {
            return Some(off);
        }
    }
    None
}

/// Index of the loop-body `{` after the `in` expression.
fn find_loop_body(toks: &[Token], in_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks.iter().enumerate().skip(in_idx + 1).take(200) {
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes()[0] as char {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                '{' if depth == 0 => return Some(off),
                ';' if depth == 0 => return None,
                _ => {}
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (off, t) in toks.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes()[0] as char {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(off);
                    }
                }
                _ => {}
            }
        }
    }
    None
}
