//! ps-lint: zero-dependency determinism & protocol-invariant static
//! analysis for the partitionable-services workspace.
//!
//! The simulator's core promise is that a seeded run is byte-identical
//! across repeats (see DESIGN.md "Determinism contract"). That promise is
//! easy to break silently: one `HashMap` iteration feeding a trace, one
//! `Instant::now()` feeding a decision, one unseeded RNG — and replays
//! diverge in ways tests only catch probabilistically. `ps-lint` makes
//! those hazards a compile-gate instead.
//!
//! v2 is a two-layer analyzer:
//!
//! 1. **Token rules** (D001–D005, [`rules`]): per-file lexical hazards
//!    over the hand-rolled lexer ([`lexer`]).
//! 2. **Semantic rules** (N001/P001/R001, [`semantic`]): a lightweight
//!    item parser ([`parser`]) feeds a workspace call graph
//!    ([`callgraph`]); inter-procedural passes then prove flow
//!    properties — nondeterminism taint from source to sink, panic
//!    reachability from the heal/invoke hot path, silently dropped
//!    fallible results — and print the full witness call chain.
//!
//! There are **no built-in path whitelists**. Every legitimate exception
//! carries an inline `// ps-lint: allow(<RULE>): <reason>` comment on the
//! line above (or the same line), and `ps-lint --list-allows` prints the
//! complete exception inventory for review.

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod semantic;

pub use rules::{scan_source, AllowRecord, FileReport, Finding};

use callgraph::{FileUnit, Graph};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Directories scanned under the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path components that end a descent.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// Collects every `.rs` file under the workspace root, sorted, so scan
/// output (and therefore verify logs) is itself deterministic.
pub fn workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs(&root.join(sub), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Wall-clock microseconds spent in each analyzer stage, for the human
/// report and the verify-time budget check. Zeroed in stable-artifact
/// mode by the JSON writer, never by the analyzer.
#[derive(Debug, Default, Clone, Copy)]
pub struct StageTimings {
    /// Files analyzed.
    pub files: usize,
    /// Functions in the call graph.
    pub fns: usize,
    /// Read + lex + item-parse.
    pub read_parse_us: u64,
    /// Token rules D001–D005.
    pub token_rules_us: u64,
    /// Call-graph construction (symbol index + fact extraction +
    /// resolution).
    pub graph_us: u64,
    /// Semantic passes N001/P001/R001.
    pub passes_us: u64,
    /// End-to-end, including the merge/suppression step.
    pub total_us: u64,
}

/// The full two-layer analysis result.
pub struct WorkspaceAnalysis {
    /// Per-file reports in sorted path order, token and semantic
    /// findings merged, suppressions applied.
    pub reports: Vec<FileReport>,
    /// Per-stage wall times.
    pub timings: StageTimings,
}

/// The lint's own stopwatch. ps-lint analyzes its own source, so this
/// site carries the same discipline it enforces: the readings feed the
/// report's timing footer only, and the JSON writer zeroes them under
/// `PS_STABLE_ARTIFACTS=1`.
#[allow(clippy::disallowed_methods)]
fn stage_clock() -> std::time::Instant {
    // ps-lint: allow(D002, N001): lint-stage timing for the report footer and
    // verify wall-time budget; zeroed in stable mode, never in artifacts
    std::time::Instant::now()
}

/// Analyzes a set of already-loaded files (label, source). Exposed so
/// fixture tests can drive the full pipeline — including the semantic
/// passes with a custom P001 entry set — without touching the
/// filesystem.
pub fn analyze_sources(files: &[(String, String)], entries: &[&str]) -> WorkspaceAnalysis {
    let t_total = stage_clock();

    let t = stage_clock();
    let units: Vec<FileUnit> = files
        .iter()
        .map(|(label, source)| {
            let lexed = lexer::lex(source);
            let parsed = parser::parse_file(label, &lexed);
            FileUnit {
                label: label.clone(),
                lexed,
                parsed,
            }
        })
        .collect();
    let read_parse_us = t.elapsed().as_micros() as u64;

    let t = stage_clock();
    let mut per_file: Vec<Vec<Finding>> = units
        .iter()
        .map(|u| rules::token_findings(&u.lexed))
        .collect();
    let token_rules_us = t.elapsed().as_micros() as u64;

    let t = stage_clock();
    let graph = Graph::build(&units);
    let graph_us = t.elapsed().as_micros() as u64;

    let t = stage_clock();
    for sf in semantic::run_passes(&graph, &units, entries) {
        per_file[sf.file].push(sf.finding);
    }
    let passes_us = t.elapsed().as_micros() as u64;

    let reports: Vec<FileReport> = units
        .iter()
        .zip(per_file)
        .map(|(unit, mut findings)| {
            findings.sort_by_key(|f| (f.line, f.rule));
            let token_lines: BTreeSet<u32> = unit.lexed.tokens.iter().map(|t| t.line).collect();
            let mut allows: Vec<AllowRecord> = unit
                .lexed
                .allows
                .iter()
                .cloned()
                .map(|allow| AllowRecord { allow, used: 0 })
                .collect();
            rules::apply_allows(&mut findings, &mut allows, &token_lines);
            FileReport {
                path: unit.label.clone(),
                findings,
                allows,
            }
        })
        .collect();

    let timings = StageTimings {
        files: units.len(),
        fns: graph.nodes.len(),
        read_parse_us,
        token_rules_us,
        graph_us,
        passes_us,
        total_us: t_total.elapsed().as_micros() as u64,
    };
    WorkspaceAnalysis { reports, timings }
}

/// Runs the full two-layer analysis over the workspace rooted at
/// `root`. Reports come back in sorted path order; unreadable files are
/// skipped.
pub fn analyze_workspace(root: &Path) -> WorkspaceAnalysis {
    let mut files: Vec<(String, String)> = Vec::new();
    for path in workspace_rs_files(root) {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        files.push((label, source));
    }
    analyze_sources(&files, &[])
}

/// Scans the whole workspace: [`analyze_workspace`] without the
/// timings. Kept as the stable entry point for tests and callers that
/// only need the reports.
pub fn scan_workspace(root: &Path) -> Vec<FileReport> {
    analyze_workspace(root).reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_reports_and_suppresses() {
        let src = r#"
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
                m.keys().copied().collect()
            }
        "#;
        let report = scan_source("t.rs", src);
        let hits: Vec<_> = report.unsuppressed().collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "D001");
    }

    #[test]
    fn allow_comment_silences_next_code_line() {
        let src = r#"
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
                // ps-lint: allow(D001): output feeds a set-equality check only
                m.keys().copied().collect()
            }
        "#;
        let report = scan_source("t.rs", src);
        assert_eq!(report.unsuppressed().count(), 0);
        assert_eq!(report.allows.len(), 1);
        assert_eq!(report.allows[0].used, 1);
    }

    #[test]
    fn analyze_sources_merges_semantic_findings() {
        let files = vec![(
            "crates/x/src/a.rs".to_owned(),
            r#"
            fn fallible() -> Result<u32, String> { Ok(1) }
            fn go() {
                let _ = fallible();
            }
            "#
            .to_owned(),
        )];
        let analysis = analyze_sources(&files, &["go"]);
        let rules: Vec<&str> = analysis.reports[0].unsuppressed().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["R001"]);
        assert_eq!(analysis.timings.files, 1);
        assert_eq!(analysis.timings.fns, 2);
    }
}
