//! ps-lint: zero-dependency determinism & protocol-invariant static
//! analysis for the partitionable-services workspace.
//!
//! The simulator's core promise is that a seeded run is byte-identical
//! across repeats (see DESIGN.md "Determinism contract"). That promise is
//! easy to break silently: one `HashMap` iteration feeding a trace, one
//! `Instant::now()` feeding a decision, one unseeded RNG — and replays
//! diverge in ways tests only catch probabilistically. `ps-lint` makes
//! those hazards a compile-gate instead: a hand-rolled lexer
//! ([`lexer`]) plus a rule engine ([`rules`]) walk every `.rs` file and
//! fail `scripts/verify.sh` on any unsuppressed finding.
//!
//! There are **no built-in path whitelists**. Every legitimate exception
//! carries an inline `// ps-lint: allow(D00x): <reason>` comment on the
//! line above (or the same line), and `ps-lint --list-allows` prints the
//! complete exception inventory for review.

pub mod lexer;
pub mod rules;

pub use rules::{scan_source, AllowRecord, FileReport, Finding};

use std::path::{Path, PathBuf};

/// Directories scanned under the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path components that end a descent.
const SKIP_DIRS: &[&str] = &["target", "fixtures", ".git"];

/// Collects every `.rs` file under the workspace root, sorted, so scan
/// output (and therefore verify logs) is itself deterministic.
pub fn workspace_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        collect_rs(&root.join(sub), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Scans the whole workspace rooted at `root`. Reports come back in
/// sorted path order; unreadable files are skipped.
pub fn scan_workspace(root: &Path) -> Vec<FileReport> {
    let mut reports = Vec::new();
    for path in workspace_rs_files(root) {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        reports.push(scan_source(&label, &source));
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_source_reports_and_suppresses() {
        let src = r#"
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
                m.keys().copied().collect()
            }
        "#;
        let report = scan_source("t.rs", src);
        let hits: Vec<_> = report.unsuppressed().collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "D001");
    }

    #[test]
    fn allow_comment_silences_next_code_line() {
        let src = r#"
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u32>) -> Vec<u32> {
                // ps-lint: allow(D001): output feeds a set-equality check only
                m.keys().copied().collect()
            }
        "#;
        let report = scan_source("t.rs", src);
        assert_eq!(report.unsuppressed().count(), 0);
        assert_eq!(report.allows.len(), 1);
        assert_eq!(report.allows[0].used, 1);
    }
}
