//! The workspace call graph: symbol resolution over the parsed item
//! tree plus per-function facts (call sites, panic sites, entropy
//! sources, dropped results) for the semantic passes.
//!
//! Resolution is deliberately conservative in both directions:
//!
//! * **Precise where Rust is precise.** Plain calls resolve only through
//!   the caller's module scope and `use` imports; `self.m()` resolves
//!   only inside the surrounding `impl`'s type; `Type::m()` resolves by
//!   type name. No global name soup.
//! * **Under-approximating on ambient method names.** A non-`self`
//!   method call resolves to every workspace method of that name —
//!   *except* names on the std-prelude deny list ([`STD_METHODS`]),
//!   where a workspace match is overwhelmingly more likely to be a
//!   false edge (`.len()`, `.get()`, …) than a real one. The passes
//!   document this: a hot-path helper should not be named `get`.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::parser::{FnDef, ParsedFile};
use crate::rules::{receiver_chain, typed_idents};
use std::collections::{BTreeMap, BTreeSet};

/// Method names so common on std types that name-only resolution to a
/// workspace method would be noise. Calls to these resolve to no edge
/// unless made through `self` or a `Type::name` path.
const STD_METHODS: &[&str] = &[
    "abs",
    "all",
    "any",
    "as_bytes",
    "as_deref",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "borrow",
    "borrow_mut",
    "ceil",
    "chain",
    "chars",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "endswith",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into_iter",
    "into_keys",
    "into_values",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "ln",
    "log2",
    "map",
    "map_err",
    "map_or",
    "max",
    "min",
    "next",
    "nth",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partition",
    "peekable",
    "pop",
    "position",
    "powi",
    "powf",
    "push",
    "push_str",
    "range",
    "remove",
    "repeat",
    "replace",
    "resize",
    "retain",
    "rev",
    "reverse",
    "round",
    "rsplit",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "skip",
    "skip_while",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "split_at",
    "split_off",
    "split_whitespace",
    "sqrt",
    "starts_with",
    "step_by",
    "sum",
    "swap",
    "take",
    "take_while",
    "then",
    "then_some",
    "to_lowercase",
    "to_owned",
    "to_string",
    "to_uppercase",
    "to_vec",
    "trim",
    "truncate",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "windows",
    "wrapping_add",
    "wrapping_mul",
    "wrapping_sub",
    "zip",
];

/// Keywords that look like plain calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "break", "continue", "as", "in", "let", "mut",
    "ref", "move", "async", "await", "fn", "impl", "else", "unsafe", "dyn", "where", "pub", "use",
    "mod", "type", "struct", "enum", "trait", "const", "static", "box", "yield",
];

/// Panic-family macros (P001).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Formatting macros whose `Result` is conventionally dropped when the
/// target is a `String` (`fmt::Write` to a `String` cannot fail). R001
/// exempts `let _ =` drops of these by design.
const FMT_MACROS: &[&str] = &[
    "write", "writeln", "print", "println", "eprint", "eprintln", "format",
];

/// Std methods that return a `Result`/`LockResult` worth not dropping.
const STD_FALLIBLE: &[&str] = &[
    "send", "try_send", "recv", "try_recv", "lock", "try_lock", "flush",
];

/// How a call site names its callee.
#[derive(Debug, Clone)]
pub enum CallKind {
    /// `name(...)` — resolved through module scope and imports.
    Plain(String),
    /// `recv.name(...)` — `on_self` when the receiver chain roots at
    /// `self`.
    Method { name: String, on_self: bool },
    /// `a::b::name(...)` — full segment list, `name` last.
    Path(Vec<String>),
}

impl CallKind {
    /// The bare callee name.
    pub fn name(&self) -> &str {
        match self {
            CallKind::Plain(n) => n,
            CallKind::Method { name, .. } => name,
            CallKind::Path(segs) => segs.last().map(String::as_str).unwrap_or(""),
        }
    }
}

/// One call site inside a function body, with its resolved candidates.
#[derive(Debug, Clone)]
pub struct ResolvedCall {
    /// 1-based line.
    pub line: u32,
    /// Token index of the callee name (ties R001 drop spans to calls).
    pub tok: usize,
    /// Syntactic shape.
    pub kind: CallKind,
    /// Candidate callees in the workspace (node indices). Empty for
    /// std/external calls.
    pub targets: Vec<usize>,
    /// Whether this is a statement-position call whose value is
    /// discarded (`foo(x);` at block level).
    pub bare_stmt: bool,
}

/// A site that can panic at runtime (P001).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// 1-based line.
    pub line: u32,
    /// Human label: `.unwrap()`, `panic!`, `map index pending[...]`.
    pub what: String,
}

/// A nondeterminism source read (N001).
#[derive(Debug, Clone)]
pub struct SourceSite {
    /// 1-based line.
    pub line: u32,
    /// Source label: `Instant::now`, `thread_rng`, ….
    pub what: String,
}

/// A `let _ = …;` discard (R001), with the token span of its RHS.
#[derive(Debug, Clone)]
pub struct DropSite {
    /// 1-based line of the `let`.
    pub line: u32,
    /// Token range of the discarded expression (exclusive end).
    pub span: (usize, usize),
    /// A fmt-family macro (`write!`/`writeln!`/…) appears in the span.
    pub fmt_macro: bool,
    /// Std fallible method names (`lock`, `send`, …) called in the span.
    pub std_fallible: Vec<String>,
}

/// One function node: parsed definition plus extracted facts.
#[derive(Debug)]
pub struct Node {
    /// The parsed definition.
    pub def: FnDef,
    /// Index of the owning file in the unit list.
    pub file: usize,
    /// Workspace-relative path label of the owning file.
    pub label: String,
    /// Owning crate (package-name form, e.g. `ps_net`).
    pub krate: String,
    /// Calls made by the body, resolution included.
    pub calls: Vec<ResolvedCall>,
    /// Panic-capable sites in the body.
    pub panics: Vec<PanicSite>,
    /// Nondeterminism sources read by the body.
    pub sources: Vec<SourceSite>,
    /// Artifact-file writes in the body (`fs::write`, `File::create`) —
    /// N001 sinks by fact.
    pub artifacts: Vec<SourceSite>,
    /// `let _ =` discards in the body.
    pub drops: Vec<DropSite>,
    /// Whether the return type names `Result` (directly or via a
    /// workspace `type` alias).
    pub returns_result: bool,
}

impl Node {
    /// Display name: `Type::name` or `name`.
    pub fn qualified(&self) -> String {
        self.def.qualified()
    }
}

/// One lexed+parsed file, the unit the graph builds over.
pub struct FileUnit {
    /// Workspace-relative path label.
    pub label: String,
    /// Lexed tokens + allows.
    pub lexed: Lexed,
    /// Parsed item tree.
    pub parsed: ParsedFile,
}

/// The workspace call graph.
pub struct Graph {
    /// All functions, files in scan order, source order within a file.
    pub nodes: Vec<Node>,
    /// Forward edges: `edges[f]` = (callee node, call line) pairs.
    pub edges: Vec<Vec<(usize, u32)>>,
    /// Reverse edges: `redges[g]` = (caller node, call line) pairs.
    pub redges: Vec<Vec<(usize, u32)>>,
}

impl Graph {
    /// Builds the graph over the given files: indexes symbols, extracts
    /// per-function facts, resolves every call site.
    pub fn build(units: &[FileUnit]) -> Graph {
        // Pass 0: workspace-wide Result aliases (fmt::Result etc. come
        // from std, but local `type PlanResult = Result<…>` counts too).
        let mut result_aliases: BTreeSet<String> = BTreeSet::new();
        result_aliases.insert("Result".to_owned());
        for unit in units {
            for alias in &unit.parsed.aliases {
                if alias.is_result {
                    result_aliases.insert(alias.name.clone());
                }
            }
        }

        // Pass 1: the node table.
        let mut nodes: Vec<Node> = Vec::new();
        for (file, unit) in units.iter().enumerate() {
            for def in &unit.parsed.fns {
                let returns_result = def.returns_result
                    || def.return_idents.iter().any(|i| result_aliases.contains(i));
                nodes.push(Node {
                    def: def.clone(),
                    file,
                    label: unit.label.clone(),
                    krate: unit.parsed.krate.clone(),
                    calls: Vec::new(),
                    panics: Vec::new(),
                    sources: Vec::new(),
                    artifacts: Vec::new(),
                    drops: Vec::new(),
                    returns_result,
                });
            }
        }

        let index = SymbolIndex::build(&nodes);

        // Pass 2: facts + resolution, file by file.
        let mut cursor = 0usize;
        for unit in units {
            let count = unit.parsed.fns.len();
            extract_file_facts(unit, &mut nodes[cursor..cursor + count], cursor, &index);
            cursor += count;
        }

        // Pass 3: edge lists.
        let mut edges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes.len()];
        let mut redges: Vec<Vec<(usize, u32)>> = vec![Vec::new(); nodes.len()];
        for (from, node) in nodes.iter().enumerate() {
            for call in &node.calls {
                for &to in &call.targets {
                    edges[from].push((to, call.line));
                    redges[to].push((from, call.line));
                }
            }
        }
        Graph {
            nodes,
            edges,
            redges,
        }
    }

    /// Nodes matching a qualified name: `Type::name` or a bare `name`
    /// (free functions only for the bare form).
    pub fn find(&self, qualified: &str) -> Vec<usize> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.qualified() == qualified {
                out.push(i);
            }
        }
        out
    }
}

/// Symbol index for resolution.
struct SymbolIndex {
    /// Free functions by (crate, module path joined with `::`, name).
    free: BTreeMap<(String, String, String), Vec<usize>>,
    /// Free functions by (crate, name) — same-crate fallback when the
    /// name is unique (covers glob imports and re-exports).
    free_in_crate: BTreeMap<(String, String), Vec<usize>>,
    /// Methods by (self type, name).
    methods: BTreeMap<(String, String), Vec<usize>>,
    /// Methods by bare name (non-`self` method-call fallback).
    methods_by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolIndex {
    fn build(nodes: &[Node]) -> SymbolIndex {
        let mut free = BTreeMap::new();
        let mut free_in_crate = BTreeMap::new();
        let mut methods = BTreeMap::new();
        let mut methods_by_name = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            let krate = node.krate.clone();
            match &node.def.self_ty {
                Some(ty) => {
                    methods
                        .entry((ty.clone(), node.def.name.clone()))
                        .or_insert_with(Vec::new)
                        .push(i);
                    methods_by_name
                        .entry(node.def.name.clone())
                        .or_insert_with(Vec::new)
                        .push(i);
                }
                None => {
                    free.entry((
                        krate.clone(),
                        node.def.module.join("::"),
                        node.def.name.clone(),
                    ))
                    .or_insert_with(Vec::new)
                    .push(i);
                    free_in_crate
                        .entry((krate, node.def.name.clone()))
                        .or_insert_with(Vec::new)
                        .push(i);
                }
            }
        }
        SymbolIndex {
            free,
            free_in_crate,
            methods,
            methods_by_name,
        }
    }

    /// Resolves one call in the context of `caller`.
    fn resolve(
        &self,
        kind: &CallKind,
        caller: &FnDef,
        krate: &str,
        imports: &ImportMap,
    ) -> Vec<usize> {
        match kind {
            CallKind::Method { name, on_self } => {
                if *on_self {
                    if let Some(ty) = &caller.self_ty {
                        if let Some(hits) = self.methods.get(&(ty.clone(), name.clone())) {
                            return hits.clone();
                        }
                    }
                    // `self.helper()` with no impl-local match: fall
                    // through to the by-name lookup (trait methods
                    // implemented in a different impl block).
                }
                if STD_METHODS.contains(&name.as_str()) {
                    return Vec::new();
                }
                self.methods_by_name.get(name).cloned().unwrap_or_default()
            }
            CallKind::Path(segs) => self.resolve_path(segs, caller, krate, imports),
            CallKind::Plain(name) => {
                // Module scope first.
                if let Some(hits) =
                    self.free
                        .get(&(krate.to_owned(), caller.module.join("::"), name.clone()))
                {
                    return hits.clone();
                }
                // Imports next.
                if let Some(path) = imports.get(name) {
                    let resolved = self.resolve_path(path, caller, krate, imports);
                    if !resolved.is_empty() {
                        return resolved;
                    }
                }
                // Same-crate unique fallback.
                if let Some(hits) = self.free_in_crate.get(&(krate.to_owned(), name.clone())) {
                    if hits.len() == 1 {
                        return hits.clone();
                    }
                }
                Vec::new()
            }
        }
    }

    /// Resolves a `a::b::name` path call.
    fn resolve_path(
        &self,
        segs: &[String],
        caller: &FnDef,
        krate: &str,
        imports: &ImportMap,
    ) -> Vec<usize> {
        if segs.is_empty() {
            return Vec::new();
        }
        // Expand a leading import alias (`use ps_net::route_table;` then
        // `route_table::build(...)`).
        let mut segs: Vec<String> = segs.to_vec();
        if segs.len() >= 2 {
            if let Some(path) = imports.get(&segs[0]) {
                let mut expanded = path.clone();
                expanded.extend(segs[1..].iter().cloned());
                segs = expanded;
            }
        }
        let name = segs.last().cloned().unwrap_or_default();
        if segs.len() == 1 {
            return self.resolve(&CallKind::Plain(name), caller, krate, imports);
        }
        let qualifier = &segs[segs.len() - 2];

        // `Self::name` → current impl type.
        let qualifier = if qualifier == "Self" {
            match &caller.self_ty {
                Some(ty) => ty.clone(),
                None => return Vec::new(),
            }
        } else {
            qualifier.clone()
        };

        // Type-qualified method / associated fn.
        if let Some(hits) = self.methods.get(&(qualifier.clone(), name.clone())) {
            return hits.clone();
        }

        // Module-qualified free fn: crate-local forms first.
        let target_crate = if segs[0] == "crate" || segs[0] == "self" || segs[0] == "super" {
            krate.to_owned()
        } else if segs[0].starts_with("ps_") || segs[0] == "partitionable_services" {
            segs[0].clone()
        } else {
            krate.to_owned()
        };
        // Match free fns whose module path *ends with* the qualifier
        // segments (minus crate-ish leaders).
        let mod_segs: Vec<&String> = segs[..segs.len() - 1]
            .iter()
            .filter(|s| {
                *s != "crate"
                    && *s != "self"
                    && *s != "super"
                    && !s.starts_with("ps_")
                    && *s != "partitionable_services"
            })
            .collect();
        let mut out = Vec::new();
        for ((k, module, n), hits) in &self.free {
            if *n != name || *k != target_crate {
                continue;
            }
            let module_segs: Vec<&str> = if module.is_empty() {
                Vec::new()
            } else {
                module.split("::").collect()
            };
            let matches = mod_segs.is_empty()
                || (module_segs.len() >= mod_segs.len()
                    && module_segs[module_segs.len() - mod_segs.len()..]
                        .iter()
                        .zip(mod_segs.iter())
                        .all(|(a, b)| *a == b.as_str()));
            if matches {
                out.extend_from_slice(hits);
            }
        }
        // A capitalized qualifier that matched no workspace (type, name)
        // pair names a std or dependency type; resolving by bare name
        // would fabricate cross-type edges, so leave it external.
        out
    }
}

/// Per-file alias → path import map.
type ImportMap = BTreeMap<String, Vec<String>>;

/// Extracts facts for every fn of one file and resolves their calls.
/// `base` is the node index of the file's first fn.
fn extract_file_facts(unit: &FileUnit, nodes: &mut [Node], base: usize, index: &SymbolIndex) {
    let toks = &unit.lexed.tokens;
    let map_idents = typed_idents(toks, &["HashMap", "BTreeMap"]);
    let krate = unit.parsed.krate.clone();

    let imports: ImportMap = unit
        .parsed
        .imports
        .iter()
        .map(|i| (i.alias.clone(), i.path.clone()))
        .collect();

    // Body ranges, for innermost-fn attribution.
    let ranges: Vec<Option<(usize, usize)>> = nodes.iter().map(|n| n.def.body).collect();

    for fi in 0..nodes.len() {
        let Some((open, close)) = ranges[fi] else {
            continue;
        };
        // Child ranges strictly inside this body: skip them during the
        // walk so nested fns own their sites.
        let children: Vec<(usize, usize)> = ranges
            .iter()
            .enumerate()
            .filter_map(|(gi, r)| r.filter(|&(o, c)| gi != fi && o > open && c < close))
            .collect();

        let mut facts = FileFacts::default();
        let mut i = open + 1;
        while i < close {
            if let Some(&(_, cend)) = children.iter().find(|&&(co, _)| co == i) {
                // i is the open brace of a nested fn's body: skip past
                // it so the nested fn owns its own sites. (Signature
                // tokens are still walked; the `fn`-keyword guard keeps
                // the nested name from counting as a call.)
                i = cend + 1;
                continue;
            }
            scan_token(toks, i, close, &map_idents, &mut facts);
            i += 1;
        }

        let def = nodes[fi].def.clone();
        let calls: Vec<ResolvedCall> = facts
            .calls
            .into_iter()
            .map(|(tok, line, kind, bare_stmt)| {
                let targets = index.resolve(&kind, &def, &krate, &imports);
                // Self-recursion edges add nothing to reachability and
                // muddy chains.
                let targets: Vec<usize> = targets.into_iter().filter(|&t| t != base + fi).collect();
                ResolvedCall {
                    line,
                    tok,
                    kind,
                    targets,
                    bare_stmt,
                }
            })
            .collect();
        let node = &mut nodes[fi];
        node.panics = facts.panics;
        node.sources = facts.sources;
        node.artifacts = facts.artifacts;
        node.drops = facts.drops;
        node.calls = calls;
    }
}

/// Facts accumulated over one body walk.
#[derive(Default)]
struct FileFacts {
    calls: Vec<(usize, u32, CallKind, bool)>,
    panics: Vec<PanicSite>,
    sources: Vec<SourceSite>,
    artifacts: Vec<SourceSite>,
    drops: Vec<DropSite>,
}

/// Inspects the token at `i` inside a body ending at `close`.
fn scan_token(
    toks: &[Token],
    i: usize,
    close: usize,
    map_idents: &BTreeSet<String>,
    facts: &mut FileFacts,
) {
    let t = &toks[i];
    if t.kind != TokenKind::Ident {
        return;
    }
    let next = toks.get(i + 1);

    // `let _ = …;` discard.
    if t.text == "let"
        && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
        && toks.get(i + 2).is_some_and(|t| t.is_punct('='))
    {
        let start = i + 3;
        let mut j = start;
        let mut depth = 0i32;
        while j < close {
            let tj = &toks[j];
            if tj.kind == TokenKind::Punct {
                match tj.text.as_bytes()[0] as char {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    ';' if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let span = &toks[start..j.min(close)];
        let fmt_macro = span.windows(2).any(|w| {
            w[0].kind == TokenKind::Ident
                && FMT_MACROS.contains(&w[0].text.as_str())
                && w[1].is_punct('!')
        });
        let std_fallible: Vec<String> = span
            .windows(2)
            .filter(|w| {
                w[0].kind == TokenKind::Ident
                    && STD_FALLIBLE.contains(&w[0].text.as_str())
                    && w[1].is_punct('(')
            })
            .map(|w| w[0].text.clone())
            .collect();
        facts.drops.push(DropSite {
            line: t.line,
            span: (start, j.min(close)),
            fmt_macro,
            std_fallible,
        });
        return;
    }

    // Macro call: `name!(…)` / `name![…]` / `name!{…}`.
    if next.is_some_and(|n| n.is_punct('!'))
        && toks
            .get(i + 2)
            .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
    {
        if PANIC_MACROS.contains(&t.text.as_str()) {
            facts.panics.push(PanicSite {
                line: t.line,
                what: format!("{}!", t.text),
            });
        }
        return;
    }

    // Map indexing: `pending[…]` / `state.pending[…]` where the indexed
    // ident is HashMap/BTreeMap-typed (panics on a missing key).
    if next.is_some_and(|n| n.is_punct('[')) && map_idents.contains(&t.text) {
        facts.panics.push(PanicSite {
            line: t.line,
            what: format!("map index `{}[…]`", t.text),
        });
        return;
    }

    // Nondeterminism sources.
    if t.text == "Instant"
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
    {
        facts.sources.push(SourceSite {
            line: t.line,
            what: "Instant::now".to_owned(),
        });
    }
    if t.text == "SystemTime" || t.text == "UNIX_EPOCH" {
        facts.sources.push(SourceSite {
            line: t.line,
            what: t.text.clone(),
        });
    }
    if matches!(
        t.text.as_str(),
        "thread_rng" | "from_entropy" | "RandomState" | "DefaultHasher" | "OsRng" | "getrandom"
    ) {
        facts.sources.push(SourceSite {
            line: t.line,
            what: t.text.clone(),
        });
    }

    // Artifact writes: `fs::write(...)` / `File::create(...)`.
    let path_call = |a: &str, b: &str| -> bool {
        t.text == a
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident(b))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
    };
    if path_call("fs", "write") || path_call("File", "create") {
        facts.artifacts.push(SourceSite {
            line: t.line,
            what: format!("{}::{}", t.text, toks[i + 3].text),
        });
    }

    // Call sites: ident followed by `(`.
    if !next.is_some_and(|n| n.is_punct('(')) {
        return;
    }
    let prev = i.checked_sub(1).map(|p| &toks[p]);
    if prev.is_some_and(|p| p.is_ident("fn")) {
        return; // nested fn definition's name
    }
    if CALL_KEYWORDS.contains(&t.text.as_str()) {
        return;
    }

    let name = t.text.clone();

    // Panic-family methods.
    let is_method = prev.is_some_and(|p| p.is_punct('.'));
    if is_method
        && matches!(
            name.as_str(),
            "unwrap" | "expect" | "unwrap_err" | "expect_err"
        )
    {
        facts.panics.push(PanicSite {
            line: t.line,
            what: format!(".{name}()"),
        });
        return;
    }

    let kind = if is_method {
        let chain = receiver_chain(toks, i - 1);
        let on_self = chain.last().is_some_and(|id| id == "self");
        CallKind::Method { name, on_self }
    } else if prev.is_some_and(|p| p.is_punct(':')) && i >= 2 && toks[i - 2].is_punct(':') {
        // Walk the `::`-separated path backwards.
        let mut segs = vec![name];
        let mut j = i - 2;
        loop {
            if j == 0 {
                break;
            }
            let seg = &toks[j - 1];
            if seg.kind != TokenKind::Ident {
                break;
            }
            segs.push(seg.text.clone());
            if j >= 3 && toks[j - 2].is_punct(':') && toks[j - 3].is_punct(':') {
                j -= 3;
            } else {
                break;
            }
        }
        segs.reverse();
        CallKind::Path(segs)
    } else {
        CallKind::Plain(name)
    };

    // Statement-position discard: the call's `)` is followed by `;` and
    // the chain starts at a statement boundary.
    let bare_stmt = is_bare_statement(toks, i, close);
    facts.calls.push((i, t.line, kind, bare_stmt));
}

/// Whether the call at token `i` (ident, `(` next) is a whole statement
/// whose value is dropped: `foo(a);` / `x.foo(a);` at block level.
fn is_bare_statement(toks: &[Token], i: usize, close: usize) -> bool {
    // Forward: matching `)` then `;`.
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < close {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    if !toks.get(j + 1).is_some_and(|t| t.is_punct(';')) {
        return false;
    }
    // Backward: walk the receiver chain to its start, then require a
    // statement boundary before it.
    let mut k = i;
    loop {
        if k == 0 {
            return true;
        }
        let p = &toks[k - 1];
        if p.is_punct('.') {
            // continue through the chain: skip the expression before the
            // dot (ident, or a balanced call/index).
            if k >= 2 {
                let q = &toks[k - 2];
                if q.kind == TokenKind::Ident {
                    k -= 2;
                    continue;
                }
                if q.is_punct(')') || q.is_punct(']') {
                    let open = if q.is_punct(')') { '(' } else { '[' };
                    let closec = q.text.as_bytes()[0] as char;
                    let mut depth = 1i32;
                    let mut m = k - 2;
                    while m > 0 && depth > 0 {
                        m -= 1;
                        if toks[m].is_punct(closec) {
                            depth += 1;
                        } else if toks[m].is_punct(open) {
                            depth -= 1;
                        }
                    }
                    k = m;
                    continue;
                }
            }
            return false;
        }
        if p.is_punct(':') && k >= 2 && toks[k - 2].is_punct(':') {
            if k >= 3 && toks[k - 3].kind == TokenKind::Ident {
                k -= 3;
                continue;
            }
            return false;
        }
        if p.kind == TokenKind::Ident {
            // Direct ident before the chain start: `return foo();`,
            // `else foo();` — not a bare statement.
            return false;
        }
        return p.is_punct(';') || p.is_punct('{') || p.is_punct('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn build(files: &[(&str, &str)]) -> Graph {
        let units: Vec<FileUnit> = files
            .iter()
            .map(|(label, src)| {
                let lexed = lex(src);
                let parsed = parse_file(label, &lexed);
                FileUnit {
                    label: (*label).to_owned(),
                    lexed,
                    parsed,
                }
            })
            .collect();
        Graph::build(&units)
    }

    #[test]
    fn plain_and_self_method_edges() {
        let g = build(&[(
            "crates/core/src/a.rs",
            r#"
            struct T;
            impl T {
                fn outer(&self) { self.inner(); helper(); }
                fn inner(&self) {}
            }
            fn helper() {}
            "#,
        )]);
        let outer = g.find("T::outer")[0];
        let callees: Vec<String> = g.edges[outer]
            .iter()
            .map(|&(to, _)| g.nodes[to].qualified())
            .collect();
        assert_eq!(callees, vec!["T::inner", "helper"]);
    }

    #[test]
    fn cross_file_path_and_import_edges() {
        let g = build(&[
            (
                "crates/core/src/a.rs",
                "use crate::util::fix;\nfn go() { fix(); crate::util::fix(); }\n",
            ),
            ("crates/core/src/util.rs", "pub fn fix() {}\n"),
        ]);
        let go = g.find("go")[0];
        assert_eq!(g.edges[go].len(), 2);
        let fix = g.find("fix")[0];
        assert!(g.edges[go].iter().all(|&(to, _)| to == fix));
    }

    #[test]
    fn std_method_names_do_not_edge() {
        let g = build(&[(
            "crates/core/src/a.rs",
            r#"
            struct S;
            impl S { fn len(&self) -> usize { 0 } }
            fn go(v: Vec<u32>) -> usize { v.len() }
            "#,
        )]);
        let go = g.find("go")[0];
        assert!(g.edges[go].is_empty(), "v.len() must not edge to S::len");
    }

    #[test]
    fn panic_source_and_drop_facts() {
        let g = build(&[(
            "crates/core/src/a.rs",
            r#"
            use std::collections::HashMap;
            fn f(m: HashMap<u32, u32>, o: Option<u32>) -> u32 {
                let t = std::time::Instant::now();
                let _ = fallible();
                let v = m[&3];
                o.unwrap() + v
            }
            fn fallible() -> Result<u32, String> { Ok(1) }
            "#,
        )]);
        let f = g.find("f")[0];
        let n = &g.nodes[f];
        assert_eq!(n.sources.len(), 1);
        assert_eq!(n.sources[0].what, "Instant::now");
        let kinds: Vec<&str> = n.panics.iter().map(|p| p.what.as_str()).collect();
        assert!(kinds.iter().any(|k| k.contains("map index")));
        assert!(kinds.iter().any(|k| k.contains(".unwrap()")));
        assert_eq!(n.drops.len(), 1);
        // The drop span covers the fallible() call.
        let drop = &n.drops[0];
        let call = n
            .calls
            .iter()
            .find(|c| c.kind.name() == "fallible")
            .unwrap();
        assert!(call.tok >= drop.span.0 && call.tok < drop.span.1);
        assert!(g.nodes[call.targets[0]].returns_result);
    }

    #[test]
    fn bare_statement_detection() {
        let g = build(&[(
            "crates/core/src/a.rs",
            r#"
            struct S;
            impl S { fn fail(&self) -> Result<(), String> { Ok(()) } }
            fn go(s: &S) {
                s.fail();
                let x = s.fail();
                drop(x);
            }
            "#,
        )]);
        let go = g.find("go")[0];
        let bare: Vec<bool> = g.nodes[go]
            .calls
            .iter()
            .filter(|c| c.kind.name() == "fail")
            .map(|c| c.bare_stmt)
            .collect();
        assert_eq!(bare, vec![true, false]);
    }
}
