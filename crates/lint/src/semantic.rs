//! The inter-procedural passes over the workspace call graph: N001
//! (nondeterminism taint), P001 (panic-path audit), R001 (dropped
//! fallibility). Token rules D001–D005 catch hazards at the leaf site;
//! these passes catch them *flowing* — a wall-clock read laundered
//! through a helper, an `unwrap` four calls below `Framework::heal`.
//!
//! | rule | property proven when clean |
//! |------|----------------------------|
//! | N001 | no nondeterminism source reaches an artifact/trace/schedule sink through any call chain |
//! | P001 | no panic-capable site is reachable from the heal/invoke hot-path entry set |
//! | R001 | no `let _ =` silently discards a fallible result in non-test code |
//!
//! Suppression composes with the call graph: an `allow(N001)` **at the
//! source site** declares a sanctioned boundary — taint stops there and
//! the allow is accounted as used. Leaf-level `allow(D002)`/`allow(D003)`
//! do *not* stop taint: a site may be excused for existing and still be
//! audited for where its value flows. P001/R001 findings are suppressed
//! at the flagged site like any token rule.

use crate::callgraph::{CallKind, FileUnit, Graph};
use crate::rules::{allow_covers, Finding};
use std::collections::BTreeSet;

/// The hot-path entry set for P001: public operations the ROADMAP calls
/// production-critical. A panic anywhere in their call cone turns a
/// survivable fault into a crashed adaptation pass.
///
/// (`World::run`/`run_until` drive the invoke/dispatch event loop; the
/// paper's "invoke" surface has no single fn in this codebase.)
pub const HOT_PATH_ENTRIES: &[&str] = &[
    "Framework::heal",
    "GenericServer::connect",
    "GenericServerPool::connect",
    "World::run",
    "World::run_until",
    "Planner::plan_repair",
];

/// Self types whose methods count as N001 sinks: trace emission
/// ([`Tracer`]/`Span`/`Registry`/`TraceSink`) and virtual-time
/// scheduling (`Engine`). Artifact writers (`fs::write`/`File::create`
/// in a body) are sinks by fact, not by type.
const SINK_TYPES: &[&str] = &["Tracer", "Span", "Registry", "TraceSink", "Engine"];

/// One semantic finding, addressed to a file unit by index.
pub struct SemanticFinding {
    /// Index into the unit list.
    pub file: usize,
    /// The finding (rule, line, message, chain).
    pub finding: Finding,
}

/// Runs all three passes. `entries` overrides [`HOT_PATH_ENTRIES`] when
/// non-empty (fixture tests inject their own entry set).
pub fn run_passes(graph: &Graph, units: &[FileUnit], entries: &[&str]) -> Vec<SemanticFinding> {
    let mut out = Vec::new();
    pass_n001(graph, units, &mut out);
    let entries = if entries.is_empty() {
        HOT_PATH_ENTRIES
    } else {
        entries
    };
    pass_p001(graph, entries, &mut out);
    pass_r001(graph, &mut out);
    out
}

/// Whether a node is test code (a `#[test]`/`#[cfg(test)]` fn or any fn
/// in a `tests/` file): exempt from every semantic pass.
fn is_test_node(graph: &Graph, units: &[FileUnit], node: usize) -> bool {
    let n = &graph.nodes[node];
    n.def.is_test || units[n.file].parsed.test_file
}

/// Whether line `line` of unit `file` is covered by an allow naming
/// `rule` (same coverage window as token-rule suppression).
fn line_allowed(units: &[FileUnit], file: usize, line: u32, rule: &str) -> bool {
    let unit = &units[file];
    let token_lines: BTreeSet<u32> = unit.lexed.tokens.iter().map(|t| t.line).collect();
    unit.lexed
        .allows
        .iter()
        .any(|a| a.rules.iter().any(|r| r == rule) && allow_covers(&token_lines, a.line, line))
}

// ---------------------------------------------------------------------
// N001 — nondeterminism taint
// ---------------------------------------------------------------------

/// Taints every fn containing an unsanctioned nondeterminism source,
/// propagates taint to (transitive) callers, and fires wherever a
/// tainted fn touches a sink. The printed chain is a concrete witness:
/// `source site → fn → caller → … → sink call`.
fn pass_n001(graph: &Graph, units: &[FileUnit], out: &mut Vec<SemanticFinding>) {
    // Seed: (node, source description). An allow(N001) at the source
    // site is a sanctioned boundary — emit the finding anyway (so the
    // allow is applied and accounted) but do not propagate.
    let mut tainted: Vec<Option<(usize, String)>> = vec![None; graph.nodes.len()];
    let mut queue: Vec<usize> = Vec::new();
    // parent[n] = caller-edge used to taint n: (tainted callee, line in n).
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.nodes.len()];

    for (i, node) in graph.nodes.iter().enumerate() {
        if is_test_node(graph, units, i) {
            continue;
        }
        for src in &node.sources {
            let desc = format!("{} ({}:{})", src.what, node.label, src.line);
            if line_allowed(units, node.file, src.line, "N001") {
                out.push(SemanticFinding {
                    file: node.file,
                    finding: Finding {
                        rule: "N001",
                        line: src.line,
                        message: format!(
                            "nondeterminism source `{}` — sanctioned boundary, taint stops here",
                            src.what
                        ),
                        chain: vec![desc],
                        suppressed: false,
                    },
                });
                continue;
            }
            if tainted[i].is_none() {
                tainted[i] = Some((i, desc));
                queue.push(i);
            }
        }
    }

    // Propagate source-fn → callers.
    let mut head = 0;
    while head < queue.len() {
        let n = queue[head];
        head += 1;
        for &(caller, line) in &graph.redges[n] {
            if tainted[caller].is_some() || is_test_node(graph, units, caller) {
                continue;
            }
            tainted[caller] = tainted[n].clone();
            parent[caller] = Some((n, line));
            queue.push(caller);
        }
    }

    // Fire on sink contact. One finding per (tainted fn, sink line).
    let is_sink = |node: usize| -> bool {
        graph.nodes[node]
            .def
            .self_ty
            .as_deref()
            .is_some_and(|ty| SINK_TYPES.contains(&ty))
            || !graph.nodes[node].artifacts.is_empty()
    };
    for &t in &queue {
        let node = &graph.nodes[t];
        let chain = witness_chain(graph, &tainted, &parent, t);
        // (a) the tainted fn itself writes an artifact;
        for a in &node.artifacts {
            out.push(SemanticFinding {
                file: node.file,
                finding: Finding {
                    rule: "N001",
                    line: a.line,
                    message: format!(
                        "nondeterministic value can reach artifact write `{}`: {}",
                        a.what,
                        chain.join(" → ")
                    ),
                    chain: chain.clone(),
                    suppressed: false,
                },
            });
        }
        // (b) the tainted fn calls into the trace/schedule surface.
        let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
        for call in &node.calls {
            let Some(&sink) = call.targets.iter().find(|&&t2| is_sink(t2)) else {
                continue;
            };
            if !seen_lines.insert(call.line) {
                continue;
            }
            let mut chain = chain.clone();
            chain.push(format!(
                "{} ({}:{})",
                graph.nodes[sink].qualified(),
                node.label,
                call.line
            ));
            out.push(SemanticFinding {
                file: node.file,
                finding: Finding {
                    rule: "N001",
                    line: call.line,
                    message: format!(
                        "nondeterministic value can reach sink `{}`: {}",
                        graph.nodes[sink].qualified(),
                        chain.join(" → ")
                    ),
                    chain,
                    suppressed: false,
                },
            });
        }
    }
}

/// Reconstructs `source site → fn → … → t` from the taint parents.
fn witness_chain(
    graph: &Graph,
    tainted: &[Option<(usize, String)>],
    parent: &[Option<(usize, u32)>],
    t: usize,
) -> Vec<String> {
    let Some((_, ref source_desc)) = tainted[t] else {
        return Vec::new();
    };
    // Walk t ← parent ← … ← source fn.
    let mut hops = vec![t];
    let mut cur = t;
    while let Some((child, _)) = parent[cur] {
        hops.push(child);
        cur = child;
    }
    hops.reverse(); // source fn first
    let mut chain = vec![source_desc.clone()];
    chain.extend(hops.iter().map(|&h| graph.nodes[h].qualified()));
    chain
}

// ---------------------------------------------------------------------
// P001 — panic-path audit
// ---------------------------------------------------------------------

/// Forward reachability from the hot-path entry set; every
/// panic-capable site in the cone fires with an entry→site chain.
fn pass_p001(graph: &Graph, entries: &[&str], out: &mut Vec<SemanticFinding>) {
    let mut reach: Vec<bool> = vec![false; graph.nodes.len()];
    // parent[n] = (caller, line of the call in caller) for chain print.
    let mut parent: Vec<Option<(usize, u32)>> = vec![None; graph.nodes.len()];
    let mut queue: Vec<usize> = Vec::new();

    for entry in entries {
        for e in graph.find(entry) {
            if !reach[e] {
                reach[e] = true;
                queue.push(e);
            }
        }
    }

    let mut head = 0;
    while head < queue.len() {
        let n = queue[head];
        head += 1;
        for &(callee, line) in &graph.edges[n] {
            if reach[callee] || graph.nodes[callee].def.is_test {
                continue;
            }
            reach[callee] = true;
            parent[callee] = Some((n, line));
            queue.push(callee);
        }
    }

    for &n in &queue {
        let node = &graph.nodes[n];
        if node.def.is_test || node.panics.is_empty() {
            continue;
        }
        // Chain: entry → … → n.
        let mut hops = vec![n];
        let mut cur = n;
        while let Some((caller, _)) = parent[cur] {
            hops.push(caller);
            cur = caller;
        }
        hops.reverse();
        let chain: Vec<String> = hops.iter().map(|&h| graph.nodes[h].qualified()).collect();
        for p in &node.panics {
            out.push(SemanticFinding {
                file: node.file,
                finding: Finding {
                    rule: "P001",
                    line: p.line,
                    message: format!(
                        "panic-capable `{}` on hot path: {} ({}:{})",
                        p.what,
                        chain.join(" → "),
                        node.label,
                        p.line
                    ),
                    chain: chain.clone(),
                    suppressed: false,
                },
            });
        }
    }
}

// ---------------------------------------------------------------------
// R001 — dropped fallibility
// ---------------------------------------------------------------------

/// Flags `let _ = …;` discards whose right side is fallible: every
/// resolved workspace candidate returns `Result` or is `#[must_use]`,
/// or a std fallible method (`send`/`recv`/`lock`/`flush`/…) is called.
/// `write!`-family drops are exempt (`fmt::Write` to a `String` cannot
/// fail). Statement-position drops are rustc's `unused_must_use` job —
/// `let _ =` is exactly the spelling that silences rustc, so it is the
/// one this pass audits.
fn pass_r001(graph: &Graph, out: &mut Vec<SemanticFinding>) {
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.def.is_test {
            continue;
        }
        let _ = i;
        for d in &node.drops {
            if d.fmt_macro {
                continue;
            }
            // A workspace call inside the span whose candidates are all
            // fallible/must_use.
            let mut culprit: Option<(String, &'static str)> = None;
            for call in &node.calls {
                if call.tok < d.span.0 || call.tok >= d.span.1 || call.targets.is_empty() {
                    continue;
                }
                let all_result = call.targets.iter().all(|&t| graph.nodes[t].returns_result);
                let all_must_use = call.targets.iter().all(|&t| graph.nodes[t].def.must_use);
                if all_result {
                    culprit = Some((callee_label(&call.kind), "returns Result"));
                    break;
                }
                if all_must_use {
                    culprit = Some((callee_label(&call.kind), "is #[must_use]"));
                    break;
                }
            }
            if culprit.is_none() {
                if let Some(m) = d.std_fallible.first() {
                    culprit = Some((format!(".{m}()"), "returns a std Result"));
                }
            }
            let Some((what, why)) = culprit else {
                continue;
            };
            out.push(SemanticFinding {
                file: node.file,
                finding: Finding {
                    rule: "R001",
                    line: d.line,
                    message: format!(
                        "`let _ =` silently discards fallible call `{what}` ({why}) in {}",
                        node.qualified()
                    ),
                    chain: vec![node.qualified()],
                    suppressed: false,
                },
            });
        }
    }
}

/// Display label for a call site.
fn callee_label(kind: &CallKind) -> String {
    match kind {
        CallKind::Plain(n) => format!("{n}()"),
        CallKind::Method { name, .. } => format!(".{name}()"),
        CallKind::Path(segs) => format!("{}()", segs.join("::")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::Graph;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn units(files: &[(&str, &str)]) -> Vec<FileUnit> {
        files
            .iter()
            .map(|(label, src)| {
                let lexed = lex(src);
                let parsed = parse_file(label, &lexed);
                FileUnit {
                    label: (*label).to_owned(),
                    lexed,
                    parsed,
                }
            })
            .collect()
    }

    #[test]
    fn n001_laundered_taint_fires_with_chain() {
        // Wall-clock read laundered through a helper before reaching a
        // trace sink: no single token rule can see this.
        let u = units(&[(
            "crates/x/src/a.rs",
            r#"
            struct Tracer;
            impl Tracer { fn observe(&self, v: u64) { drop(v); } }
            fn read_clock() -> u64 {
                // ps-lint: allow(D002): leaf excused — flow still audited
                std::time::Instant::now().elapsed().as_micros() as u64
            }
            fn launder() -> u64 { read_clock() }
            fn emit(t: &Tracer) { t.observe(launder()); }
            "#,
        )]);
        let g = Graph::build(&u);
        let findings = run_passes(&g, &u, &["no_entry"]);
        let n001: Vec<_> = findings
            .iter()
            .filter(|f| f.finding.rule == "N001")
            .collect();
        assert_eq!(n001.len(), 1, "exactly one sink contact");
        let chain = &n001[0].finding.chain;
        assert!(chain[0].starts_with("Instant::now"));
        assert_eq!(
            &chain[1..],
            &[
                "read_clock".to_owned(),
                "launder".to_owned(),
                "emit".to_owned(),
                "Tracer::observe (crates/x/src/a.rs:9)".to_owned(),
            ]
        );
    }

    #[test]
    fn n001_allow_at_source_stops_taint() {
        let u = units(&[(
            "crates/x/src/a.rs",
            r#"
            struct Tracer;
            impl Tracer { fn observe(&self, v: u64) { drop(v); } }
            fn read_clock() -> u64 {
                // ps-lint: allow(N001): sanctioned boundary for this test
                std::time::Instant::now().elapsed().as_micros() as u64
            }
            fn emit(t: &Tracer) { t.observe(read_clock()); }
            "#,
        )]);
        let g = Graph::build(&u);
        let findings = run_passes(&g, &u, &["no_entry"]);
        let n001: Vec<_> = findings
            .iter()
            .filter(|f| f.finding.rule == "N001")
            .collect();
        // One finding at the source (for allow accounting), none at the
        // sink: taint stopped.
        assert_eq!(n001.len(), 1);
        assert!(n001[0].finding.message.contains("sanctioned boundary"));
        assert_eq!(n001[0].finding.line, 6);
    }

    #[test]
    fn p001_reports_entry_chain() {
        let u = units(&[(
            "crates/x/src/a.rs",
            r#"
            struct Framework;
            impl Framework {
                fn heal(&mut self) { helper(); }
            }
            fn helper() { deep(); }
            fn deep() { let v: Option<u32> = None; v.unwrap(); }
            fn unreachable_fn() { let v: Option<u32> = None; v.unwrap(); }
            "#,
        )]);
        let g = Graph::build(&u);
        let findings = run_passes(&g, &u, &["Framework::heal"]);
        let p001: Vec<_> = findings
            .iter()
            .filter(|f| f.finding.rule == "P001")
            .collect();
        assert_eq!(p001.len(), 1, "only the reachable unwrap fires");
        assert_eq!(
            p001[0].finding.chain,
            vec!["Framework::heal", "helper", "deep"]
        );
    }

    #[test]
    fn r001_flags_result_drop_not_fmt() {
        let u = units(&[(
            "crates/x/src/a.rs",
            r#"
            use std::fmt::Write as _;
            fn fallible() -> Result<u32, String> { Ok(1) }
            fn go() {
                let _ = fallible();
                let mut s = String::new();
                let _ = writeln!(s, "ok");
            }
            "#,
        )]);
        let g = Graph::build(&u);
        let findings = run_passes(&g, &u, &["no_entry"]);
        let r001: Vec<_> = findings
            .iter()
            .filter(|f| f.finding.rule == "R001")
            .collect();
        assert_eq!(r001.len(), 1);
        assert_eq!(r001[0].finding.line, 5);
        assert!(r001[0].finding.message.contains("fallible()"));
    }

    #[test]
    fn test_code_is_exempt() {
        let u = units(&[(
            "crates/x/src/a.rs",
            r#"
            #[cfg(test)]
            mod tests {
                fn fallible() -> Result<u32, String> { Ok(1) }
                #[test]
                fn t() {
                    let _ = fallible();
                    let x = std::time::Instant::now();
                    drop(x);
                }
            }
            "#,
        )]);
        let g = Graph::build(&u);
        let findings = run_passes(&g, &u, &["no_entry"]);
        assert!(findings.is_empty());
    }
}
