//! Property tests on the runtime's messaging invariants, driven by
//! deterministic seeded loops over `ps_sim::Rng` (every failing case is
//! reproducible from the printed seed).

use ps_net::{Credentials, Network, NodeId};
use ps_sim::{Rng, SimDuration, SimTime};
use ps_smock::{ComponentLogic, Outbox, Payload, RequestHandle, World};
use ps_spec::{Behavior, ResolvedBindings};

const CASES: u64 = 24;

/// Echo server counting requests served.
struct Echo {
    served: u64,
}
impl ComponentLogic for Echo {
    fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, p: &Payload) {
        self.served += 1;
        out.reply(req, p.clone());
    }
    fn on_response(&mut self, _o: &mut Outbox, _t: u64, _p: &Payload) {}
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Client issuing `total` requests back-to-back, counting responses.
struct Client {
    total: u32,
    sent: u32,
    received: u32,
}
impl ComponentLogic for Client {
    fn on_start(&mut self, out: &mut Outbox) {
        if self.sent < self.total {
            self.sent += 1;
            out.call(0, Payload::new((), 500), 0);
        }
    }
    fn on_request(&mut self, _o: &mut Outbox, _r: RequestHandle, _p: &Payload) {}
    fn on_response(&mut self, out: &mut Outbox, _t: u64, _p: &Payload) {
        self.received += 1;
        if self.sent < self.total {
            self.sent += 1;
            out.call(0, Payload::new((), 500), 0);
        }
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A random connected network.
fn random_net(seed: u64, nodes: usize) -> Network {
    let mut rng = Rng::seed_from_u64(seed);
    let mut net = Network::new();
    for i in 0..nodes {
        net.add_node(format!("n{i}"), "s", 1.0, Credentials::new());
    }
    for i in 1..nodes {
        let j = rng.next_below(i as u64) as usize;
        net.add_link(
            NodeId(i as u32),
            NodeId(j as u32),
            SimDuration::from_micros(100 + rng.next_below(5000)),
            1e6 + rng.next_f64() * 1e8,
            Credentials::new().with("Secure", true),
        );
    }
    net
}

/// Every request issued receives exactly one response, whatever the
/// topology, client count, and request volume.
#[test]
fn requests_and_responses_are_conserved() {
    for case in 0..CASES {
        let mut meta = Rng::seed_from_u64(case).derive("conservation");
        let seed = meta.next_u64();
        let nodes = 2 + meta.next_below(8) as usize;
        let clients = 1 + meta.next_below(4) as usize;
        let per_client = 1 + meta.next_below(29) as u32;

        let net = random_net(seed, nodes);
        let mut world = World::new(net);
        let server_node = NodeId((nodes - 1) as u32);
        let server = world.instantiate(
            "Echo",
            server_node,
            ResolvedBindings::new(),
            Behavior::new().cpu_per_request_ms(0.1),
            Box::new(Echo { served: 0 }),
            SimTime::ZERO,
        );
        let mut client_ids = Vec::new();
        for i in 0..clients {
            let node = NodeId((i % nodes) as u32);
            let id = world.instantiate(
                "Client",
                node,
                ResolvedBindings::new(),
                Behavior::new(),
                Box::new(Client {
                    total: per_client,
                    sent: 0,
                    received: 0,
                }),
                SimTime::ZERO,
            );
            world.wire(id, vec![server]);
            client_ids.push(id);
        }
        world.run();

        let mut total_received = 0u64;
        for id in client_ids {
            let c = world
                .logic_mut(id)
                .as_any()
                .unwrap()
                .downcast_ref::<Client>()
                .unwrap();
            assert_eq!(c.sent, per_client, "seed {seed}");
            assert_eq!(c.received, per_client, "seed {seed}");
            total_received += u64::from(c.received);
        }
        let served = world
            .logic_mut(server)
            .as_any()
            .unwrap()
            .downcast_ref::<Echo>()
            .unwrap()
            .served;
        assert_eq!(served, total_received, "seed {seed}");
        // The world quiesced: no stranded envelopes keep it alive.
        assert_eq!(world.messages_sent(), 2 * total_received, "seed {seed}");
    }
}

/// Migration mid-stream preserves conservation.
#[test]
fn conservation_survives_migration() {
    for case in 0..CASES {
        let mut meta = Rng::seed_from_u64(case).derive("migration");
        let seed = meta.next_u64();
        let nodes = 3 + meta.next_below(5) as usize;
        let per_client = 5 + meta.next_below(20) as u32;
        let cut_ms = 1 + meta.next_below(39);

        let net = random_net(seed, nodes);
        let mut world = World::new(net);
        let server = world.instantiate(
            "Echo",
            NodeId((nodes - 1) as u32),
            ResolvedBindings::new(),
            Behavior::new().cpu_per_request_ms(0.5),
            Box::new(Echo { served: 0 }),
            SimTime::ZERO,
        );
        let client = world.instantiate(
            "Client",
            NodeId(0),
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Client {
                total: per_client,
                sent: 0,
                received: 0,
            }),
            SimTime::ZERO,
        );
        world.wire(client, vec![server]);
        world.run_until(SimTime::from_nanos(cut_ms * 1_000_000));
        let (new_server, _) = world.migrate(server, NodeId((nodes - 2) as u32));
        world.run();
        let c = world
            .logic_mut(client)
            .as_any()
            .unwrap()
            .downcast_ref::<Client>()
            .unwrap();
        assert_eq!(
            c.received, per_client,
            "no request lost across the move (seed {seed})"
        );
        let _ = new_server;
    }
}
