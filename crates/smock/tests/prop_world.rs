//! Property tests on the runtime's messaging invariants.

use proptest::prelude::*;
use ps_net::{Credentials, Network, NodeId};
use ps_sim::{Rng, SimDuration, SimTime};
use ps_smock::{ComponentLogic, Outbox, Payload, RequestHandle, World};
use ps_spec::{Behavior, ResolvedBindings};

/// Echo server counting requests served.
struct Echo {
    served: u64,
}
impl ComponentLogic for Echo {
    fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, p: &Payload) {
        self.served += 1;
        out.reply(req, p.clone());
    }
    fn on_response(&mut self, _o: &mut Outbox, _t: u64, _p: &Payload) {}
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Client issuing `total` requests back-to-back, counting responses.
struct Client {
    total: u32,
    sent: u32,
    received: u32,
}
impl ComponentLogic for Client {
    fn on_start(&mut self, out: &mut Outbox) {
        if self.sent < self.total {
            self.sent += 1;
            out.call(0, Payload::new((), 500), 0);
        }
    }
    fn on_request(&mut self, _o: &mut Outbox, _r: RequestHandle, _p: &Payload) {}
    fn on_response(&mut self, out: &mut Outbox, _t: u64, _p: &Payload) {
        self.received += 1;
        if self.sent < self.total {
            self.sent += 1;
            out.call(0, Payload::new((), 500), 0);
        }
    }
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A random connected network.
fn random_net(seed: u64, nodes: usize) -> Network {
    let mut rng = Rng::seed_from_u64(seed);
    let mut net = Network::new();
    for i in 0..nodes {
        net.add_node(format!("n{i}"), "s", 1.0, Credentials::new());
    }
    for i in 1..nodes {
        let j = rng.next_below(i as u64) as usize;
        net.add_link(
            NodeId(i as u32),
            NodeId(j as u32),
            SimDuration::from_micros(100 + rng.next_below(5000)),
            1e6 + rng.next_f64() * 1e8,
            Credentials::new().with("Secure", true),
        );
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every request issued receives exactly one response, whatever the
    /// topology, client count, and request volume.
    #[test]
    fn requests_and_responses_are_conserved(
        seed in any::<u64>(),
        nodes in 2usize..10,
        clients in 1usize..5,
        per_client in 1u32..30,
    ) {
        let net = random_net(seed, nodes);
        let mut world = World::new(net);
        let server_node = NodeId((nodes - 1) as u32);
        let server = world.instantiate(
            "Echo",
            server_node,
            ResolvedBindings::new(),
            Behavior::new().cpu_per_request_ms(0.1),
            Box::new(Echo { served: 0 }),
            SimTime::ZERO,
        );
        let mut client_ids = Vec::new();
        for i in 0..clients {
            let node = NodeId((i % nodes) as u32);
            let id = world.instantiate(
                "Client",
                node,
                ResolvedBindings::new(),
                Behavior::new(),
                Box::new(Client {
                    total: per_client,
                    sent: 0,
                    received: 0,
                }),
                SimTime::ZERO,
            );
            world.wire(id, vec![server]);
            client_ids.push(id);
        }
        world.run();

        let mut total_received = 0u64;
        for id in client_ids {
            let c = world
                .logic_mut(id)
                .as_any()
                .unwrap()
                .downcast_ref::<Client>()
                .unwrap();
            prop_assert_eq!(c.sent, per_client);
            prop_assert_eq!(c.received, per_client);
            total_received += u64::from(c.received);
        }
        let served = world
            .logic_mut(server)
            .as_any()
            .unwrap()
            .downcast_ref::<Echo>()
            .unwrap()
            .served;
        prop_assert_eq!(served, total_received);
        // The world quiesced: no stranded envelopes keep it alive.
        prop_assert_eq!(world.messages_sent(), 2 * total_received);
    }

    /// Migration mid-stream preserves conservation.
    #[test]
    fn conservation_survives_migration(
        seed in any::<u64>(),
        nodes in 3usize..8,
        per_client in 5u32..25,
        cut_ms in 1u64..40,
    ) {
        let net = random_net(seed, nodes);
        let mut world = World::new(net);
        let server = world.instantiate(
            "Echo",
            NodeId((nodes - 1) as u32),
            ResolvedBindings::new(),
            Behavior::new().cpu_per_request_ms(0.5),
            Box::new(Echo { served: 0 }),
            SimTime::ZERO,
        );
        let client = world.instantiate(
            "Client",
            NodeId(0),
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Client {
                total: per_client,
                sent: 0,
                received: 0,
            }),
            SimTime::ZERO,
        );
        world.wire(client, vec![server]);
        world.run_until(SimTime::from_nanos(cut_ms * 1_000_000));
        let (new_server, _) = world.migrate(server, NodeId((nodes - 2) as u32));
        world.run();
        let c = world
            .logic_mut(client)
            .as_any()
            .unwrap()
            .downcast_ref::<Client>()
            .unwrap();
        prop_assert_eq!(c.received, per_client, "no request lost across the move");
        let _ = new_server;
    }
}
