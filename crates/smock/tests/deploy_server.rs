//! Deployment-engine and generic-server tests over a minimal service.

use ps_net::{Credentials, Mapping, MappingTranslator, Network, NodeId};
use ps_planner::ServiceRequest;
use ps_sim::SimDuration;
use ps_smock::{
    deploy, ComponentLogic, ConnectError, GenericServer, Outbox, Payload, RequestHandle,
    ServiceRegistration, World,
};
use ps_spec::prelude::*;

struct Nop;
impl ComponentLogic for Nop {
    fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, p: &Payload) {
        out.reply(req, p.clone());
    }
    fn on_response(&mut self, _o: &mut Outbox, _t: u64, _p: &Payload) {}
}

fn spec() -> ServiceSpec {
    ServiceSpec::new("svc")
        .property(Property::boolean("Hosting"))
        .interface(Interface::new("Api", Vec::<String>::new()))
        .interface(Interface::new("Backend", Vec::<String>::new()))
        .component(
            Component::new("Front")
                .implements(InterfaceRef::plain("Api"))
                .requires(InterfaceRef::plain("Backend"))
                .behavior(Behavior::new().code_size(80_000)),
        )
        .component(
            Component::new("Back")
                .implements(InterfaceRef::plain("Backend"))
                .condition(Condition::equals("Hosting", true))
                .behavior(Behavior::new().code_size(200_000)),
        )
}

fn network() -> (Network, NodeId, NodeId) {
    let mut net = Network::new();
    let edge = net.add_node("edge", "e", 1.0, Credentials::new());
    let dc = net.add_node("dc", "d", 1.0, Credentials::new().with("Hosting", true));
    net.add_link(
        edge,
        dc,
        SimDuration::from_millis(20),
        1e7,
        Credentials::new().with("Secure", true),
    );
    (net, edge, dc)
}

fn translator() -> MappingTranslator {
    MappingTranslator::new().node_mapping(Mapping::Copy {
        credential: "Hosting".into(),
        property: "Hosting".into(),
        default: ps_spec::PropertyValue::Bool(false),
    })
}

fn server(home: NodeId) -> GenericServer {
    let mut gs = GenericServer::new(home, Box::new(translator()));
    gs.registry.register("Front", |_| Box::new(Nop));
    gs.registry.register("Back", |_| Box::new(Nop));
    gs.register_service(
        ServiceRegistration::new(spec())
            .attribute("type", "demo")
            .proxy_code_size(10_000),
    );
    gs
}

#[test]
fn connect_plans_deploys_and_reports_costs() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let request = ServiceRequest::new("Api", edge).rate(1.0);
    let conn = gs.connect(&mut world, "svc", &request).expect("connects");
    assert_eq!(conn.plan.graph.to_string(), "Front -> Back");
    assert_eq!(conn.deployment.created, 2);
    assert_eq!(conn.deployment.reused, 0);
    assert_eq!(conn.deployment.bytes_shipped, 280_000);
    // Proxy download crosses the 20 ms / 10 Mb/s link: 20 + 8 ms.
    assert!((conn.costs.proxy_download_ms - 28.0).abs() < 0.5);
    assert!(conn.costs.planning_ms > 0.0);
    assert!(conn.costs.startup_ms > 0.0);
    assert!(conn.costs.total_ms() > 500.0);
}

#[test]
fn second_connect_reuses_everything() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let request = ServiceRequest::new("Api", edge).rate(1.0);
    let first = gs.connect(&mut world, "svc", &request).unwrap();
    let second = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(second.deployment.created, 0);
    assert_eq!(second.deployment.reused, 2);
    assert_eq!(second.deployment.bytes_shipped, 0);
    assert_eq!(first.root, second.root);
    assert_eq!(second.costs.startup_ms, 0.0);
}

#[test]
fn unknown_service_is_an_error() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let err = gs
        .connect(&mut world, "ghost", &ServiceRequest::new("Api", edge))
        .unwrap_err();
    assert!(matches!(err, ConnectError::UnknownService(_)));
}

#[test]
fn missing_factory_is_a_deploy_error() {
    let (net, edge, dc) = network();
    let mut gs = GenericServer::new(dc, Box::new(translator()));
    gs.registry.register("Front", |_| Box::new(Nop)); // no Back factory
    gs.register_service(ServiceRegistration::new(spec()));
    let mut world = World::new(net);
    let err = gs
        .connect(&mut world, "svc", &ServiceRequest::new("Api", edge))
        .unwrap_err();
    assert!(matches!(
        err,
        ConnectError::Deploy(deploy::DeployError::UnknownComponent(_))
    ));
}

#[test]
fn missing_pinned_instance_is_a_deploy_error() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    // Pin Back to the dc node, but never install it.
    let request = ServiceRequest::new("Api", edge).pin("Back", dc);
    let err = gs.connect(&mut world, "svc", &request).unwrap_err();
    assert!(matches!(
        err,
        ConnectError::Deploy(deploy::DeployError::MissingPinned { .. })
    ));
}

#[test]
fn infeasible_requests_surface_planning_errors() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    // No component implements this interface.
    let err = gs
        .connect(&mut world, "svc", &ServiceRequest::new("Nope", edge))
        .unwrap_err();
    assert!(matches!(err, ConnectError::Planning(_)));
}

#[test]
fn lookup_finds_services_by_attribute() {
    let (_, _, dc) = network();
    let gs = server(dc);
    assert_eq!(gs.lookup.lookup(&[("type", "demo")]).len(), 1);
    assert_eq!(gs.lookup.lookup(&[("type", "other")]).len(), 0);
    assert_eq!(gs.lookup.by_name("svc").unwrap().proxy_code_size, 10_000);
}

#[test]
fn blueprint_transfer_time_scales_with_code_size() {
    let (net, edge, dc) = network();
    let world = World::new(net);
    let small = deploy::blueprint_transfer_time(&world, dc, edge, 10_000);
    let large = deploy::blueprint_transfer_time(&world, dc, edge, 1_000_000);
    assert!(large > small);
    assert_eq!(
        deploy::blueprint_transfer_time(&world, dc, dc, 1_000_000),
        SimDuration::ZERO
    );
}

#[test]
fn node_wrappers_cache_component_code() {
    // Two differently-factored instances of one component on one node:
    // the second ships no blueprint bytes.
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let first = gs
        .connect(&mut world, "svc", &ServiceRequest::new("Api", edge))
        .unwrap();
    assert_eq!(first.deployment.bytes_shipped, 280_000);
    // Retire the Front instance so a fresh one must be created on the
    // same node — its code is already there.
    world.retire(first.root);
    let second = gs
        .connect(&mut world, "svc", &ServiceRequest::new("Api", edge))
        .unwrap();
    assert_eq!(second.deployment.created, 1, "new Front instance");
    assert_eq!(
        second.deployment.bytes_shipped, 0,
        "the wrapper reused the cached code"
    );
}

#[test]
fn server_pool_spreads_services_deterministically() {
    use ps_smock::GenericServerPool;
    let (_, _, dc) = network();
    let mut pool = GenericServerPool::new();
    pool.add(server(dc));
    pool.add(GenericServer::new(dc, Box::new(translator())));
    pool.add(GenericServer::new(dc, Box::new(translator())));
    assert_eq!(pool.len(), 3);
    // Registration routes by name; lookups through the pool find it.
    let mut extra = spec();
    extra.name = "another".into();
    pool.register_service(ServiceRegistration::new(extra));
    assert!(pool
        .member_for("another")
        .lookup
        .by_name("another")
        .is_some());
    // Stable assignment.
    let a = pool.member_for("another") as *const GenericServer;
    let b = pool.member_for("another") as *const GenericServer;
    assert_eq!(a, b);
    // Different services may land on different members (hash spread) —
    // at minimum, the mapping covers the pool deterministically.
    let mut seen = std::collections::BTreeSet::new();
    for name in ["another", "svc", "video", "mail", "files", "chat"] {
        seen.insert(pool.member_for(name) as *const GenericServer as usize);
    }
    assert!(seen.len() > 1, "hashing spreads services across members");
}

#[test]
fn deployments_record_shipped_blueprints() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let conn = gs
        .connect(&mut world, "svc", &ServiceRequest::new("Api", edge))
        .unwrap();
    let names: Vec<&str> = conn
        .deployment
        .blueprints
        .iter()
        .map(|b| b.component.as_str())
        .collect();
    assert_eq!(names, vec!["Front", "Back"]);
    assert_eq!(
        conn.deployment
            .blueprints
            .iter()
            .map(|b| b.code_size)
            .sum::<u64>(),
        conn.deployment.bytes_shipped
    );
}

#[test]
fn plan_cache_hits_on_identical_reconnect() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let request = ServiceRequest::new("Api", edge).rate(1.0);
    // First connect: nothing deployed yet, cold cache.
    let first = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(first.costs.plan_stats.plan_cache_hits, 0);
    // Second connect: the live-instance set changed (the first connect
    // deployed), so the key differs — a miss that re-primes the cache.
    let second = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(second.costs.plan_stats.plan_cache_hits, 0);
    // Third connect: identical world, identical request — a hit, and
    // the same plan (hence the same reused deployment) comes back.
    let third = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(third.costs.plan_stats.plan_cache_hits, 1);
    assert_eq!(third.root, second.root);
    assert_eq!(third.deployment.created, 0);
    assert!(gs.cached_plan_count() > 0);
}

#[test]
fn plan_cache_is_invalidated_by_link_changes() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let request = ServiceRequest::new("Api", edge).rate(1.0);
    gs.connect(&mut world, "svc", &request).unwrap();
    gs.connect(&mut world, "svc", &request).unwrap();
    let hit = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(hit.costs.plan_stats.plan_cache_hits, 1);
    // A link-condition change bumps the network epoch: the old entry
    // must not be served again.
    world.update_link(ps_net::LinkId(0), SimDuration::from_millis(40), 5e6);
    let after = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(after.costs.plan_stats.plan_cache_hits, 0);
    // The replan saw the slower link in its objective.
    assert!(after.plan.expected_latency_ms > hit.plan.expected_latency_ms);
}

#[test]
fn plan_cache_is_invalidated_by_instance_retirement() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let request = ServiceRequest::new("Api", edge).rate(1.0);
    gs.connect(&mut world, "svc", &request).unwrap();
    let primed = gs.connect(&mut world, "svc", &request).unwrap();
    let hit = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(hit.costs.plan_stats.plan_cache_hits, 1);
    // Retiring the root shrinks the live-instance snapshot baked into
    // the cache key; the next connect must replan (and redeploy).
    world.retire(primed.root);
    let after = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(after.costs.plan_stats.plan_cache_hits, 0);
    assert_eq!(after.deployment.created, 1);
}

#[test]
fn explicit_invalidation_clears_cached_plans() {
    let (net, edge, dc) = network();
    let gs = server(dc);
    let mut world = World::new(net);
    let request = ServiceRequest::new("Api", edge).rate(1.0);
    gs.connect(&mut world, "svc", &request).unwrap();
    gs.connect(&mut world, "svc", &request).unwrap();
    assert!(gs.cached_plan_count() > 0);
    gs.invalidate_plans();
    assert_eq!(gs.cached_plan_count(), 0);
    let after = gs.connect(&mut world, "svc", &request).unwrap();
    assert_eq!(after.costs.plan_stats.plan_cache_hits, 0);
}
