//! The attribute-based lookup service (Jini-style, Figure 1 steps 1–2).
//!
//! Services register a meta-description (their specification) together
//! with free-form attributes and a generic proxy; clients look services
//! up by attribute match and download the proxy. As in Jini, a
//! registration may carry a *lease*: unless renewed before it expires,
//! the entry is evicted by [`LookupService::expire`], so a crashed
//! provider disappears from discovery without an explicit unregister.

use ps_net::NodeId;
use ps_sim::{SimDuration, SimTime};
use ps_spec::ServiceSpec;
use std::collections::BTreeMap;

/// A registered service entry.
#[derive(Debug, Clone)]
pub struct ServiceRegistration {
    /// Service name (also registered as attribute `name`).
    pub name: String,
    /// Free-form attributes for discovery (`type = mail`, …).
    pub attributes: BTreeMap<String, String>,
    /// The declarative specification uploaded at registration.
    pub spec: ServiceSpec,
    /// Size of the generic proxy the client downloads, bytes.
    pub proxy_code_size: u64,
    /// The node the registering provider runs on, when known; lets
    /// [`LookupService::purge_node`] evict a crashed host's services.
    pub home_node: Option<NodeId>,
    /// Lease expiry; `None` means the registration never expires.
    pub lease_expires: Option<SimTime>,
}

impl ServiceRegistration {
    /// Registers `spec` under its own name with no extra attributes and a
    /// default 32 KiB proxy.
    pub fn new(spec: ServiceSpec) -> Self {
        ServiceRegistration {
            name: spec.name.clone(),
            attributes: BTreeMap::new(),
            spec,
            proxy_code_size: 32 * 1024,
            home_node: None,
            lease_expires: None,
        }
    }

    /// Adds a discovery attribute.
    pub fn attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// Sets the proxy code size.
    pub fn proxy_code_size(mut self, bytes: u64) -> Self {
        self.proxy_code_size = bytes;
        self
    }

    /// Records the node the provider runs on.
    pub fn home_node(mut self, node: NodeId) -> Self {
        self.home_node = Some(node);
        self
    }

    /// Grants a lease valid for `duration` from `now`.
    pub fn leased(mut self, now: SimTime, duration: SimDuration) -> Self {
        self.lease_expires = Some(now + duration);
        self
    }

    fn matches(&self, query: &[(&str, &str)]) -> bool {
        query.iter().all(|(k, v)| {
            if *k == "name" {
                self.name == *v
            } else {
                self.attributes.get(*k).is_some_and(|a| a == v)
            }
        })
    }
}

/// The lookup service.
#[derive(Debug, Default)]
pub struct LookupService {
    entries: Vec<ServiceRegistration>,
}

impl LookupService {
    /// Creates an empty lookup service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service (replacing an entry with the same name).
    pub fn register(&mut self, registration: ServiceRegistration) {
        self.entries.retain(|e| e.name != registration.name);
        self.entries.push(registration);
    }

    /// Removes a service by name; returns whether it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.name != name);
        self.entries.len() != before
    }

    /// All registrations whose attributes match every `(key, value)` pair
    /// in the query.
    pub fn lookup(&self, query: &[(&str, &str)]) -> Vec<&ServiceRegistration> {
        self.entries.iter().filter(|e| e.matches(query)).collect()
    }

    /// Registration by exact name.
    pub fn by_name(&self, name: &str) -> Option<&ServiceRegistration> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Renews the lease of `name` to `now + duration`; returns whether
    /// the entry existed and carried a lease.
    pub fn renew_lease(&mut self, name: &str, now: SimTime, duration: SimDuration) -> bool {
        match self.entries.iter_mut().find(|e| e.name == name) {
            Some(entry) if entry.lease_expires.is_some() => {
                entry.lease_expires = Some(now + duration);
                true
            }
            _ => false,
        }
    }

    /// Evicts every leased registration whose lease expired at or before
    /// `now`; returns the evicted service names.
    pub fn expire(&mut self, now: SimTime) -> Vec<String> {
        let mut evicted = Vec::new();
        self.entries.retain(|e| match e.lease_expires {
            Some(expiry) if expiry <= now => {
                evicted.push(e.name.clone());
                false
            }
            _ => true,
        });
        evicted
    }

    /// Evicts every registration homed on `node` (the host crashed);
    /// returns the evicted service names. Entries without a recorded
    /// home node are kept.
    pub fn purge_node(&mut self, node: NodeId) -> Vec<String> {
        let mut evicted = Vec::new();
        self.entries.retain(|e| {
            if e.home_node == Some(node) {
                evicted.push(e.name.clone());
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> ServiceSpec {
        ServiceSpec::new(name)
    }

    #[test]
    fn attribute_lookup_matches_all_pairs() {
        let mut ls = LookupService::new();
        ls.register(
            ServiceRegistration::new(spec("mail"))
                .attribute("type", "mail")
                .attribute("secure", "yes"),
        );
        ls.register(ServiceRegistration::new(spec("video")).attribute("type", "video"));

        assert_eq!(ls.lookup(&[("type", "mail")]).len(), 1);
        assert_eq!(ls.lookup(&[("type", "mail"), ("secure", "yes")]).len(), 1);
        assert_eq!(ls.lookup(&[("type", "mail"), ("secure", "no")]).len(), 0);
        assert_eq!(ls.lookup(&[]).len(), 2);
    }

    #[test]
    fn name_is_an_implicit_attribute() {
        let mut ls = LookupService::new();
        ls.register(ServiceRegistration::new(spec("mail")));
        assert_eq!(ls.lookup(&[("name", "mail")]).len(), 1);
        assert!(ls.by_name("mail").is_some());
        assert!(ls.by_name("other").is_none());
    }

    #[test]
    fn reregistration_replaces() {
        let mut ls = LookupService::new();
        ls.register(ServiceRegistration::new(spec("mail")).proxy_code_size(1));
        ls.register(ServiceRegistration::new(spec("mail")).proxy_code_size(2));
        assert_eq!(ls.len(), 1);
        assert_eq!(ls.by_name("mail").unwrap().proxy_code_size, 2);
    }

    #[test]
    fn unregister_removes() {
        let mut ls = LookupService::new();
        ls.register(ServiceRegistration::new(spec("mail")));
        assert!(ls.unregister("mail"));
        assert!(!ls.unregister("mail"));
        assert!(ls.is_empty());
    }

    #[test]
    fn leases_expire_unless_renewed() {
        let mut ls = LookupService::new();
        let t0 = SimTime::ZERO;
        let lease = SimDuration::from_secs(2);
        ls.register(ServiceRegistration::new(spec("mail")).leased(t0, lease));
        ls.register(ServiceRegistration::new(spec("video")).leased(t0, lease));
        ls.register(ServiceRegistration::new(spec("eternal")));

        // Renew mail at t=1s; at t=2s only video's lease has lapsed.
        assert!(ls.renew_lease("mail", t0 + SimDuration::from_secs(1), lease));
        let evicted = ls.expire(t0 + SimDuration::from_secs(2));
        assert_eq!(evicted, vec!["video".to_string()]);
        assert!(ls.by_name("mail").is_some());
        assert!(ls.by_name("eternal").is_some());
        // Unleased entries never expire, and renewing them fails.
        assert!(!ls.renew_lease("eternal", t0, lease));
        assert!(ls
            .expire(SimTime::from_nanos(u64::MAX))
            .contains(&"mail".to_string()));
        assert!(ls.by_name("eternal").is_some());
    }

    #[test]
    fn purge_node_evicts_homed_entries_only() {
        let mut ls = LookupService::new();
        ls.register(ServiceRegistration::new(spec("mail")).home_node(NodeId(2)));
        ls.register(ServiceRegistration::new(spec("video")).home_node(NodeId(3)));
        ls.register(ServiceRegistration::new(spec("homeless")));
        let evicted = ls.purge_node(NodeId(2));
        assert_eq!(evicted, vec!["mail".to_string()]);
        assert_eq!(ls.len(), 2);
        assert!(ls.purge_node(NodeId(9)).is_empty());
    }
}
