//! The attribute-based lookup service (Jini-style, Figure 1 steps 1–2).
//!
//! Services register a meta-description (their specification) together
//! with free-form attributes and a generic proxy; clients look services
//! up by attribute match and download the proxy.

use ps_spec::ServiceSpec;
use std::collections::BTreeMap;

/// A registered service entry.
#[derive(Debug, Clone)]
pub struct ServiceRegistration {
    /// Service name (also registered as attribute `name`).
    pub name: String,
    /// Free-form attributes for discovery (`type = mail`, …).
    pub attributes: BTreeMap<String, String>,
    /// The declarative specification uploaded at registration.
    pub spec: ServiceSpec,
    /// Size of the generic proxy the client downloads, bytes.
    pub proxy_code_size: u64,
}

impl ServiceRegistration {
    /// Registers `spec` under its own name with no extra attributes and a
    /// default 32 KiB proxy.
    pub fn new(spec: ServiceSpec) -> Self {
        ServiceRegistration {
            name: spec.name.clone(),
            attributes: BTreeMap::new(),
            spec,
            proxy_code_size: 32 * 1024,
        }
    }

    /// Adds a discovery attribute.
    pub fn attribute(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.insert(key.into(), value.into());
        self
    }

    /// Sets the proxy code size.
    pub fn proxy_code_size(mut self, bytes: u64) -> Self {
        self.proxy_code_size = bytes;
        self
    }

    fn matches(&self, query: &[(&str, &str)]) -> bool {
        query.iter().all(|(k, v)| {
            if *k == "name" {
                self.name == *v
            } else {
                self.attributes.get(*k).is_some_and(|a| a == v)
            }
        })
    }
}

/// The lookup service.
#[derive(Debug, Default)]
pub struct LookupService {
    entries: Vec<ServiceRegistration>,
}

impl LookupService {
    /// Creates an empty lookup service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service (replacing an entry with the same name).
    pub fn register(&mut self, registration: ServiceRegistration) {
        self.entries.retain(|e| e.name != registration.name);
        self.entries.push(registration);
    }

    /// Removes a service by name; returns whether it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.name != name);
        self.entries.len() != before
    }

    /// All registrations whose attributes match every `(key, value)` pair
    /// in the query.
    pub fn lookup(&self, query: &[(&str, &str)]) -> Vec<&ServiceRegistration> {
        self.entries.iter().filter(|e| e.matches(query)).collect()
    }

    /// Registration by exact name.
    pub fn by_name(&self, name: &str) -> Option<&ServiceRegistration> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no services are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str) -> ServiceSpec {
        ServiceSpec::new(name)
    }

    #[test]
    fn attribute_lookup_matches_all_pairs() {
        let mut ls = LookupService::new();
        ls.register(
            ServiceRegistration::new(spec("mail"))
                .attribute("type", "mail")
                .attribute("secure", "yes"),
        );
        ls.register(ServiceRegistration::new(spec("video")).attribute("type", "video"));

        assert_eq!(ls.lookup(&[("type", "mail")]).len(), 1);
        assert_eq!(ls.lookup(&[("type", "mail"), ("secure", "yes")]).len(), 1);
        assert_eq!(ls.lookup(&[("type", "mail"), ("secure", "no")]).len(), 0);
        assert_eq!(ls.lookup(&[]).len(), 2);
    }

    #[test]
    fn name_is_an_implicit_attribute() {
        let mut ls = LookupService::new();
        ls.register(ServiceRegistration::new(spec("mail")));
        assert_eq!(ls.lookup(&[("name", "mail")]).len(), 1);
        assert!(ls.by_name("mail").is_some());
        assert!(ls.by_name("other").is_none());
    }

    #[test]
    fn reregistration_replaces() {
        let mut ls = LookupService::new();
        ls.register(ServiceRegistration::new(spec("mail")).proxy_code_size(1));
        ls.register(ServiceRegistration::new(spec("mail")).proxy_code_size(2));
        assert_eq!(ls.len(), 1);
        assert_eq!(ls.by_name("mail").unwrap().proxy_code_size, 2);
    }

    #[test]
    fn unregister_removes() {
        let mut ls = LookupService::new();
        ls.register(ServiceRegistration::new(spec("mail")));
        assert!(ls.unregister("mail"));
        assert!(!ls.unregister("mail"));
        assert!(ls.is_empty());
    }
}
