//! The cache-coherence layer (Section 3.2).
//!
//! Smock keeps replicated component instances consistent at view
//! granularity with a directory-based protocol: the primary's directory
//! records which replicas hold which portion of the state (their
//! *scope*); *conflict maps* decide when an update at one view must
//! trigger coherence actions at another; and pluggable weak-consistency
//! policies decide **when** accumulated updates propagate — immediately
//! (write-through), after a bounded number of unpropagated messages (the
//! paper's "limits the number of unpropagated messages at each replica"),
//! on a timer, or never (the measurement baseline).

use ps_sim::{SimDuration, SimTime};
use std::collections::BTreeSet;

/// When a replica propagates its accumulated updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoherencePolicy {
    /// Never propagate (baseline: scenarios DS0 / SS0).
    None,
    /// Propagate every update immediately.
    WriteThrough,
    /// Propagate once `limit` updates are unpropagated; the update that
    /// would exceed the limit blocks behind the flush.
    CountLimit(u32),
    /// Propagate on a fixed period.
    TimeDriven(SimDuration),
}

/// What the replica should do after recording an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushDecision {
    /// Keep accumulating.
    Accumulate,
    /// Send the accumulated batch upstream now.
    Flush,
    /// The batch is full *and* a flush is already in flight: the update
    /// must wait for the acknowledgement.
    Block,
}

/// Per-replica coherence state machine.
#[derive(Debug, Clone)]
pub struct ReplicaCoherence {
    /// The governing policy.
    pub policy: CoherencePolicy,
    unpropagated: u32,
    unpropagated_bytes: u64,
    flush_in_flight: bool,
    flushes: u64,
    last_flush: SimTime,
}

impl ReplicaCoherence {
    /// Creates the state machine for a policy.
    pub fn new(policy: CoherencePolicy) -> Self {
        ReplicaCoherence {
            policy,
            unpropagated: 0,
            unpropagated_bytes: 0,
            flush_in_flight: false,
            flushes: 0,
            last_flush: SimTime::ZERO,
        }
    }

    /// Records a local update of `bytes` and decides what to do.
    pub fn record_update(&mut self, bytes: u64) -> FlushDecision {
        self.unpropagated += 1;
        self.unpropagated_bytes += bytes;
        match self.policy {
            CoherencePolicy::None => FlushDecision::Accumulate,
            CoherencePolicy::WriteThrough => {
                if self.flush_in_flight {
                    FlushDecision::Block
                } else {
                    FlushDecision::Flush
                }
            }
            CoherencePolicy::CountLimit(limit) => {
                if self.unpropagated < limit {
                    FlushDecision::Accumulate
                } else if self.flush_in_flight {
                    FlushDecision::Block
                } else {
                    FlushDecision::Flush
                }
            }
            CoherencePolicy::TimeDriven(_) => FlushDecision::Accumulate,
        }
    }

    /// Reverses one [`record_update`](Self::record_update) — used when
    /// the caller decides not to apply the update after a
    /// [`FlushDecision::Block`] (it will be re-recorded when the blocked
    /// update is finally applied).
    pub fn unrecord_update(&mut self, bytes: u64) {
        self.unpropagated = self.unpropagated.saturating_sub(1);
        self.unpropagated_bytes = self.unpropagated_bytes.saturating_sub(bytes);
    }

    /// For time-driven policies: whether the period elapsed at `now`.
    pub fn timer_due(&self, now: SimTime) -> bool {
        match self.policy {
            CoherencePolicy::TimeDriven(period) => {
                self.unpropagated > 0
                    && !self.flush_in_flight
                    && now.since(self.last_flush) >= period
            }
            _ => false,
        }
    }

    /// Marks the start of a flush; returns `(messages, bytes)` of the
    /// batch being propagated and resets the accumulation counters.
    #[must_use = "the batch size is the only record of what this flush propagates"]
    pub fn begin_flush(&mut self, now: SimTime) -> (u32, u64) {
        debug_assert!(!self.flush_in_flight);
        let batch = (self.unpropagated, self.unpropagated_bytes);
        self.unpropagated = 0;
        self.unpropagated_bytes = 0;
        self.flush_in_flight = true;
        self.flushes += 1;
        self.last_flush = now;
        batch
    }

    /// Marks the flush acknowledged.
    pub fn end_flush(&mut self) {
        self.flush_in_flight = false;
    }

    /// Whether a flush is awaiting acknowledgement.
    pub fn flush_in_flight(&self) -> bool {
        self.flush_in_flight
    }

    /// Updates accumulated since the last flush.
    pub fn unpropagated(&self) -> u32 {
        self.unpropagated
    }

    /// Total flushes started.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }
}

/// The scope of state a view replica holds, as a set of opaque keys
/// (account names, shard ids, …). Two scopes conflict when they share a
/// key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewScope {
    keys: BTreeSet<String>,
}

impl ViewScope {
    /// Empty scope (conflicts with nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Scope over the given keys.
    pub fn of<I, S>(keys: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ViewScope {
            keys: keys.into_iter().map(Into::into).collect(),
        }
    }

    /// Adds a key.
    pub fn insert(&mut self, key: impl Into<String>) {
        self.keys.insert(key.into());
    }

    /// Whether the scopes share any key.
    pub fn conflicts(&self, other: &ViewScope) -> bool {
        // Iterate the smaller set.
        let (small, large) = if self.keys.len() <= other.keys.len() {
            (&self.keys, &other.keys)
        } else {
            (&other.keys, &self.keys)
        };
        small.iter().any(|k| large.contains(k))
    }

    /// Whether the scope covers `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.keys.contains(key)
    }

    /// Iterates the keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the scope is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// A replica entry in the primary's directory.
#[derive(Debug, Clone)]
pub struct ReplicaEntry<Id> {
    /// Replica identifier (typically an instance id).
    pub id: Id,
    /// State scope the replica holds.
    pub scope: ViewScope,
}

/// The primary-side directory: which replicas hold what, and which of
/// them an update conflicts with (the dynamic conflict map).
#[derive(Debug, Clone, Default)]
pub struct Directory<Id> {
    replicas: Vec<ReplicaEntry<Id>>,
}

impl<Id: Copy + PartialEq> Directory<Id> {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Directory {
            replicas: Vec::new(),
        }
    }

    /// Registers (or re-registers) a replica with its scope.
    pub fn register(&mut self, id: Id, scope: ViewScope) {
        if let Some(entry) = self.replicas.iter_mut().find(|r| r.id == id) {
            entry.scope = scope;
        } else {
            self.replicas.push(ReplicaEntry { id, scope });
        }
    }

    /// Removes a replica.
    pub fn unregister(&mut self, id: Id) {
        self.replicas.retain(|r| r.id != id);
    }

    /// Replicas whose scope conflicts with an update touching `keys`,
    /// excluding `origin` (the replica the update came from, if any).
    pub fn conflicting(&self, keys: &ViewScope, origin: Option<Id>) -> Vec<Id> {
        self.replicas
            .iter()
            .filter(|r| origin != Some(r.id) && r.scope.conflicts(keys))
            .map(|r| r.id)
            .collect()
    }

    /// All registered replicas.
    pub fn replicas(&self) -> &[ReplicaEntry<Id>] {
        &self.replicas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_limit_accumulates_then_flushes() {
        let mut rc = ReplicaCoherence::new(CoherencePolicy::CountLimit(3));
        assert_eq!(rc.record_update(100), FlushDecision::Accumulate);
        assert_eq!(rc.record_update(100), FlushDecision::Accumulate);
        assert_eq!(rc.record_update(100), FlushDecision::Flush);
        let (n, bytes) = rc.begin_flush(SimTime::ZERO);
        assert_eq!((n, bytes), (3, 300));
        // While the flush is in flight, a full batch blocks.
        assert_eq!(rc.record_update(100), FlushDecision::Accumulate);
        assert_eq!(rc.record_update(100), FlushDecision::Accumulate);
        assert_eq!(rc.record_update(100), FlushDecision::Block);
        rc.end_flush();
        assert!(!rc.flush_in_flight());
        assert_eq!(rc.unpropagated(), 3);
    }

    #[test]
    fn write_through_flushes_every_update() {
        let mut rc = ReplicaCoherence::new(CoherencePolicy::WriteThrough);
        assert_eq!(rc.record_update(10), FlushDecision::Flush);
        assert_eq!(rc.begin_flush(SimTime::ZERO), (1, 10));
        assert_eq!(rc.record_update(10), FlushDecision::Block);
        rc.end_flush();
        assert_eq!(rc.record_update(10), FlushDecision::Flush);
    }

    #[test]
    fn none_policy_never_flushes() {
        let mut rc = ReplicaCoherence::new(CoherencePolicy::None);
        for _ in 0..10_000 {
            assert_eq!(rc.record_update(1), FlushDecision::Accumulate);
        }
        assert_eq!(rc.flushes(), 0);
    }

    #[test]
    fn time_driven_uses_timer() {
        let mut rc =
            ReplicaCoherence::new(CoherencePolicy::TimeDriven(SimDuration::from_millis(500)));
        assert_eq!(rc.record_update(1), FlushDecision::Accumulate);
        assert!(!rc.timer_due(SimTime::from_nanos(100_000_000)));
        assert!(rc.timer_due(SimTime::from_nanos(500_000_000)));
        assert_eq!(rc.begin_flush(SimTime::from_nanos(500_000_000)), (1, 1));
        assert!(!rc.timer_due(SimTime::from_nanos(999_000_000)));
        rc.end_flush();
        // Nothing unpropagated -> not due.
        assert!(!rc.timer_due(SimTime::from_nanos(2_000_000_000)));
    }

    #[test]
    fn scopes_conflict_on_shared_keys() {
        let a = ViewScope::of(["alice", "bob"]);
        let b = ViewScope::of(["bob", "carol"]);
        let c = ViewScope::of(["dave"]);
        assert!(a.conflicts(&b));
        assert!(!a.conflicts(&c));
        assert!(!ViewScope::new().conflicts(&a));
    }

    #[test]
    fn directory_finds_conflicting_replicas() {
        let mut dir: Directory<u32> = Directory::new();
        dir.register(1, ViewScope::of(["alice"]));
        dir.register(2, ViewScope::of(["bob"]));
        dir.register(3, ViewScope::of(["alice", "bob"]));
        let hit = dir.conflicting(&ViewScope::of(["alice"]), None);
        assert_eq!(hit, vec![1, 3]);
        let excl = dir.conflicting(&ViewScope::of(["alice"]), Some(1));
        assert_eq!(excl, vec![3]);
        dir.unregister(3);
        assert_eq!(dir.conflicting(&ViewScope::of(["alice"]), None), vec![1]);
    }

    #[test]
    fn reregistration_updates_scope() {
        let mut dir: Directory<u32> = Directory::new();
        dir.register(1, ViewScope::of(["alice"]));
        dir.register(1, ViewScope::of(["bob"]));
        assert_eq!(dir.replicas().len(), 1);
        assert!(dir.conflicting(&ViewScope::of(["alice"]), None).is_empty());
    }
}
