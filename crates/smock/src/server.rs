//! The generic proxy and generic server (Figure 1).
//!
//! Service registration uploads a generic proxy into the lookup service
//! (step 1). A client downloads the proxy (step 2) and sends its request
//! plus credentials to the generic server (step 3), which invokes the
//! planning module (step 4) and drives component deployment (step 5);
//! finally the generic proxy replaces itself with a service-specific
//! proxy bound to the root instance. This module implements that whole
//! timeline over the simulated world and reports the one-time costs the
//! paper quotes (≈10 s end to end in their configuration).

use crate::component::InstanceId;
use crate::deploy::{self, DeployError, Deployment, STARTUP_DELAY};
use crate::lookup::{LookupService, ServiceRegistration};
use crate::registry::ComponentRegistry;
use crate::world::World;
use ps_net::{shortest_route, NodeId, PropertyTranslator};
use ps_planner::{
    HierMemo, Plan, PlanError, PlanStats, Planner, PlannerConfig, RepairContext, ServiceRequest,
};
use ps_sim::{SimDuration, SimTime};
use ps_trace::Tracer;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// One-time connection costs (Section 4.2's "costs not reflected in
/// Figure 7": proxy download, planning, component deployment, startup).
#[derive(Debug, Clone, Copy, Default)]
pub struct OneTimeCosts {
    /// Downloading the generic proxy from the lookup service, ms
    /// (simulated network time).
    pub proxy_download_ms: f64,
    /// Planning time, ms (host wall-clock — the planner runs for real).
    pub planning_ms: f64,
    /// Blueprint transfer time, ms (simulated; longest transfer).
    pub deploy_transfer_ms: f64,
    /// Component startup, ms (simulated; includes initialization).
    pub startup_ms: f64,
    /// Planner search statistics for this connection (mappings
    /// evaluated, prune counts, route-table build time, plan-cache
    /// hits).
    pub plan_stats: PlanStats,
}

impl OneTimeCosts {
    /// Total one-time cost in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.proxy_download_ms + self.planning_ms + self.deploy_transfer_ms + self.startup_ms
    }
}

impl fmt::Display for OneTimeCosts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "proxy {:.1} ms + planning {:.3} ms + deploy {:.1} ms + startup {:.1} ms = {:.1} ms \
             ({} evals, {} prunes, {} bound cuts, table {} µs, {} cache hits)",
            self.proxy_download_ms,
            self.planning_ms,
            self.deploy_transfer_ms,
            self.startup_ms,
            self.total_ms(),
            self.plan_stats.mappings_evaluated,
            self.plan_stats.prunes,
            self.plan_stats.bound_prunes,
            self.plan_stats.route_table_build_us,
            self.plan_stats.plan_cache_hits,
        )
    }
}

/// A live client connection: the service-specific proxy state after the
/// generic proxy replaced itself.
#[derive(Debug, Clone)]
pub struct Connection {
    /// The root instance the client's proxy is bound to.
    pub root: InstanceId,
    /// The plan that produced the deployment.
    pub plan: Plan,
    /// The executed deployment.
    pub deployment: Deployment,
    /// One-time costs incurred.
    pub costs: OneTimeCosts,
    /// Virtual time at which the connection is usable.
    pub ready_at: SimTime,
}

/// Why a connection attempt failed.
#[derive(Debug)]
pub enum ConnectError {
    /// The service is not registered.
    UnknownService(String),
    /// The planner found no feasible deployment.
    Planning(PlanError),
    /// The deployment engine failed.
    Deploy(DeployError),
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::UnknownService(s) => write!(f, "service `{s}` is not registered"),
            ConnectError::Planning(e) => write!(f, "planning failed: {e}"),
            ConnectError::Deploy(e) => write!(f, "deployment failed: {e}"),
        }
    }
}

impl std::error::Error for ConnectError {}

impl From<PlanError> for ConnectError {
    fn from(e: PlanError) -> Self {
        ConnectError::Planning(e)
    }
}

impl From<DeployError> for ConnectError {
    fn from(e: DeployError) -> Self {
        ConnectError::Deploy(e)
    }
}

/// Cache key for a completed planning run: service name, network epoch,
/// and the canonical (Debug) rendering of the fully-resolved request —
/// which embeds the client, rate, pins, requirements, *and* the
/// live-instance snapshot the planner saw. All request maps are
/// `BTreeMap`-backed, so the rendering is deterministic.
type PlanCacheKey = (String, u64, String);

/// The generic server: lookup service + planner + deployment engine.
pub struct GenericServer {
    /// The attribute-based lookup service.
    pub lookup: LookupService,
    /// Component factories (per node wrapper; identical everywhere in
    /// the simulation).
    pub registry: ComponentRegistry,
    /// Credential → property translator supplied by the service.
    pub translator: Box<dyn PropertyTranslator + Send + Sync>,
    /// Planner configuration.
    pub planner_config: PlannerConfig,
    /// The node hosting the generic server and lookup service (and the
    /// default code origin).
    pub home: NodeId,
    /// Memo of completed planning runs. Keyed by [`PlanCacheKey`], so a
    /// link-condition change (epoch bump) or any instance deployment /
    /// retirement (live-set change) makes old entries unreachable; they
    /// are also swept eagerly on insert and by
    /// [`GenericServer::invalidate_plans`].
    plan_cache: Mutex<HashMap<PlanCacheKey, Plan>>,
    /// Shared hierarchical-planning memo: the region map, lazy route
    /// rows, and per-region segment shortlists, shared by every connect
    /// and heal-pass repair this server runs (used only when
    /// `planner_config.hier` is set).
    hier_memo: HierMemo,
    /// Tracer for the request lifecycle (disabled by default). Each
    /// connection gets a `conn-<n>` scope tying its `lookup` / `plan` /
    /// `transfer` / `deploy` spans together for breakdown analysis.
    tracer: Tracer,
    /// Monotone connection counter feeding the `conn-<n>` scopes.
    next_conn: AtomicU64,
}

impl GenericServer {
    /// Creates a generic server homed on `home`.
    pub fn new(home: NodeId, translator: Box<dyn PropertyTranslator + Send + Sync>) -> Self {
        GenericServer {
            lookup: LookupService::new(),
            registry: ComponentRegistry::new(),
            translator,
            planner_config: PlannerConfig::default(),
            home,
            plan_cache: Mutex::new(HashMap::new()),
            hier_memo: HierMemo::new(),
            tracer: Tracer::disabled(),
            next_conn: AtomicU64::new(0),
        }
    }

    /// Installs a tracer for the connection lifecycle; the planner
    /// configuration inherits it so planning statistics land in the same
    /// registry.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.planner_config.tracer = tracer.clone();
        self.tracer = tracer;
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Drops every cached plan. Staleness is already prevented by the
    /// cache key (network epoch + live-instance snapshot); this is the
    /// explicit hammer for callers that mutate state the planner cannot
    /// see, e.g. swapping component factories in the registry.
    pub fn invalidate_plans(&self) {
        self.plan_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
    }

    /// Number of cached plans (test/diagnostic aid).
    pub fn cached_plan_count(&self) -> usize {
        self.plan_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Registers a service (Figure 1, step 1).
    pub fn register_service(&mut self, registration: ServiceRegistration) {
        self.lookup.register(registration);
    }

    /// Serves a client connection end to end: proxy download, planning,
    /// deployment, proxy swap.
    pub fn connect(
        &self,
        world: &mut World,
        service: &str,
        request: &ServiceRequest,
    ) -> Result<Connection, ConnectError> {
        self.connect_inner(world, service, request, None)
    }

    /// Like [`connect`](Self::connect), but warm-starts planning from a
    /// surviving plan ([`Planner::plan_repair`]): the healer hands in the
    /// batched dirty sets of one heal pass plus the incrementally
    /// repaired route table, and planning re-solves only the touched
    /// chain positions before the exact (seeded) sweep. The plan cache
    /// still short-circuits when an identical request was already planned
    /// at this epoch.
    pub fn connect_repair(
        &self,
        world: &mut World,
        service: &str,
        request: &ServiceRequest,
        repair: &RepairContext<'_>,
    ) -> Result<Connection, ConnectError> {
        self.connect_inner(world, service, request, Some(repair))
    }

    fn connect_inner(
        &self,
        world: &mut World,
        service: &str,
        request: &ServiceRequest,
        repair: Option<&RepairContext<'_>>,
    ) -> Result<Connection, ConnectError> {
        let registration = self
            .lookup
            .by_name(service)
            .ok_or_else(|| ConnectError::UnknownService(service.to_owned()))?;

        let scope = format!("conn-{}", self.next_conn.fetch_add(1, Ordering::Relaxed));
        let t0 = world.now().as_nanos();
        self.tracer.count("server.connects", 1);
        let connect_span = self.tracer.enter_span(
            "smock.server",
            "connect",
            t0,
            vec![("scope", scope.clone().into()), ("service", service.into())],
        );

        // The client's attribute query against the lookup service: one
        // small request/response exchange, modelled like any other
        // transfer (the registry itself answers instantly).
        let lookup_rtt = 2 * transfer_time(world, request.client_node, self.home, 512).as_nanos();
        self.tracer.span_closed(
            "smock.server",
            "lookup",
            t0,
            t0 + lookup_rtt,
            vec![("scope", scope.clone().into())],
        );

        // Step 2: the client downloads the generic proxy.
        let proxy_download = transfer_time(
            world,
            self.home,
            request.client_node,
            registration.proxy_code_size,
        );

        // Step 4: planning (measured in real wall-clock time; the planner
        // actually runs here, it is not a modelled constant). Instances
        // this server already deployed are attachable — the paper's
        // Seattle clients chain onto San Diego's pre-deployed view server
        // exactly this way.
        let planner = Planner::with_config(registration.spec.clone(), self.planner_config.clone());
        let mut request = request.clone();
        for idx in 0..world.instance_count() {
            let id = crate::component::InstanceId(idx as u32);
            if world.is_retired(id) {
                continue;
            }
            let info = world.instance(id);
            if registration.spec.get_component(&info.component).is_some() {
                request = request.existing_instance(
                    info.component.clone(),
                    info.node,
                    info.factors.clone(),
                );
            }
        }
        // Wall-clock accounting only (planner actually runs here, so its
        // host cost is real): recorded under a `_wall_` registry metric,
        // never visible to virtual time or the event stream.
        let started = ps_trace::WallTimer::start();
        let epoch = world.network().epoch();
        let cache_key: PlanCacheKey = (service.to_owned(), epoch, format!("{request:?}"));
        let cached = self
            .plan_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&cache_key)
            .cloned();
        let cache_hit = cached.is_some();
        let plan = match cached {
            Some(mut plan) => {
                // The cached plan was computed against the identical
                // network epoch and live-instance set, so deployment
                // below reuses instances exactly as the original did.
                plan.stats.plan_cache_hits += 1;
                plan
            }
            None => {
                let plan = if let Some(ctx) = repair {
                    self.tracer.count("server.plan_repairs", 1);
                    if self.planner_config.hier.is_some() {
                        planner.plan_repair_with_memo(
                            world.network(),
                            self.translator.as_ref(),
                            &request,
                            ctx,
                            &self.hier_memo,
                        )?
                    } else {
                        planner.plan_repair(
                            world.network(),
                            self.translator.as_ref(),
                            &request,
                            ctx,
                        )?
                    }
                } else if self.planner_config.hier.is_some() {
                    planner.plan_hierarchical(
                        world.network(),
                        self.translator.as_ref(),
                        &request,
                        &self.hier_memo,
                    )?
                } else if self.planner_config.threads > 1 {
                    planner.plan_parallel(
                        world.network(),
                        self.translator.as_ref(),
                        &request,
                        self.planner_config.threads,
                    )?
                } else {
                    planner.plan(world.network(), self.translator.as_ref(), &request)?
                };
                let mut cache = self
                    .plan_cache
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                // Entries from older epochs can never be hit again
                // (the epoch counter is monotonic); sweep them so the
                // cache tracks the live topology only.
                cache.retain(|(_, e, _), _| *e == epoch);
                cache.insert(cache_key, plan.clone());
                plan
            }
        };
        let planning_ms = started.elapsed_ms();
        self.tracer.count(
            if cache_hit {
                "server.plan_cache_hits"
            } else {
                "server.plan_cache_misses"
            },
            1,
        );
        // Planning runs in host wall-clock time, which is banned from the
        // deterministic event stream: the span is zero-width in virtual
        // time and carries only the deterministic search statistics; the
        // wall-clock cost goes to the registry histogram.
        self.tracer.observe("server.planning_wall_ms", planning_ms);
        self.tracer.span_closed(
            "smock.server",
            "plan",
            t0 + lookup_rtt,
            t0 + lookup_rtt,
            vec![
                ("scope", scope.clone().into()),
                ("cache_hit", cache_hit.into()),
                ("evals", plan.stats.mappings_evaluated.into()),
                ("prunes", plan.stats.prunes.into()),
                ("bound_prunes", plan.stats.bound_prunes.into()),
            ],
        );

        // Step 5: deployment.
        let origin = request.origin.unwrap_or(self.home);
        let before = world.now();
        let deployment = deploy::execute(
            world,
            &self.registry,
            self.translator.as_ref(),
            &registration.spec,
            &plan,
            origin,
        )?;
        let deploy_span = deployment.ready_at.since(before);
        let startup_ms = if deployment.created > 0 {
            STARTUP_DELAY.as_millis_f64()
        } else {
            0.0
        };
        let costs = OneTimeCosts {
            proxy_download_ms: proxy_download.as_millis_f64(),
            planning_ms,
            deploy_transfer_ms: deploy_span.as_millis_f64().max(startup_ms) - startup_ms,
            startup_ms,
            plan_stats: plan.stats,
        };
        let ready_at = deployment.ready_at + proxy_download;
        self.tracer.observe(
            "server.connect_ms",
            ready_at.as_nanos().saturating_sub(t0) as f64 / 1e6,
        );
        if self.tracer.enabled() {
            let startup_ns = if deployment.created > 0 {
                STARTUP_DELAY.as_nanos()
            } else {
                0
            };
            let before_ns = before.as_nanos();
            let transfer_ns =
                proxy_download.as_nanos() + deploy_span.as_nanos().saturating_sub(startup_ns);
            self.tracer.span_closed(
                "smock.server",
                "transfer",
                before_ns,
                before_ns + transfer_ns,
                vec![
                    ("scope", scope.clone().into()),
                    ("bytes", deployment.bytes_shipped.into()),
                    ("blueprints", deployment.blueprints.len().into()),
                ],
            );
            let ready_ns = deployment.ready_at.as_nanos();
            self.tracer.span_closed(
                "smock.server",
                "deploy",
                ready_ns - startup_ns,
                ready_ns,
                vec![
                    ("scope", scope.clone().into()),
                    ("created", deployment.created.into()),
                    ("reused", deployment.reused.into()),
                ],
            );
            self.tracer.exit_span(
                "smock.server",
                "connect",
                connect_span,
                ready_at.as_nanos(),
                vec![("root", deployment.root().0.into())],
            );
        }
        Ok(Connection {
            root: deployment.root(),
            ready_at,
            plan,
            deployment,
            costs,
        })
    }
}

impl fmt::Debug for GenericServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GenericServer")
            .field("home", &self.home)
            .field("services", &self.lookup.len())
            .finish()
    }
}

/// A pool of generic servers: the framework "ensures that the generic
/// server does not become a bottleneck by spreading out requests for
/// different services among multiple instances" — each service name
/// hashes to one pool member, which handles its registrations and
/// connections.
#[derive(Default)]
pub struct GenericServerPool {
    members: Vec<GenericServer>,
}

impl GenericServerPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member server.
    pub fn add(&mut self, server: GenericServer) -> &mut Self {
        self.members.push(server);
        self
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    fn index_for(&self, service: &str) -> usize {
        // FNV-1a over the service name, stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in service.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        (h % self.members.len() as u64) as usize
    }

    /// The member responsible for `service`.
    pub fn member_for(&self, service: &str) -> &GenericServer {
        &self.members[self.index_for(service)]
    }

    /// Mutable access to the member responsible for `service` (for
    /// registration).
    pub fn member_for_mut(&mut self, service: &str) -> &mut GenericServer {
        let idx = self.index_for(service);
        &mut self.members[idx]
    }

    /// Registers a service with its responsible member.
    pub fn register_service(&mut self, registration: ServiceRegistration) {
        let name = registration.name.clone();
        self.member_for_mut(&name).register_service(registration);
    }

    /// Connects through the responsible member.
    pub fn connect(
        &self,
        world: &mut World,
        service: &str,
        request: &ServiceRequest,
    ) -> Result<Connection, ConnectError> {
        self.member_for(service).connect(world, service, request)
    }
}

/// Simulated transfer time of `bytes` between two nodes (route latency +
/// serialization at the bottleneck), zero when local.
pub fn transfer_time(world: &World, from: NodeId, to: NodeId, bytes: u64) -> SimDuration {
    if from == to {
        return SimDuration::ZERO;
    }
    match shortest_route(world.network(), from, to) {
        Some(route) if !route.is_local() => {
            route.latency + SimDuration::from_secs_f64(bytes as f64 * 8.0 / route.bottleneck_bps)
        }
        _ => SimDuration::ZERO,
    }
}
