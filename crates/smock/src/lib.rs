//! # ps-smock — the Smock run-time system (Section 3.2)
//!
//! Smock ("Secure MObile Code, plus a k") is the run-time layer of the
//! partitionable services framework: a generic proxy and server backed by
//! an attribute-based lookup service, node wrappers that install and wire
//! components shipped to them, and a directory-based cache-coherence
//! layer for replicated data views.
//!
//! In this reproduction the run-time executes inside a deterministic
//! discrete-event [`World`]: deployed [`component::ComponentLogic`]
//! instances exchange messages over traffic-shaped links and FIFO node
//! CPUs, so every latency the paper measured on its Click-shaped testbed
//! has a physical counterpart here. Java's dynamic class loading is
//! replaced by a component factory [`registry`] plus blueprint shipping
//! (see DESIGN.md for the substitution argument).
//!
//! The crate's pieces, in the paper's order:
//!
//! * [`lookup`] — Jini-style attribute lookup (Figure 1, steps 1–2);
//! * [`server`] — the generic proxy / generic server timeline
//!   (steps 3–5), reporting the one-time costs of Section 4.2;
//! * [`registry`] / [`deploy`] — node wrappers: remote installation,
//!   instance reuse, linkage wiring;
//! * [`coherence`] — directory, conflict maps, and weak-consistency
//!   policies at view granularity;
//! * [`world`] / [`component`] — the simulated execution substrate.

#![warn(missing_docs)]

pub mod coherence;
pub mod component;
pub mod deploy;
pub mod fault;
pub mod lookup;
pub mod registry;
pub mod server;
pub mod world;

pub use coherence::{CoherencePolicy, Directory, FlushDecision, ReplicaCoherence, ViewScope};
pub use component::{
    Action, ComponentLogic, InstanceId, InstanceInfo, Outbox, Payload, RequestHandle,
};
pub use deploy::{DeployError, Deployment};
pub use fault::{
    DetectionMode, FailReport, InvokeError, LeaseConfig, LivenessEvent, LivenessKind, RetryPolicy,
};
pub use lookup::{LookupService, ServiceRegistration};
pub use ps_trace::Tracer;
pub use registry::{Blueprint, ComponentRegistry, Factory, FactoryArgs};
pub use server::{ConnectError, Connection, GenericServer, GenericServerPool, OneTimeCosts};
pub use world::World;

/// Convenience prelude for run-time users.
pub mod prelude {
    pub use crate::coherence::{
        CoherencePolicy, Directory, FlushDecision, ReplicaCoherence, ViewScope,
    };
    pub use crate::component::{ComponentLogic, InstanceId, Outbox, Payload, RequestHandle};
    pub use crate::deploy::Deployment;
    pub use crate::fault::{FailReport, InvokeError, LeaseConfig, LivenessEvent, RetryPolicy};
    pub use crate::lookup::{LookupService, ServiceRegistration};
    pub use crate::registry::{ComponentRegistry, FactoryArgs};
    pub use crate::server::{Connection, GenericServer, OneTimeCosts};
    pub use crate::world::World;
}
