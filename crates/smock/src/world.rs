//! The simulated Smock world: deployed instances exchanging messages
//! over the traffic-shaped network.
//!
//! Messages travel hop-by-hop (store-and-forward) over the links of
//! their route, queueing at busy links exactly as the Click-shaped
//! testbed links did; request handling charges the component's declared
//! per-request CPU cost on the hosting node's FIFO CPU. The world is
//! deterministic: equal seeds and workloads replay identically.

use crate::component::{
    Action, ComponentLogic, InstanceId, InstanceInfo, Outbox, Payload, RequestHandle,
};
use crate::fault::{
    DetectionMode, FailReport, InvokeError, LeaseConfig, LivenessEvent, LivenessKind, RetryPolicy,
};
use ps_net::{shortest_route, Network, NodeId};
use ps_sim::{
    CpuModel, Engine, FaultKind, FaultPlan, LinkModel, Percentiles, Rng, SimDuration, SimTime,
    Summary,
};
use ps_spec::{Behavior, ResolvedBindings};
use ps_trace::{Sampler, SamplerConfig, Tracer};
use std::collections::{BTreeMap, HashMap};

/// Directed hop sequence memo per (from, to) node pair.
type RouteMemo = HashMap<(u32, u32), Option<Vec<(ps_net::LinkId, u8)>>>;

/// Events driving the world.
#[derive(Debug)]
enum Event {
    /// A message is ready to enter hop `envelope.hop` of its route.
    Hop { msg: u64 },
    /// A message arrived at its destination node (CPU not yet charged).
    Deliver { msg: u64 },
    /// CPU service for a delivered message completed; run the handler.
    Process { msg: u64 },
    /// A component timer fired.
    Timer { instance: InstanceId, tag: u64 },
    /// Instance start callback.
    Start { instance: InstanceId },
    /// The timeout armed for attempt `attempt` of request `req` elapsed.
    RequestTimeout { req: u64, attempt: u32 },
    /// A crashed instance's last-renewed lease ran out: the failure is
    /// now *detected* and enters the liveness stream.
    LeaseExpire { instance: InstanceId },
    /// An injected fault from an installed [`FaultPlan`] fires.
    Fault { kind: FaultKind },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Expecting a reply correlated by the request id.
    Request { req: u64 },
    /// Reply to request `req`.
    Response { req: u64 },
    /// One-way.
    Notify,
}

struct Envelope {
    kind: Kind,
    from: InstanceId,
    to: InstanceId,
    /// `(link, direction)` per hop; direction 0 = a->b, 1 = b->a.
    hops: Vec<(ps_net::LinkId, u8)>,
    hop: usize,
    payload: Payload,
}

struct PendingRequest {
    caller: InstanceId,
    token: u64,
    /// Open `invoke` trace span (0 when tracing is disabled).
    span: u64,
    /// The caller's linkage index the request went out on; retries
    /// re-resolve the provider through it (post-replan retries then hit
    /// the replacement instance).
    linkage: usize,
    /// The request payload, kept for retransmission (`Rc`-cheap).
    payload: Payload,
    /// 1-based attempt counter.
    attempt: u32,
    /// When the first attempt was sent (drives the deadline check).
    first_issued: SimTime,
}

struct InstanceSlot {
    info: InstanceInfo,
    behavior: Behavior,
    logic: Option<Box<dyn ComponentLogic>>,
    /// Messages addressed here are re-sent to the forwarding target
    /// (set after a migration).
    forward: Option<InstanceId>,
    /// A retired instance drops everything addressed to it.
    retired: bool,
}

/// The time-series [`Sampler`] plus the cumulative totals its per-tick
/// delta series diff against.
struct SamplerState {
    sampler: Sampler,
    prev_link_bytes: u64,
    prev_events: u64,
    prev_lease_bytes: u64,
}

/// Analytic lease-renewal traffic accounting: renewals are charged to
/// link utilization in aggregate (never scheduled as events), so
/// enabling the accounting cannot perturb virtual-time outcomes.
struct LeaseTraffic {
    /// The node renewals flow to (the service's lookup home).
    home: NodeId,
    /// Wire bytes per renewal message.
    bytes_per_renewal: u64,
    /// Renewals up to this virtual time have been charged.
    watermark: SimTime,
    /// Total renewal bytes put on the network so far.
    total_bytes: u64,
}

/// Mutable world state (separated from the engine so event handlers can
/// borrow both).
struct State {
    net: Network,
    /// Full-duplex links: one shaping queue per direction.
    links: Vec<[LinkModel; 2]>,
    cpus: Vec<CpuModel>,
    instances: Vec<InstanceSlot>,
    envelopes: HashMap<u64, Envelope>,
    /// Keyed by request id. `BTreeMap` because the crash handler and
    /// caller-forwarding paths *iterate* it and the visit order reaches
    /// the trace stream (ps-lint D001); `envelopes` stays a `HashMap`
    /// since it is only ever accessed by key.
    pending: BTreeMap<u64, PendingRequest>,
    next_msg: u64,
    next_req: u64,
    metrics: BTreeMap<String, (Summary, Percentiles)>,
    messages_sent: u64,
    /// Memoized directed hop sequences per (from, to) node pair;
    /// invalidated whenever link conditions change.
    route_cache: RouteMemo,
    /// Host liveness (false = crashed). Distinct from the *network*'s
    /// `up` flags: a crashed host keeps routing intact and stays
    /// invisible to monitoring until its leases expire.
    node_up: Vec<bool>,
    /// Per-link message-loss probability while inside a loss window.
    loss: Vec<Option<f64>>,
    /// Seeded generator driving loss-window drops (see
    /// [`World::set_fault_seed`]).
    rng: Rng,
    /// Invoke-path retry policy; `None` keeps the historical
    /// silent-drop behaviour.
    retry: Option<RetryPolicy>,
    /// Lease parameters; `None` disables lease-based detection (crashes
    /// are reported to the liveness stream immediately).
    lease: Option<LeaseConfig>,
    /// Lease grant time per instance (parallel to `instances`).
    lease_granted: Vec<SimTime>,
    /// Outstanding lease expiries per crashed node; the `NodeDown`
    /// liveness event fires when the count reaches zero.
    down_pending: BTreeMap<u32, usize>,
    /// Detected-but-undrained liveness events.
    pending_liveness: Vec<LivenessEvent>,
    /// Aggregate time-series sampling (see [`World::enable_sampler`]).
    sampler: Option<SamplerState>,
    /// Lease-renewal traffic accounting (see
    /// [`World::account_lease_traffic`]).
    lease_traffic: Option<LeaseTraffic>,
}

/// The simulated runtime.
pub struct World {
    engine: Engine<Event>,
    state: State,
}

impl World {
    /// Builds a world over a network: one [`LinkModel`] per link and one
    /// [`CpuModel`] per node.
    pub fn new(net: Network) -> Self {
        let links = net
            .links()
            .iter()
            .map(|l| {
                [
                    LinkModel::new(l.latency, l.bandwidth_bps),
                    LinkModel::new(l.latency, l.bandwidth_bps),
                ]
            })
            .collect();
        let cpus: Vec<CpuModel> = net
            .nodes()
            .iter()
            .map(|n| CpuModel::new(n.cpu_speed))
            .collect();
        let node_up = vec![true; net.node_count()];
        let loss = vec![None; net.link_count()];
        World {
            engine: Engine::new(),
            state: State {
                net,
                links,
                cpus,
                instances: Vec::new(),
                envelopes: HashMap::new(),
                pending: BTreeMap::new(),
                next_msg: 0,
                next_req: 0,
                metrics: BTreeMap::new(),
                messages_sent: 0,
                route_cache: HashMap::new(),
                node_up,
                loss,
                rng: Rng::seed_from_u64(0),
                retry: None,
                lease: None,
                lease_granted: Vec::new(),
                down_pending: BTreeMap::new(),
                pending_liveness: Vec::new(),
                sampler: None,
                lease_traffic: None,
            },
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Installs a tracer on the world (and its engine). Message traffic,
    /// forwards, drops, and request `invoke` spans flow into it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.engine.set_tracer(tracer);
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        self.engine.tracer()
    }

    /// Publishes resource-occupancy gauges (per-direction link busy time,
    /// bytes carried, transmissions; per-node CPU busy time) into the
    /// tracer's registry. Link directions that never carried a
    /// transmission and CPUs that never ran a job are skipped entirely —
    /// at thousand-node scale most of both are idle, and emitting their
    /// all-zero keys would swamp the export. Call after (or during) a
    /// run; a no-op when tracing is disabled.
    pub fn publish_resource_metrics(&self) {
        let tracer = self.engine.tracer();
        if !tracer.enabled() {
            return;
        }
        for (i, directions) in self.state.links.iter().enumerate() {
            for (dir, link) in directions.iter().enumerate() {
                if link.transmissions() == 0 {
                    continue;
                }
                let prefix = format!("link.{i}.{dir}");
                tracer.gauge(
                    &format!("{prefix}.busy_ms"),
                    link.busy_time().as_millis_f64(),
                );
                tracer.gauge(&format!("{prefix}.bytes"), link.bytes_carried() as f64);
                tracer.gauge(
                    &format!("{prefix}.transmissions"),
                    link.transmissions() as f64,
                );
            }
        }
        for (i, cpu) in self.state.cpus.iter().enumerate() {
            if cpu.jobs() == 0 {
                continue;
            }
            tracer.gauge(&format!("cpu.{i}.busy_ms"), cpu.busy_time().as_millis_f64());
            tracer.gauge(&format!("cpu.{i}.jobs"), cpu.jobs() as f64);
        }
        if let Some(traffic) = &self.state.lease_traffic {
            tracer.gauge("lease.renewal_bytes", traffic.total_bytes as f64);
        }
    }

    /// Enables the time-series sampler: aggregate world metrics (link
    /// utilization, CPU busy, event-queue depth, live instances,
    /// lease-renewal bytes) are snapshotted on the first event dispatched
    /// at or after each virtual-time cadence boundary. Sampling schedules
    /// no events of its own, so it cannot alter the simulation's
    /// timeline; the series count is fixed regardless of world size.
    pub fn enable_sampler(&mut self, config: SamplerConfig) {
        self.state.sampler = Some(SamplerState {
            sampler: Sampler::new(config),
            prev_link_bytes: 0,
            prev_events: 0,
            prev_lease_bytes: 0,
        });
    }

    /// The collected time series, if sampling is enabled.
    pub fn sampler(&self) -> Option<&Sampler> {
        self.state.sampler.as_ref().map(|s| &s.sampler)
    }

    /// Forces a sample at the current virtual time regardless of the
    /// cadence (e.g. once after a run, to capture the final state).
    pub fn sample_now(&mut self) {
        take_sample(&self.engine, &mut self.state, true);
    }

    /// Enables analytic lease-renewal traffic accounting: each live
    /// instance's periodic renewals to `home` are charged to the links of
    /// its route as background utilization (bytes, transmissions, busy
    /// time) without entering the shaping queues, so bookkeeping traffic
    /// never delays foreground messages or perturbs virtual-time
    /// outcomes. Requires leases ([`enable_leases`](Self::enable_leases))
    /// to define the renewal cadence.
    pub fn account_lease_traffic(&mut self, home: NodeId, bytes_per_renewal: u64) {
        self.state.lease_traffic = Some(LeaseTraffic {
            home,
            bytes_per_renewal,
            watermark: self.now(),
            total_bytes: 0,
        });
    }

    /// Charges lease renewals accrued since the last charge, up to the
    /// current virtual time. Runs automatically on sampler ticks, node
    /// crashes, and retirements; call once after a run to flush the tail.
    pub fn charge_lease_renewals(&mut self) {
        let now = self.now();
        charge_lease_renewals_inner(&mut self.state, now);
    }

    /// Total lease-renewal bytes charged to the network so far.
    pub fn lease_renewal_bytes(&self) -> u64 {
        self.state
            .lease_traffic
            .as_ref()
            .map_or(0, |t| t.total_bytes)
    }

    /// The network.
    pub fn network(&self) -> &Network {
        &self.state.net
    }

    /// Total messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.state.messages_sent
    }

    /// Instantiates a component on a node. Linkages are wired later via
    /// [`wire`](Self::wire); `on_start` fires at `start_at` (schedule the
    /// deployment engine computed).
    pub fn instantiate(
        &mut self,
        component: impl Into<String>,
        node: NodeId,
        factors: ResolvedBindings,
        behavior: Behavior,
        logic: Box<dyn ComponentLogic>,
        start_at: SimTime,
    ) -> InstanceId {
        let id = InstanceId(self.state.instances.len() as u32);
        // An instance placed on a crashed (undetected) host is born dead:
        // it never processes, exactly like the host it landed on.
        let host_down = !self.state.node_up[node.0 as usize];
        self.state.instances.push(InstanceSlot {
            info: InstanceInfo {
                id,
                component: component.into(),
                node,
                factors,
                linkages: Vec::new(),
            },
            behavior,
            logic: Some(logic),
            forward: None,
            retired: host_down,
        });
        self.state.lease_granted.push(start_at);
        self.engine
            .schedule_at(start_at, Event::Start { instance: id });
        id
    }

    /// Wires `instance`'s required linkages to provider instances.
    pub fn wire(&mut self, instance: InstanceId, linkages: Vec<InstanceId>) {
        self.state.instances[instance.0 as usize].info.linkages = linkages;
    }

    /// Info for an instance.
    pub fn instance(&self, id: InstanceId) -> &InstanceInfo {
        &self.state.instances[id.0 as usize].info
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.state.instances.len()
    }

    /// Whether any instance of `component` (whatever its configuration)
    /// runs on `node` — the node wrapper then already holds its code, so
    /// a further instantiation ships no blueprint.
    pub fn code_present(&self, component: &str, node: NodeId) -> bool {
        self.state
            .instances
            .iter()
            .any(|s| s.info.component == component && s.info.node == node)
    }

    /// Finds the first *live* instance of `component` on `node` with
    /// matching factors (used by the deployment engine to reuse
    /// replicas); retired instances never match.
    pub fn find_instance(
        &self,
        component: &str,
        node: NodeId,
        factors: &ResolvedBindings,
    ) -> Option<InstanceId> {
        self.state
            .instances
            .iter()
            .find(|s| {
                !s.retired
                    && s.info.component == component
                    && s.info.node == node
                    && &s.info.factors == factors
            })
            .map(|s| s.info.id)
    }

    /// Mutable access to an instance's logic, for test assertions and
    /// state inspection between runs.
    pub fn logic_mut(&mut self, id: InstanceId) -> &mut dyn ComponentLogic {
        self.state.instances[id.0 as usize]
            .logic
            .as_mut()
            .expect("logic present outside dispatch")
            .as_mut()
    }

    /// Records a measurement from outside component code (the harness).
    pub fn record_metric(&mut self, metric: &str, value: f64) {
        let entry = self
            .state
            .metrics
            .entry(metric.to_owned())
            .or_insert_with(|| (Summary::new(), Percentiles::new()));
        entry.0.record(value);
        entry.1.record(value);
    }

    /// Summary of a metric (empty summary when never recorded).
    pub fn metric(&self, name: &str) -> Summary {
        self.state
            .metrics
            .get(name)
            .map(|(s, _)| s.clone())
            .unwrap_or_default()
    }

    /// Percentile sampler for a metric.
    pub fn metric_percentiles(&mut self, name: &str) -> Option<&mut Percentiles> {
        self.state.metrics.get_mut(name).map(|(_, p)| p)
    }

    /// Names of all recorded metrics.
    pub fn metric_names(&self) -> Vec<String> {
        self.state.metrics.keys().cloned().collect()
    }

    /// Changes a link's conditions mid-run (the dynamic environment of
    /// Section 6): both the routing graph and the traffic-shaping models
    /// pick up the new latency and bandwidth; transmissions already in
    /// progress complete under the old parameters.
    pub fn update_link(
        &mut self,
        link: ps_net::LinkId,
        latency: ps_sim::SimDuration,
        bandwidth_bps: f64,
    ) {
        let l = self.state.net.link_mut(link);
        l.latency = latency;
        l.bandwidth_bps = bandwidth_bps;
        for direction in &mut self.state.links[link.0 as usize] {
            direction.latency = latency;
            direction.bandwidth_bps = bandwidth_bps;
        }
        self.state.route_cache.clear();
    }

    /// Changes a link's credentials mid-run (e.g. a secure leased line
    /// cut over to the public internet).
    pub fn update_link_credentials(
        &mut self,
        link: ps_net::LinkId,
        credentials: ps_net::Credentials,
    ) {
        self.state.net.link_mut(link).credentials = credentials;
        // Security credentials participate in the routing metric.
        self.state.route_cache.clear();
    }

    /// Changes a node's credentials mid-run (e.g. a trust revocation the
    /// monitoring layer reports).
    pub fn update_node_credentials(&mut self, node: NodeId, credentials: ps_net::Credentials) {
        self.state.net.node_mut(node).credentials = credentials;
    }

    /// Migrates an instance's state to a new instance on `to_node`
    /// (Section 6: redeployment "needs to preserve state compatibility
    /// ... and carefully consider the internal state of components as
    /// well as any partially processed requests").
    ///
    /// The component's state moves with its logic; the transfer is
    /// charged over the current route using the snapshot's size (the
    /// component's [`ComponentLogic::snapshot`] hook, 4 KiB when it does
    /// not implement one). Until and after the hand-off, traffic that
    /// still addresses the old instance — in-flight requests included —
    /// is forwarded to the new one, so partially processed exchanges
    /// complete. The old instance's linkages carry over; callers should
    /// [`wire`](Self::wire) differently if the move changes providers.
    ///
    /// Returns the new instance id and the time the new instance is
    /// live.
    pub fn migrate(&mut self, old: InstanceId, to_node: NodeId) -> (InstanceId, SimTime) {
        let slot = &mut self.state.instances[old.0 as usize];
        debug_assert!(!slot.retired, "cannot migrate a retired instance");
        let logic = slot.logic.take().expect("migrate outside dispatch");
        let state_bytes = logic.snapshot().map(|p| p.wire_bytes).unwrap_or(4096);
        let from_node = slot.info.node;
        let component = slot.info.component.clone();
        let factors = slot.info.factors.clone();
        let behavior = slot.behavior.clone();
        let linkages = slot.info.linkages.clone();

        let transfer = if from_node == to_node {
            ps_sim::SimDuration::ZERO
        } else {
            match shortest_route(&self.state.net, from_node, to_node) {
                Some(route) if !route.is_local() => {
                    route.latency
                        + ps_sim::SimDuration::from_secs_f64(
                            state_bytes as f64 * 8.0 / route.bottleneck_bps,
                        )
                }
                _ => ps_sim::SimDuration::ZERO,
            }
        };
        let live_at = self.now() + transfer;
        let new = self.instantiate(component, to_node, factors, behavior, logic, live_at);
        self.state.instances[new.0 as usize].info.linkages = linkages;
        let slot = &mut self.state.instances[old.0 as usize];
        slot.forward = Some(new);
        slot.retired = true;
        // Every consumer wired to the old instance now talks to the new
        // one directly (the forward covers messages already in flight).
        for s in &mut self.state.instances {
            for l in &mut s.info.linkages {
                if *l == old {
                    *l = new;
                }
            }
        }
        // Calls the old instance made whose responses are still pending
        // belong to the moved logic: re-point them so the responses are
        // dispatched at the new instance.
        for pending in self.state.pending.values_mut() {
            if pending.caller == old {
                pending.caller = new;
            }
        }
        (new, live_at)
    }

    /// Installs the invoke-path retry policy: outstanding requests arm
    /// virtual-time timeouts, expired attempts are retransmitted with
    /// backoff, and exhausted requests surface as
    /// [`ComponentLogic::on_error`] calls instead of silent drops.
    pub fn enable_retry(&mut self, policy: RetryPolicy) {
        self.state.retry = Some(policy);
    }

    /// Enables lease-based failure detection: a crashed host's instances
    /// are declared dead when their last-renewed lease expires — at most
    /// `heartbeat + duration` after the crash — rather than immediately.
    pub fn enable_leases(&mut self, config: LeaseConfig) {
        self.state.lease = Some(config);
    }

    /// The active lease config, if any.
    pub fn lease_config(&self) -> Option<LeaseConfig> {
        self.state.lease
    }

    /// Seeds the generator behind probabilistic faults (loss windows).
    /// Runs with equal seeds, workloads, and fault plans replay
    /// byte-identically.
    pub fn set_fault_seed(&mut self, seed: u64) {
        self.state.rng = Rng::seed_from_u64(seed);
    }

    /// Schedules every event of a [`FaultPlan`] onto the engine; the
    /// faults then fire interleaved with regular traffic.
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            self.engine
                .schedule_at(ev.at, Event::Fault { kind: ev.kind });
        }
    }

    /// Whether the host is up (false between a crash and a restart).
    pub fn node_is_up(&self, node: NodeId) -> bool {
        self.state.node_up[node.0 as usize]
    }

    /// Drains the liveness events detected since the last call (lease
    /// expiries, node restarts, link transitions). The framework layer
    /// converts them into `ps-monitor` network changes.
    pub fn take_liveness_events(&mut self) -> Vec<LivenessEvent> {
        std::mem::take(&mut self.state.pending_liveness)
    }

    /// Crashes a host: every instance there halts immediately (no
    /// graceful [`ComponentLogic::on_retire`] — a crash ships no state)
    /// and messages to and from it are dropped. Routing stays intact and
    /// the network's `up` flag is untouched: a silently-dead host is
    /// invisible to monitoring until leases expire (or immediately, when
    /// leases are disabled). Returns the instances killed.
    pub fn crash_node(&mut self, node: NodeId) -> Vec<InstanceId> {
        crash_node_inner(&mut self.engine, &mut self.state, node)
    }

    /// Restarts a crashed host: the node accepts deployments and routes
    /// again (clearing any quarantine), and a `NodeUp` liveness event is
    /// emitted. Killed instances stay dead — recovery means re-planning
    /// onto the restarted capacity, not resurrecting lost state.
    pub fn restart_node(&mut self, node: NodeId) {
        restart_node_inner(&mut self.engine, &mut self.state, node);
    }

    /// Marks a detected-dead node down in the *network* graph, so routes
    /// avoid it and the planner stops placing components there. This is
    /// the healer's acknowledgement of a lease-detected crash; it bumps
    /// the network epoch, invalidating route tables and plan caches.
    pub fn quarantine_node(&mut self, node: NodeId) {
        self.state.net.set_node_up(node, false);
        self.state.route_cache.clear();
    }

    /// Takes a link down or brings it back up. Unlike a host crash this
    /// is immediately visible (the network's `up` flag flips, as a
    /// Remos-style monitor would report), emits a liveness event, and
    /// drops in-flight traffic on the link while it is down.
    pub fn set_link_state(&mut self, link: ps_net::LinkId, up: bool) {
        set_link_state_inner(&mut self.engine, &mut self.state, link, up);
    }

    /// Starts (`Some(p)`) or ends (`None`) a message-loss window on a
    /// link: while active, each message entering the link is dropped
    /// independently with probability `p` (drawn from the seeded fault
    /// generator).
    pub fn set_link_loss(&mut self, link: ps_net::LinkId, loss: Option<f64>) {
        self.state.loss[link.0 as usize] = loss;
    }

    /// Fails a node abruptly and reports what happened: the typed
    /// [`FailReport`] lists the retired instances and how detection
    /// reaches the liveness stream, and surviving instances get their
    /// [`ComponentLogic::on_peers_retired`] hook (so coherence
    /// directories purge dead replicas at once on this manual path).
    /// The framework layer additionally purges lookup registrations
    /// homed on the node.
    pub fn fail_node(&mut self, node: NodeId) -> FailReport {
        let at = self.now();
        let failed = crash_node_inner(&mut self.engine, &mut self.state, node);
        let detection = match (self.state.lease, failed.is_empty()) {
            (Some(lease), false) => {
                // With leases active the crash path defers notification
                // to lease expiry; the manual API notifies now as well
                // (the later lease-driven pass is idempotent).
                notify_survivors(&mut self.engine, &mut self.state, &failed);
                DetectionMode::Leased {
                    detected_by: at + lease.max_detection_latency(),
                }
            }
            _ => DetectionMode::Immediate,
        };
        FailReport {
            node,
            at,
            retired: failed,
            detection,
            lookup_purged: Vec::new(),
        }
    }

    /// Retires an instance: its [`ComponentLogic::on_retire`] hook runs
    /// first (so stateful components can flush upstream), then subsequent
    /// and in-flight messages to it are dropped. Used when a re-plan
    /// removes a component.
    pub fn retire(&mut self, instance: InstanceId) {
        if self.state.instances[instance.0 as usize].retired {
            return;
        }
        // Renewals the instance sent up to now still happened.
        let now = self.now();
        charge_lease_renewals_inner(&mut self.state, now);
        dispatch(&mut self.engine, &mut self.state, instance, |logic, out| {
            logic.on_retire(out)
        });
        let slot = &mut self.state.instances[instance.0 as usize];
        slot.retired = true;
        slot.forward = None;
    }

    /// Whether an instance has been retired (or migrated away).
    pub fn is_retired(&self, instance: InstanceId) -> bool {
        self.state.instances[instance.0 as usize].retired
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        self.engine.run(&mut self.state, handle);
    }

    /// Runs until `deadline` (events after it stay queued).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.engine.run_until(deadline, &mut self.state, handle);
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }
}

/// Event dispatch.
fn handle(engine: &mut Engine<Event>, state: &mut State, event: Event) {
    if state.sampler.is_some() {
        maybe_sample(engine, state);
    }
    match event {
        Event::Start { instance } => {
            // Crashed (or already-retired) instances never start.
            if state.instances[instance.0 as usize].retired {
                return;
            }
            dispatch(engine, state, instance, |logic, out| logic.on_start(out));
        }
        Event::Timer { instance, tag } => {
            // Timers die with their instance.
            if state.instances[instance.0 as usize].retired {
                return;
            }
            dispatch(engine, state, instance, |logic, out| {
                logic.on_timer(out, tag)
            });
        }
        Event::Hop { msg } => {
            let now = engine.now();
            let Some(((link, dir), bytes)) = state
                .envelopes
                .get(&msg)
                .map(|e| (e.hops[e.hop], e.payload.wire_bytes))
            else {
                return;
            };
            // A downed link, a crashed endpoint host, or an active loss
            // window kills the message at this hop.
            let l = state.net.link(link);
            let endpoints_up =
                state.node_up[l.a.0 as usize] && state.node_up[l.b.0 as usize] && l.up;
            let lossy = match state.loss[link.0 as usize] {
                Some(p) => state.rng.chance(p),
                None => false,
            };
            if !endpoints_up || lossy {
                let env = state.envelopes.remove(&msg).expect("envelope exists");
                engine.tracer().count(
                    if lossy && endpoints_up {
                        "world.loss_drops"
                    } else {
                        "world.drops"
                    },
                    1,
                );
                engine.tracer().instant(
                    "smock.world",
                    "drop",
                    now.as_nanos(),
                    vec![
                        ("from", env.from.0.into()),
                        ("to", env.to.0.into()),
                        ("link", link.0.into()),
                    ],
                );
                return;
            }
            let arrival = state.links[link.0 as usize][dir as usize].transmit(now, bytes);
            let env = state.envelopes.get_mut(&msg).expect("envelope exists");
            env.hop += 1;
            let next = if env.hop == env.hops.len() {
                Event::Deliver { msg }
            } else {
                Event::Hop { msg }
            };
            engine.schedule_at(arrival, next);
        }
        Event::Deliver { msg } => {
            let now = engine.now();
            let Some((to, kind)) = state.envelopes.get(&msg).map(|e| (e.to, e.kind)) else {
                return;
            };
            // Migrated away? Forward the envelope along; retired with no
            // forwarding address? Drop it.
            let slot = &state.instances[to.0 as usize];
            if slot.retired {
                match slot.forward {
                    Some(target) => {
                        // Charge the forwarding hop from the *old*
                        // instance's node to the new one (`to` still
                        // names the old instance, whose node is intact).
                        let env = state.envelopes.remove(&msg).expect("present");
                        engine.tracer().count("world.forwards", 1);
                        engine.tracer().instant(
                            "smock.world",
                            "forward",
                            now.as_nanos(),
                            vec![
                                ("from", env.from.0.into()),
                                ("to", to.0.into()),
                                ("target", target.0.into()),
                            ],
                        );
                        send(engine, state, to, target, env.kind, env.payload);
                    }
                    None => {
                        let env = state.envelopes.remove(&msg).expect("present");
                        engine.tracer().count("world.drops", 1);
                        engine.tracer().instant(
                            "smock.world",
                            "drop",
                            now.as_nanos(),
                            vec![("from", env.from.0.into()), ("to", to.0.into())],
                        );
                    }
                }
                return;
            }
            // Requests and notifies charge the component's per-request
            // CPU; responses are charged to the caller implicitly via its
            // own follow-on work.
            let cpu_ms = match kind {
                Kind::Request { .. } | Kind::Notify => {
                    state.instances[to.0 as usize].behavior.cpu_per_request_ms
                }
                Kind::Response { .. } => 0.0,
            };
            let node = state.instances[to.0 as usize].info.node;
            let done = if cpu_ms > 0.0 {
                state.cpus[node.0 as usize].execute(now, cpu_ms)
            } else {
                now
            };
            engine.schedule_at(done, Event::Process { msg });
        }
        Event::Process { msg } => {
            let Some(env) = state.envelopes.remove(&msg) else {
                return;
            };
            let to = env.to;
            // The target may have migrated (or crashed) between this
            // message's CPU scheduling and now: forward or drop, exactly
            // as at delivery time.
            let slot = &state.instances[to.0 as usize];
            if slot.retired {
                match slot.forward {
                    Some(target) => {
                        engine.tracer().count("world.forwards", 1);
                        send(engine, state, to, target, env.kind, env.payload);
                    }
                    None => {
                        engine.tracer().count("world.drops", 1);
                        engine.tracer().instant(
                            "smock.world",
                            "drop",
                            engine.now().as_nanos(),
                            vec![("from", env.from.0.into()), ("to", to.0.into())],
                        );
                    }
                }
                return;
            }
            match env.kind {
                Kind::Request { req } => {
                    dispatch(engine, state, to, |logic, out| {
                        logic.on_request(out, RequestHandle(req), &env.payload)
                    });
                }
                Kind::Response { req } => {
                    if let Some(pending) = state.pending.remove(&req) {
                        debug_assert_eq!(pending.caller, to);
                        let token = pending.token;
                        engine.tracer().observe(
                            "world.invoke_ms",
                            engine.now().since(pending.first_issued).as_millis_f64(),
                        );
                        engine.tracer().exit_span(
                            "smock.world",
                            "invoke",
                            pending.span,
                            engine.now().as_nanos(),
                            Vec::new(),
                        );
                        dispatch(engine, state, to, |logic, out| {
                            logic.on_response(out, token, &env.payload)
                        });
                    }
                }
                Kind::Notify => {
                    dispatch(engine, state, to, |logic, out| {
                        logic.on_notify(out, &env.payload)
                    });
                }
            }
        }
        Event::RequestTimeout { req, attempt } => {
            handle_request_timeout(engine, state, req, attempt);
        }
        Event::LeaseExpire { instance } => {
            handle_lease_expire(engine, state, instance);
        }
        Event::Fault { kind } => {
            apply_fault(engine, state, kind);
        }
    }
}

/// Takes a sampler tick if a cadence boundary has passed. Called at
/// every event dispatch, so samples land at the first event on or after
/// each boundary; no events are scheduled, so sampling can never alter
/// the simulation's own timeline (and an idle queue simply stops the
/// clock — and the sampling — together).
fn maybe_sample(engine: &Engine<Event>, state: &mut State) {
    let now_ns = engine.now().as_nanos();
    let due = state
        .sampler
        .as_ref()
        .is_some_and(|s| s.sampler.due(now_ns));
    if due {
        take_sample(engine, state, false);
    }
}

/// Collects one sample: brings lease accounting up to now, then records
/// the aggregate series. The series count is fixed (ten) regardless of
/// world size; per-link detail stays in the registry gauges.
fn take_sample(engine: &Engine<Event>, state: &mut State, force: bool) {
    let now = engine.now();
    let now_ns = now.as_nanos();
    let Some(mut ss) = state.sampler.take() else {
        return;
    };
    if !ss.sampler.begin_tick(now_ns) && !force {
        state.sampler = Some(ss);
        return;
    }
    charge_lease_renewals_inner(state, now);
    let horizon = now.as_secs_f64();
    let util = |busy: SimDuration| {
        if horizon > 0.0 {
            busy.as_secs_f64() / horizon
        } else {
            0.0
        }
    };
    let mut link_util_sum = 0.0;
    let mut link_util_max = 0.0f64;
    let mut link_bytes = 0u64;
    let mut links_active = 0u64;
    for pair in &state.links {
        for link in pair {
            link_bytes += link.bytes_carried();
            if link.transmissions() > 0 {
                links_active += 1;
            }
            let u = util(link.busy_time());
            link_util_sum += u;
            link_util_max = link_util_max.max(u);
        }
    }
    let link_dirs = (state.links.len() * 2).max(1) as f64;
    let mut cpu_util_sum = 0.0;
    let mut cpu_util_max = 0.0f64;
    for cpu in &state.cpus {
        let u = util(cpu.busy_time());
        cpu_util_sum += u;
        cpu_util_max = cpu_util_max.max(u);
    }
    let cpus = state.cpus.len().max(1) as f64;
    let live = state.instances.iter().filter(|s| !s.retired).count();
    let lease_bytes = state.lease_traffic.as_ref().map_or(0, |t| t.total_bytes);
    let processed = engine.processed();
    let d_bytes = link_bytes.saturating_sub(ss.prev_link_bytes);
    let d_events = processed.saturating_sub(ss.prev_events);
    let d_lease = lease_bytes.saturating_sub(ss.prev_lease_bytes);
    ss.prev_link_bytes = link_bytes;
    ss.prev_events = processed;
    ss.prev_lease_bytes = lease_bytes;
    ss.sampler.record("cpus.util_max", now_ns, cpu_util_max);
    ss.sampler
        .record("cpus.util_mean", now_ns, cpu_util_sum / cpus);
    ss.sampler
        .record("events.pending", now_ns, engine.pending() as f64);
    ss.sampler
        .record("events.processed", now_ns, d_events as f64);
    ss.sampler.record("instances.live", now_ns, live as f64);
    ss.sampler
        .record("lease.renewal_bytes", now_ns, d_lease as f64);
    ss.sampler
        .record("links.active", now_ns, links_active as f64);
    ss.sampler.record("links.bytes", now_ns, d_bytes as f64);
    ss.sampler.record("links.util_max", now_ns, link_util_max);
    ss.sampler
        .record("links.util_mean", now_ns, link_util_sum / link_dirs);
    state.sampler = Some(ss);
}

/// Charges each live instance's lease renewals in `(watermark, upto]` to
/// the links of its cached route to the lease home, as background
/// utilization (see [`LinkModel::charge_background`]). Instances hosted
/// on the home node renew in-process and put nothing on the wire.
fn charge_lease_renewals_inner(state: &mut State, upto: SimTime) {
    let Some(lease) = state.lease else {
        return;
    };
    let Some(mut traffic) = state.lease_traffic.take() else {
        return;
    };
    if upto <= traffic.watermark {
        state.lease_traffic = Some(traffic);
        return;
    }
    let hb = lease.heartbeat.as_nanos().max(1);
    let upto_ns = upto.as_nanos();
    // Renewals fire at `granted + k * heartbeat` (k >= 1); count those
    // in the uncharged window per source node.
    let mut per_node: BTreeMap<u32, u64> = BTreeMap::new();
    for (i, slot) in state.instances.iter().enumerate() {
        if slot.retired || slot.info.node == traffic.home {
            continue;
        }
        let Some(granted) = state.lease_granted.get(i) else {
            continue;
        };
        let g = granted.as_nanos();
        if upto_ns <= g {
            continue;
        }
        let prior = traffic.watermark.as_nanos().max(g);
        let count = (upto_ns - g) / hb - (prior - g) / hb;
        if count > 0 {
            *per_node.entry(slot.info.node.0).or_insert(0) += count;
        }
    }
    for (node, count) in per_node {
        let from = NodeId(node);
        let cached = state
            .route_cache
            .entry((from.0, traffic.home.0))
            .or_insert_with(|| {
                shortest_route(&state.net, from, traffic.home).map(|route| {
                    let mut hops = Vec::with_capacity(route.links.len());
                    let mut at = from;
                    for &l in &route.links {
                        let link = state.net.link(l);
                        let dir = if link.a == at { 0u8 } else { 1u8 };
                        // ps-lint: allow(P001): Dijkstra emits connected
                        // link sequences; silently mis-walking a broken
                        // route would deliver traffic to the wrong node,
                        // which is worse than crashing.
                        at = link.other(at).expect("route links are connected");
                        hops.push((l, dir));
                    }
                    hops
                })
            });
        let Some(hops) = cached.clone() else {
            continue; // Home unreachable: renewals are lost, not carried.
        };
        for (l, dir) in hops {
            state.links[l.0 as usize][dir as usize]
                .charge_background(count, traffic.bytes_per_renewal);
        }
        traffic.total_bytes += count * traffic.bytes_per_renewal;
    }
    traffic.watermark = upto;
    state.lease_traffic = Some(traffic);
}

/// A request's per-attempt timeout elapsed: retransmit with backoff, or
/// exhaust the policy and deliver a typed error to the caller.
fn handle_request_timeout(engine: &mut Engine<Event>, state: &mut State, req: u64, attempt: u32) {
    let Some(pending) = state.pending.get(&req) else {
        return; // The response arrived; the timeout is stale.
    };
    if pending.attempt != attempt {
        return; // A newer attempt re-armed its own timeout.
    }
    let Some(policy) = state.retry.clone() else {
        return;
    };
    let now = engine.now();
    let caller = pending.caller;
    let deadline_hit = policy
        .deadline
        .is_some_and(|d| now.since(pending.first_issued) >= d);
    let caller_dead = state.instances[caller.0 as usize].retired;
    if caller_dead || attempt >= policy.max_attempts || deadline_hit {
        let pending = state.pending.remove(&req).expect("checked above");
        engine.tracer().exit_span(
            "smock.world",
            "invoke",
            pending.span,
            now.as_nanos(),
            vec![(
                "error",
                if deadline_hit { "deadline" } else { "timeout" }.into(),
            )],
        );
        if caller_dead {
            return; // Nobody left to tell.
        }
        engine.tracer().count("world.invoke_failures", 1);
        let error = if deadline_hit {
            InvokeError::DeadlineExceeded { attempts: attempt }
        } else {
            InvokeError::TimedOut { attempts: attempt }
        };
        let token = pending.token;
        dispatch(engine, state, caller, |logic, out| {
            logic.on_error(out, token, error)
        });
        return;
    }
    // Retry: re-resolve the provider through the caller's *current*
    // linkage (a re-plan may have rewired it) and retransmit.
    let pending = state.pending.get_mut(&req).expect("checked above");
    pending.attempt = attempt + 1;
    let linkage = pending.linkage;
    let payload = pending.payload.clone();
    let Some(&provider) = state.instances[caller.0 as usize]
        .info
        .linkages
        .get(linkage)
    else {
        return; // Rewired to fewer linkages; the request dies quietly.
    };
    engine.tracer().count("world.retries", 1);
    engine.tracer().instant(
        "smock.world",
        "retry",
        now.as_nanos(),
        vec![
            ("req", req.into()),
            ("attempt", (attempt + 1).into()),
            ("to", provider.0.into()),
        ],
    );
    send(
        engine,
        state,
        caller,
        provider,
        Kind::Request { req },
        payload,
    );
    let next_timeout = policy.timeout_for_attempt(attempt + 1);
    engine.schedule(
        next_timeout,
        Event::RequestTimeout {
            req,
            attempt: attempt + 1,
        },
    );
}

/// A crashed instance's lease ran out: the failure becomes visible.
/// Emits the `InstanceDown` liveness event (plus `NodeDown` once the
/// node's last lease expires) and notifies surviving instances so they
/// can purge references to the dead peer.
fn handle_lease_expire(engine: &mut Engine<Event>, state: &mut State, instance: InstanceId) {
    let slot = &state.instances[instance.0 as usize];
    if !slot.retired {
        return; // Lease was renewed (instance alive) — spurious expiry.
    }
    let node = slot.info.node;
    let now = engine.now();
    engine.tracer().count("world.lease_expiries", 1);
    engine.tracer().instant(
        "smock.world",
        "lease_expire",
        now.as_nanos(),
        vec![("instance", instance.0.into()), ("node", node.0.into())],
    );
    state.pending_liveness.push(LivenessEvent {
        at: now,
        kind: LivenessKind::InstanceDown { instance, node },
    });
    if let Some(remaining) = state.down_pending.get_mut(&node.0) {
        *remaining -= 1;
        if *remaining == 0 {
            state.down_pending.remove(&node.0);
            state.pending_liveness.push(LivenessEvent {
                at: now,
                kind: LivenessKind::NodeDown { node },
            });
        }
    }
    notify_survivors(engine, state, &[instance]);
}

/// Applies one injected fault from an installed [`FaultPlan`].
fn apply_fault(engine: &mut Engine<Event>, state: &mut State, kind: FaultKind) {
    engine.tracer().count("world.faults", 1);
    let (label, subject) = match kind {
        FaultKind::NodeCrash { node } => ("node_crash", node),
        FaultKind::NodeRestart { node } => ("node_restart", node),
        FaultKind::LinkDown { link } => ("link_down", link),
        FaultKind::LinkUp { link } => ("link_up", link),
        FaultKind::LossStart { link, .. } => ("loss_start", link),
        FaultKind::LossEnd { link } => ("loss_end", link),
    };
    engine.tracer().instant(
        "smock.world",
        "fault",
        engine.now().as_nanos(),
        vec![("kind", label.into()), ("subject", subject.into())],
    );
    match kind {
        FaultKind::NodeCrash { node } => {
            crash_node_inner(engine, state, NodeId(node));
        }
        FaultKind::NodeRestart { node } => {
            restart_node_inner(engine, state, NodeId(node));
        }
        FaultKind::LinkDown { link } => {
            set_link_state_inner(engine, state, ps_net::LinkId(link), false);
        }
        FaultKind::LinkUp { link } => {
            set_link_state_inner(engine, state, ps_net::LinkId(link), true);
        }
        FaultKind::LossStart { link, loss } => {
            state.loss[link as usize] = Some(loss);
        }
        FaultKind::LossEnd { link } => {
            state.loss[link as usize] = None;
        }
    }
}

/// The crash itself: instances halt now; detection is deferred to lease
/// expiry when leases are active, otherwise reported immediately.
fn crash_node_inner(
    engine: &mut Engine<Event>,
    state: &mut State,
    node: NodeId,
) -> Vec<InstanceId> {
    if !state.node_up[node.0 as usize] {
        return Vec::new(); // Already down.
    }
    state.node_up[node.0 as usize] = false;
    let now = engine.now();
    // Renewals sent before the crash still happened: charge them while
    // the node's instances are still live in the accounting.
    charge_lease_renewals_inner(state, now);
    let mut failed = Vec::new();
    for slot in &mut state.instances {
        if slot.info.node == node && !slot.retired {
            slot.retired = true;
            slot.forward = None;
            failed.push(slot.info.id);
        }
    }
    engine.tracer().count("world.crashes", 1);
    engine.tracer().instant(
        "smock.world",
        "crash",
        now.as_nanos(),
        vec![("node", node.0.into()), ("instances", failed.len().into())],
    );
    // Requests the dead instances had outstanding can never be answered
    // usefully: close their invoke spans and drop the bookkeeping.
    // `pending` is a BTreeMap, so this visits (and closes spans for)
    // orphaned requests in request-id order — deterministic by
    // construction, no post-hoc sort needed.
    let orphaned: Vec<u64> = state
        .pending
        .iter()
        .filter(|(_, p)| failed.contains(&p.caller))
        .map(|(&req, _)| req)
        .collect();
    for req in orphaned {
        let pending = state.pending.remove(&req).expect("just listed");
        engine.tracer().exit_span(
            "smock.world",
            "invoke",
            pending.span,
            now.as_nanos(),
            vec![("error", "caller_crashed".into())],
        );
    }
    match state.lease {
        Some(lease) if !failed.is_empty() => {
            // Lazy lease accounting: the instance renewed every
            // `heartbeat` since its grant while the host was up, so its
            // last renewal precedes the crash by less than one heartbeat
            // and detection lands at `last_renewal + duration`.
            state.down_pending.insert(node.0, failed.len());
            for &id in &failed {
                let granted = state.lease_granted[id.0 as usize];
                let hb = lease.heartbeat.as_nanos().max(1);
                let elapsed = now.since(granted).as_nanos();
                let last_renewal = granted + SimDuration::from_nanos(elapsed / hb * hb);
                let expiry = (last_renewal + lease.duration).max(now);
                engine.schedule_at(expiry, Event::LeaseExpire { instance: id });
            }
        }
        _ => {
            for &id in &failed {
                state.pending_liveness.push(LivenessEvent {
                    at: now,
                    kind: LivenessKind::InstanceDown { instance: id, node },
                });
            }
            if !failed.is_empty() {
                state.pending_liveness.push(LivenessEvent {
                    at: now,
                    kind: LivenessKind::NodeDown { node },
                });
                notify_survivors(engine, state, &failed);
            }
        }
    }
    failed
}

/// Brings a crashed host back: capacity returns (and any quarantine is
/// lifted), but killed instances stay dead.
fn restart_node_inner(engine: &mut Engine<Event>, state: &mut State, node: NodeId) {
    if state.node_up[node.0 as usize] && state.net.node(node).up {
        return;
    }
    state.node_up[node.0 as usize] = true;
    // `set_node_up` bumps the network epoch only when the graph flag
    // actually flips; a crashed-but-never-quarantined host restarts
    // with the flag already up, and without an explicit bump the plan
    // cache keeps serving entries computed while the host was dead —
    // masking the rejoin from every later replan. `touch` makes restart
    // an unconditional epoch event.
    state.net.set_node_up(node, true);
    state.net.touch();
    state.route_cache.clear();
    state.down_pending.remove(&node.0);
    let now = engine.now();
    engine.tracer().instant(
        "smock.world",
        "restart",
        now.as_nanos(),
        vec![("node", node.0.into())],
    );
    state.pending_liveness.push(LivenessEvent {
        at: now,
        kind: LivenessKind::NodeUp { node },
    });
}

/// Flips a link's up flag in the network (immediately visible to
/// monitoring) and records the liveness event.
fn set_link_state_inner(
    engine: &mut Engine<Event>,
    state: &mut State,
    link: ps_net::LinkId,
    up: bool,
) {
    if state.net.link(link).up == up {
        return;
    }
    state.net.set_link_up(link, up);
    state.route_cache.clear();
    state.pending_liveness.push(LivenessEvent {
        at: engine.now(),
        kind: if up {
            LivenessKind::LinkUp { link }
        } else {
            LivenessKind::LinkDown { link }
        },
    });
}

/// Runs `on_peers_retired` on every surviving instance so components
/// holding references to the dead peers (coherence directories, replica
/// sets) purge them.
fn notify_survivors(engine: &mut Engine<Event>, state: &mut State, dead: &[InstanceId]) {
    let survivors: Vec<InstanceId> = state
        .instances
        .iter()
        .filter(|s| !s.retired)
        .map(|s| s.info.id)
        .collect();
    for id in survivors {
        dispatch(engine, state, id, |logic, out| {
            logic.on_peers_retired(out, dead)
        });
    }
}

/// Runs a handler on an instance's logic and applies the emitted actions.
fn dispatch(
    engine: &mut Engine<Event>,
    state: &mut State,
    instance: InstanceId,
    f: impl FnOnce(&mut dyn ComponentLogic, &mut Outbox),
) {
    let mut logic = state.instances[instance.0 as usize]
        .logic
        .take()
        // ps-lint: allow(P001): reentrancy guard — a second dispatch into
        // the same instance while its logic is checked out is a scheduler
        // bug; proceeding would drop the inner handler's actions silently.
        .expect("no reentrant dispatch");
    let linkage_count = state.instances[instance.0 as usize].info.linkages.len();
    let mut out = Outbox::new(
        engine.now(),
        linkage_count,
        instance,
        engine.tracer().clone(),
    );
    f(logic.as_mut(), &mut out);
    state.instances[instance.0 as usize].logic = Some(logic);
    apply_actions(engine, state, instance, out.actions);
}

fn apply_actions(
    engine: &mut Engine<Event>,
    state: &mut State,
    instance: InstanceId,
    actions: Vec<Action>,
) {
    for action in actions {
        match action {
            Action::Reply { to, payload } => {
                let req = to.0;
                let Some(pending) = state.pending.get(&req) else {
                    continue;
                };
                let caller = pending.caller;
                send(
                    engine,
                    state,
                    instance,
                    caller,
                    Kind::Response { req },
                    payload,
                );
            }
            Action::Call {
                linkage,
                payload,
                token,
            } => {
                let provider = state.instances[instance.0 as usize].info.linkages[linkage];
                let req = state.next_req;
                state.next_req += 1;
                let span = engine.tracer().enter_span(
                    "smock.world",
                    "invoke",
                    engine.now().as_nanos(),
                    vec![
                        ("from", instance.0.into()),
                        ("to", provider.0.into()),
                        ("req", req.into()),
                    ],
                );
                state.pending.insert(
                    req,
                    PendingRequest {
                        caller: instance,
                        token,
                        span,
                        linkage,
                        payload: payload.clone(),
                        attempt: 1,
                        first_issued: engine.now(),
                    },
                );
                if let Some(policy) = &state.retry {
                    engine.schedule(
                        policy.timeout_for_attempt(1),
                        Event::RequestTimeout { req, attempt: 1 },
                    );
                }
                send(
                    engine,
                    state,
                    instance,
                    provider,
                    Kind::Request { req },
                    payload,
                );
            }
            Action::Notify { linkage, payload } => {
                let provider = state.instances[instance.0 as usize].info.linkages[linkage];
                send(engine, state, instance, provider, Kind::Notify, payload);
            }
            Action::NotifyInstance { to, payload } => {
                send(engine, state, instance, to, Kind::Notify, payload);
            }
            Action::Timer { delay, tag } => {
                engine.schedule(delay, Event::Timer { instance, tag });
            }
            Action::Measure { metric, value } => {
                let entry = state
                    .metrics
                    .entry(metric.to_owned())
                    .or_insert_with(|| (Summary::new(), Percentiles::new()));
                entry.0.record(value);
                entry.1.record(value);
            }
        }
    }
}

/// Enqueues a message from one instance to another; local (same node)
/// deliveries skip the network entirely.
fn send(
    engine: &mut Engine<Event>,
    state: &mut State,
    from: InstanceId,
    to: InstanceId,
    kind: Kind,
    payload: Payload,
) {
    state.messages_sent += 1;
    let from_node = state.instances[from.0 as usize].info.node;
    let to_node = state.instances[to.0 as usize].info.node;
    let hops = if from_node == to_node {
        Vec::new()
    } else {
        let cached = state
            .route_cache
            .entry((from_node.0, to_node.0))
            .or_insert_with(|| {
                shortest_route(&state.net, from_node, to_node).map(|route| {
                    // Annotate each link with its traversal direction so
                    // each direction of a full-duplex link queues
                    // independently.
                    let mut hops = Vec::with_capacity(route.links.len());
                    let mut at = from_node;
                    for &l in &route.links {
                        let link = state.net.link(l);
                        let dir = if link.a == at { 0u8 } else { 1u8 };
                        // ps-lint: allow(P001): Dijkstra emits connected
                        // link sequences; silently mis-walking a broken
                        // route would deliver traffic to the wrong node,
                        // which is worse than crashing.
                        at = link.other(at).expect("route links are connected");
                        hops.push((l, dir));
                    }
                    hops
                })
            });
        match cached {
            Some(hops) => hops.clone(),
            None => {
                // Unreachable destination: message dropped.
                engine.tracer().count("world.drops", 1);
                engine.tracer().instant(
                    "smock.world",
                    "drop",
                    engine.now().as_nanos(),
                    vec![("from", from.0.into()), ("to", to.0.into())],
                );
                return;
            }
        }
    };
    engine.tracer().count("world.messages", 1);
    if !hops.is_empty() {
        engine.tracer().count("world.hops", hops.len() as u64);
    }
    let msg = state.next_msg;
    state.next_msg += 1;
    let first = if hops.is_empty() {
        Event::Deliver { msg }
    } else {
        Event::Hop { msg }
    };
    state.envelopes.insert(
        msg,
        Envelope {
            kind,
            from,
            to,
            hops,
            hop: 0,
            payload,
        },
    );
    // Local delivery costs a small constant (in-process invocation).
    let delay = if from_node == to_node {
        SimDuration::from_micros(20)
    } else {
        SimDuration::ZERO
    };
    engine.schedule(delay, first);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_net::Credentials;

    /// Echo server: replies with the request payload.
    struct Echo;
    impl ComponentLogic for Echo {
        fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, payload: &Payload) {
            out.reply(req, payload.clone());
        }
        fn on_response(&mut self, _out: &mut Outbox, _token: u64, _payload: &Payload) {}
    }

    /// Client: sends one request at start, records the round-trip.
    struct OneShot {
        sent_at: SimTime,
        pub rtt_ms: Option<f64>,
    }
    impl ComponentLogic for OneShot {
        fn on_start(&mut self, out: &mut Outbox) {
            self.sent_at = out.now();
            out.call(0, Payload::new((), 1_000_000), 1);
        }
        fn on_request(&mut self, _out: &mut Outbox, _req: RequestHandle, _p: &Payload) {}
        fn on_response(&mut self, out: &mut Outbox, token: u64, _p: &Payload) {
            assert_eq!(token, 1);
            let rtt = (out.now() - self.sent_at).as_millis_f64();
            self.rtt_ms = Some(rtt);
            out.measure("rtt_ms", rtt);
        }
    }

    fn two_node_world(latency_ms: u64, bw: f64) -> (World, InstanceId, InstanceId) {
        let mut net = Network::new();
        let a = net.add_node("a", "s", 1.0, Credentials::new());
        let b = net.add_node("b", "t", 1.0, Credentials::new());
        net.add_link(
            a,
            b,
            SimDuration::from_millis(latency_ms),
            bw,
            Credentials::new(),
        );
        let mut world = World::new(net);
        let server = world.instantiate(
            "Echo",
            b,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Echo),
            SimTime::ZERO,
        );
        let client = world.instantiate(
            "Client",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(OneShot {
                sent_at: SimTime::ZERO,
                rtt_ms: None,
            }),
            SimTime::ZERO,
        );
        world.wire(client, vec![server]);
        (world, client, server)
    }

    #[test]
    fn restart_always_bumps_the_network_epoch() {
        let (mut world, _client, _server) = two_node_world(1, 8e6);
        let node = NodeId(1);
        let before = world.network().epoch();
        // A silent crash leaves the graph flag untouched (detection is
        // lease-driven), so the epoch does not move...
        world.crash_node(node);
        assert_eq!(world.network().epoch(), before);
        // ...but the restart must still be an epoch event: plans cached
        // while the host was dead would otherwise mask the rejoin from
        // every later replan.
        world.restart_node(node);
        let after_silent = world.network().epoch();
        assert!(after_silent > before, "restart after silent crash");
        // The quarantined path (graph flag flipped by the healer) bumps
        // as well.
        world.crash_node(node);
        world.quarantine_node(node);
        let quarantined = world.network().epoch();
        assert!(quarantined > after_silent);
        world.restart_node(node);
        assert!(
            world.network().epoch() > quarantined,
            "restart after quarantine"
        );
    }

    #[test]
    fn request_response_round_trip_times_are_physical() {
        // 1 MB over 8 Mb/s + 400 ms each way: 1s + 0.4s, both directions.
        let (mut world, _, _) = two_node_world(400, 8e6);
        world.run();
        let m = world.metric("rtt_ms");
        assert_eq!(m.count(), 1);
        assert!((m.mean() - 2800.0).abs() < 1.0, "rtt {}", m.mean());
    }

    #[test]
    fn lease_renewals_charge_links_without_delaying_traffic() {
        let lease = LeaseConfig {
            duration: SimDuration::from_secs(2),
            heartbeat: SimDuration::from_millis(500),
        };
        // Baseline: no lease accounting.
        let (mut plain, _, _) = two_node_world(400, 8e6);
        plain.enable_leases(lease);
        plain.run();
        let baseline_rtt = plain.metric("rtt_ms").mean();

        let (mut world, _, server) = two_node_world(400, 8e6);
        world.enable_leases(lease);
        // Home is node a; the server (node b) renews over the link, the
        // client (node a, home-local) puts nothing on the wire.
        world.account_lease_traffic(NodeId(0), 64);
        world.run();
        world.charge_lease_renewals();
        // Run spans 2.8 s; renewals at 0.5..2.5 s = 5 of 64 bytes.
        assert_eq!(world.lease_renewal_bytes(), 5 * 64);
        assert_eq!(
            world.metric("rtt_ms").mean(),
            baseline_rtt,
            "background lease traffic must not delay foreground messages"
        );
        // Retired instances stop renewing.
        world.retire(server);
        world.run();
        let frozen = world.lease_renewal_bytes();
        world.charge_lease_renewals();
        assert_eq!(world.lease_renewal_bytes(), frozen);
    }

    #[test]
    fn sampler_collects_bounded_series() {
        let (mut world, _, _) = two_node_world(400, 8e6);
        world.enable_sampler(SamplerConfig {
            cadence_ns: 500_000_000,
            retention: 64,
        });
        world.run();
        world.sample_now();
        let sampler = world.sampler().expect("enabled");
        assert!(sampler.ticks() >= 1);
        // Fixed series set, independent of world size.
        assert_eq!(sampler.names().len(), 10);
        let live = sampler.series("instances.live").expect("series exists");
        assert!(!live.is_empty());
        assert_eq!(live.summary().last, 2.0);
        let processed = sampler.series("events.processed").expect("series");
        assert!(processed.summary().sum > 0.0);
    }

    #[test]
    fn cpu_cost_is_charged_for_requests() {
        let mut net = Network::new();
        let a = net.add_node("a", "s", 1.0, Credentials::new());
        let mut world = World::new(net);
        // Both instances on one node: only local delivery + CPU.
        let server = world.instantiate(
            "Echo",
            a,
            ResolvedBindings::new(),
            Behavior::new().cpu_per_request_ms(5.0),
            Box::new(Echo),
            SimTime::ZERO,
        );
        let client = world.instantiate(
            "Client",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(OneShot {
                sent_at: SimTime::ZERO,
                rtt_ms: None,
            }),
            SimTime::ZERO,
        );
        world.wire(client, vec![server]);
        world.run();
        let m = world.metric("rtt_ms");
        assert!(m.mean() >= 5.0, "rtt {} must include 5ms CPU", m.mean());
        assert!(m.mean() < 6.0);
    }

    #[test]
    fn concurrent_transfers_queue_on_the_link() {
        // Two clients sharing one 8 Mb/s link: second transfer queues.
        let mut net = Network::new();
        let a = net.add_node("a", "s", 1.0, Credentials::new());
        let b = net.add_node("b", "t", 1.0, Credentials::new());
        net.add_link(a, b, SimDuration::ZERO, 8e6, Credentials::new());
        let mut world = World::new(net);
        let server = world.instantiate(
            "Echo",
            b,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Echo),
            SimTime::ZERO,
        );
        for _ in 0..2 {
            let c = world.instantiate(
                "Client",
                a,
                ResolvedBindings::new(),
                Behavior::new(),
                Box::new(OneShot {
                    sent_at: SimTime::ZERO,
                    rtt_ms: None,
                }),
                SimTime::ZERO,
            );
            world.wire(c, vec![server]);
        }
        world.run();
        let mut p = world.metric_percentiles("rtt_ms").unwrap().clone();
        // First ~2s (1s each way), second queued behind: ~3s.
        let fast = p.quantile(0.0).unwrap();
        let slow = p.quantile(1.0).unwrap();
        assert!((fast - 2000.0).abs() < 50.0, "fast {fast}");
        assert!((slow - 3000.0).abs() < 50.0, "slow {slow}");
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut world, _, _) = two_node_world(100, 1e7);
            world.run();
            (world.metric("rtt_ms").mean(), world.events_processed())
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod migration_tests {
    use super::*;
    use crate::component::{ComponentLogic, Outbox, Payload, RequestHandle};
    use ps_net::Credentials;

    /// A counter server whose state must survive migration.
    struct Counter {
        count: u64,
    }
    impl ComponentLogic for Counter {
        fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, _p: &Payload) {
            self.count += 1;
            out.reply(req, Payload::new(self.count, 8));
        }
        fn on_response(&mut self, _o: &mut Outbox, _t: u64, _p: &Payload) {}
        fn snapshot(&self) -> Option<Payload> {
            Some(Payload::new(self.count, 8192))
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    /// Issues `n` requests, waiting for each reply; records the replies.
    struct Caller {
        remaining: u32,
        pub replies: Vec<u64>,
    }
    impl ComponentLogic for Caller {
        fn on_start(&mut self, out: &mut Outbox) {
            out.call(0, Payload::new((), 64), 0);
        }
        fn on_request(&mut self, _o: &mut Outbox, _r: RequestHandle, _p: &Payload) {}
        fn on_response(&mut self, out: &mut Outbox, _t: u64, p: &Payload) {
            self.replies.push(*p.get::<u64>().expect("count"));
            self.remaining -= 1;
            if self.remaining > 0 {
                out.call(0, Payload::new((), 64), 0);
            }
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    fn three_node_world() -> (World, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node("a", "s1", 1.0, Credentials::new());
        let b = net.add_node("b", "s2", 1.0, Credentials::new());
        let c = net.add_node("c", "s3", 1.0, Credentials::new());
        let secure = || Credentials::new().with("Secure", true);
        net.add_link(a, b, SimDuration::from_millis(10), 1e8, secure());
        net.add_link(b, c, SimDuration::from_millis(10), 1e8, secure());
        net.add_link(a, c, SimDuration::from_millis(50), 1e7, secure());
        (World::new(net), a, b, c)
    }

    #[test]
    fn migration_preserves_state_and_reroutes_traffic() {
        let (mut world, a, b, c) = three_node_world();
        let server = world.instantiate(
            "Counter",
            c,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Counter { count: 0 }),
            SimTime::ZERO,
        );
        let caller = world.instantiate(
            "Caller",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Caller {
                remaining: 3,
                replies: Vec::new(),
            }),
            SimTime::ZERO,
        );
        world.wire(caller, vec![server]);
        world.run();

        // Migrate the counter from c to b; its count must carry over.
        let (new_server, live_at) = world.migrate(server, b);
        assert!(world.is_retired(server));
        assert!(live_at >= world.now());
        assert_eq!(world.instance(new_server).node, b);
        assert_eq!(
            world.instance(caller).linkages,
            vec![new_server],
            "consumers rewired"
        );

        // Three more calls land on the migrated instance.
        let now = world.now();
        let caller2 = world.instantiate(
            "Caller",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Caller {
                remaining: 3,
                replies: Vec::new(),
            }),
            now,
        );
        world.wire(caller2, vec![new_server]);
        world.run();

        let replies = &world
            .logic_mut(caller2)
            .as_any()
            .unwrap()
            .downcast_ref::<Caller>()
            .unwrap()
            .replies;
        assert_eq!(replies, &vec![4, 5, 6], "state survived the move");
    }

    #[test]
    fn in_flight_traffic_is_forwarded_after_migration() {
        let (mut world, a, b, c) = three_node_world();
        let server = world.instantiate(
            "Counter",
            c,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Counter { count: 0 }),
            SimTime::ZERO,
        );
        let caller = world.instantiate(
            "Caller",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Caller {
                remaining: 2,
                replies: Vec::new(),
            }),
            SimTime::ZERO,
        );
        world.wire(caller, vec![server]);
        // Let the first request get into flight (a->c is 50 ms; stop at
        // 20 ms, mid-flight), then migrate.
        world.run_until(SimTime::from_nanos(20_000_000));
        world.migrate(server, b);
        world.run();
        let replies = &world
            .logic_mut(caller)
            .as_any()
            .unwrap()
            .downcast_ref::<Caller>()
            .unwrap()
            .replies;
        assert_eq!(
            replies,
            &vec![1, 2],
            "the in-flight request completed via forwarding"
        );
    }

    #[test]
    fn retired_instances_drop_traffic() {
        let (mut world, a, _b, c) = three_node_world();
        let server = world.instantiate(
            "Counter",
            c,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Counter { count: 0 }),
            SimTime::ZERO,
        );
        let caller = world.instantiate(
            "Caller",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Caller {
                remaining: 5,
                replies: Vec::new(),
            }),
            SimTime::ZERO,
        );
        world.wire(caller, vec![server]);
        world.retire(server);
        world.run();
        let replies = &world
            .logic_mut(caller)
            .as_any()
            .unwrap()
            .downcast_ref::<Caller>()
            .unwrap()
            .replies;
        assert!(replies.is_empty(), "no replies from a retired instance");
    }

    #[test]
    fn local_migration_is_instant() {
        let (mut world, _a, _b, c) = three_node_world();
        let server = world.instantiate(
            "Counter",
            c,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Counter { count: 7 }),
            SimTime::ZERO,
        );
        world.run();
        let before = world.now();
        let (_new, live_at) = world.migrate(server, c);
        assert_eq!(live_at, before, "same-node migration costs nothing");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::fault::{InvokeError, LeaseConfig, LivenessKind, RetryPolicy};
    use ps_net::Credentials;
    use ps_sim::FaultPlan;

    struct Echo;
    impl ComponentLogic for Echo {
        fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, payload: &Payload) {
            out.reply(req, payload.clone());
        }
        fn on_response(&mut self, _o: &mut Outbox, _t: u64, _p: &Payload) {}
    }

    /// Sends one request at start; records replies, errors, and dead
    /// peers it is told about.
    struct Probe {
        replies: u64,
        errors: Vec<InvokeError>,
        dead_peers: Vec<InstanceId>,
    }
    impl Probe {
        fn new() -> Self {
            Probe {
                replies: 0,
                errors: Vec::new(),
                dead_peers: Vec::new(),
            }
        }
    }
    impl ComponentLogic for Probe {
        fn on_start(&mut self, out: &mut Outbox) {
            if out.linkage_count() > 0 {
                out.call(0, Payload::new((), 1_000), 7);
            }
        }
        fn on_request(&mut self, _o: &mut Outbox, _r: RequestHandle, _p: &Payload) {}
        fn on_response(&mut self, _o: &mut Outbox, token: u64, _p: &Payload) {
            assert_eq!(token, 7);
            self.replies += 1;
        }
        fn on_error(&mut self, _o: &mut Outbox, _token: u64, error: InvokeError) {
            self.errors.push(error);
        }
        fn on_peers_retired(&mut self, _o: &mut Outbox, peers: &[InstanceId]) {
            self.dead_peers.extend_from_slice(peers);
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    fn probe_world(latency_ms: u64) -> (World, InstanceId, InstanceId) {
        let mut net = Network::new();
        let a = net.add_node("a", "s", 1.0, Credentials::new());
        let b = net.add_node("b", "t", 1.0, Credentials::new());
        net.add_link(
            a,
            b,
            SimDuration::from_millis(latency_ms),
            1e8,
            Credentials::new(),
        );
        let mut world = World::new(net);
        let server = world.instantiate(
            "Echo",
            b,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Echo),
            SimTime::ZERO,
        );
        let client = world.instantiate(
            "Probe",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Probe::new()),
            SimTime::ZERO,
        );
        world.wire(client, vec![server]);
        (world, client, server)
    }

    fn probe(world: &mut World, id: InstanceId) -> &Probe {
        world
            .logic_mut(id)
            .as_any()
            .unwrap()
            .downcast_ref::<Probe>()
            .unwrap()
    }

    #[test]
    fn lease_expiry_detects_crash_at_deterministic_time() {
        let (mut world, _client, server) = probe_world(10);
        world.enable_leases(LeaseConfig {
            duration: SimDuration::from_secs(2),
            heartbeat: SimDuration::from_millis(500),
        });
        world.run();
        world.run_until(SimTime::from_nanos(3_200_000_000));
        world.crash_node(NodeId(1));
        assert!(!world.node_is_up(NodeId(1)));
        assert!(world.is_retired(server), "crash halts instances at once");
        assert!(
            world.take_liveness_events().is_empty(),
            "detection is deferred until the lease runs out"
        );
        world.run();
        // Last renewal at 3.0 s (heartbeats every 0.5 s), + 2 s lease.
        assert_eq!(world.now(), SimTime::from_nanos(5_000_000_000));
        let events = world.take_liveness_events();
        assert!(events.iter().any(|e| e.kind
            == LivenessKind::InstanceDown {
                instance: server,
                node: NodeId(1)
            }
            && e.at == SimTime::from_nanos(5_000_000_000)));
        assert!(events
            .iter()
            .any(|e| e.kind == LivenessKind::NodeDown { node: NodeId(1) }));
    }

    #[test]
    fn retry_resends_through_a_loss_window() {
        let (mut world, client, _server) = probe_world(10);
        world.enable_retry(RetryPolicy {
            max_attempts: 3,
            timeout: SimDuration::from_secs(1),
            backoff_multiplier: 2.0,
            deadline: None,
        });
        // Drop everything for the first 500 ms; the 1 s timeout retries
        // into the clear window.
        let mut plan = FaultPlan::new();
        plan.loss_window(SimTime::ZERO, 0, 1.0, SimDuration::from_millis(500));
        world.install_fault_plan(&plan);
        world.run();
        let p = probe(&mut world, client);
        assert_eq!(p.replies, 1, "the retry completed the request");
        assert!(p.errors.is_empty());
    }

    #[test]
    fn retry_exhaustion_surfaces_typed_error() {
        let (mut world, client, server) = probe_world(10);
        world.enable_retry(RetryPolicy {
            max_attempts: 2,
            timeout: SimDuration::from_millis(100),
            backoff_multiplier: 2.0,
            deadline: None,
        });
        world.crash_node(NodeId(1));
        world.run();
        let now = world.now();
        let p = probe(&mut world, client);
        assert_eq!(p.replies, 0);
        assert_eq!(p.errors, vec![InvokeError::TimedOut { attempts: 2 }]);
        assert!(p.dead_peers.contains(&server), "survivors were notified");
        // 100 ms first timeout + 200 ms backed-off second.
        assert_eq!(now, SimTime::from_nanos(300_000_000));
    }

    #[test]
    fn deadline_cuts_retries_short() {
        let (mut world, client, _server) = probe_world(10);
        world.enable_retry(RetryPolicy {
            max_attempts: 10,
            timeout: SimDuration::from_millis(100),
            backoff_multiplier: 1.0,
            deadline: Some(SimDuration::from_millis(250)),
        });
        world.crash_node(NodeId(1));
        world.run();
        let p = probe(&mut world, client);
        assert_eq!(p.errors.len(), 1);
        assert!(matches!(
            p.errors[0],
            InvokeError::DeadlineExceeded { attempts: 3 }
        ));
    }

    #[test]
    fn fail_node_returns_typed_report() {
        let (mut world, client, server) = probe_world(10);
        world.run();
        let report = world.fail_node(NodeId(1));
        assert_eq!(report.node, NodeId(1));
        assert_eq!(report.retired, vec![server]);
        assert!(matches!(report.detection, DetectionMode::Immediate));
        assert!(report.lookup_purged.is_empty());
        // Survivors learned about the dead peer synchronously.
        let p = probe(&mut world, client);
        assert_eq!(p.dead_peers, vec![server]);
        // Failing again is a no-op.
        assert!(world.fail_node(NodeId(1)).retired.is_empty());
    }

    #[test]
    fn restart_emits_node_up_and_accepts_new_instances() {
        let (mut world, _client, server) = probe_world(10);
        world.run();
        world.crash_node(NodeId(1));
        world.restart_node(NodeId(1));
        let events = world.take_liveness_events();
        assert!(events
            .iter()
            .any(|e| e.kind == LivenessKind::NodeUp { node: NodeId(1) }));
        assert!(world.node_is_up(NodeId(1)));
        assert!(world.is_retired(server), "old instances stay dead");
        // A fresh instance on the restarted node serves again.
        let now = world.now();
        let server2 = world.instantiate(
            "Echo",
            NodeId(1),
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Echo),
            now,
        );
        let client2 = world.instantiate(
            "Probe",
            NodeId(0),
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Probe::new()),
            now,
        );
        world.wire(client2, vec![server2]);
        world.run();
        assert_eq!(probe(&mut world, client2).replies, 1);
    }

    #[test]
    fn link_down_drops_traffic_and_emits_liveness() {
        let (mut world, client, _server) = probe_world(10);
        world.set_link_state(ps_net::LinkId(0), false);
        let events = world.take_liveness_events();
        assert!(events.iter().any(|e| e.kind
            == LivenessKind::LinkDown {
                link: ps_net::LinkId(0)
            }));
        assert!(!world.network().link(ps_net::LinkId(0)).up);
        world.run();
        assert_eq!(probe(&mut world, client).replies, 0, "no path, no reply");
    }

    #[test]
    fn fault_plan_replays_identically() {
        let run = |seed: u64| {
            let (mut world, client, _server) = probe_world(10);
            world.set_fault_seed(seed);
            world.enable_retry(RetryPolicy {
                max_attempts: 5,
                timeout: SimDuration::from_millis(200),
                backoff_multiplier: 1.5,
                deadline: None,
            });
            let mut plan = FaultPlan::new();
            plan.loss_window(SimTime::ZERO, 0, 0.5, SimDuration::from_millis(600));
            world.install_fault_plan(&plan);
            world.run();
            let events = world.events_processed();
            let messages = world.messages_sent();
            let p = probe(&mut world, client);
            (events, messages, p.replies, p.errors.clone())
        };
        assert_eq!(run(42), run(42), "same seed, same outcome");
    }
}
