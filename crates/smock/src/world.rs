//! The simulated Smock world: deployed instances exchanging messages
//! over the traffic-shaped network.
//!
//! Messages travel hop-by-hop (store-and-forward) over the links of
//! their route, queueing at busy links exactly as the Click-shaped
//! testbed links did; request handling charges the component's declared
//! per-request CPU cost on the hosting node's FIFO CPU. The world is
//! deterministic: equal seeds and workloads replay identically.

use crate::component::{
    Action, ComponentLogic, InstanceId, InstanceInfo, Outbox, Payload, RequestHandle,
};
use ps_net::{shortest_route, Network, NodeId};
use ps_sim::{CpuModel, Engine, LinkModel, Percentiles, SimDuration, SimTime, Summary};
use ps_spec::{Behavior, ResolvedBindings};
use ps_trace::Tracer;
use std::collections::{BTreeMap, HashMap};

/// Directed hop sequence memo per (from, to) node pair.
type RouteMemo = HashMap<(u32, u32), Option<Vec<(ps_net::LinkId, u8)>>>;

/// Events driving the world.
#[derive(Debug)]
enum Event {
    /// A message is ready to enter hop `envelope.hop` of its route.
    Hop { msg: u64 },
    /// A message arrived at its destination node (CPU not yet charged).
    Deliver { msg: u64 },
    /// CPU service for a delivered message completed; run the handler.
    Process { msg: u64 },
    /// A component timer fired.
    Timer { instance: InstanceId, tag: u64 },
    /// Instance start callback.
    Start { instance: InstanceId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Expecting a reply correlated by the request id.
    Request { req: u64 },
    /// Reply to request `req`.
    Response { req: u64 },
    /// One-way.
    Notify,
}

struct Envelope {
    kind: Kind,
    from: InstanceId,
    to: InstanceId,
    /// `(link, direction)` per hop; direction 0 = a->b, 1 = b->a.
    hops: Vec<(ps_net::LinkId, u8)>,
    hop: usize,
    payload: Payload,
}

struct PendingRequest {
    caller: InstanceId,
    token: u64,
    /// Open `invoke` trace span (0 when tracing is disabled).
    span: u64,
}

struct InstanceSlot {
    info: InstanceInfo,
    behavior: Behavior,
    logic: Option<Box<dyn ComponentLogic>>,
    /// Messages addressed here are re-sent to the forwarding target
    /// (set after a migration).
    forward: Option<InstanceId>,
    /// A retired instance drops everything addressed to it.
    retired: bool,
}

/// Mutable world state (separated from the engine so event handlers can
/// borrow both).
struct State {
    net: Network,
    /// Full-duplex links: one shaping queue per direction.
    links: Vec<[LinkModel; 2]>,
    cpus: Vec<CpuModel>,
    instances: Vec<InstanceSlot>,
    envelopes: HashMap<u64, Envelope>,
    pending: HashMap<u64, PendingRequest>,
    next_msg: u64,
    next_req: u64,
    metrics: BTreeMap<String, (Summary, Percentiles)>,
    messages_sent: u64,
    /// Memoized directed hop sequences per (from, to) node pair;
    /// invalidated whenever link conditions change.
    route_cache: RouteMemo,
}

/// The simulated runtime.
pub struct World {
    engine: Engine<Event>,
    state: State,
}

impl World {
    /// Builds a world over a network: one [`LinkModel`] per link and one
    /// [`CpuModel`] per node.
    pub fn new(net: Network) -> Self {
        let links = net
            .links()
            .iter()
            .map(|l| {
                [
                    LinkModel::new(l.latency, l.bandwidth_bps),
                    LinkModel::new(l.latency, l.bandwidth_bps),
                ]
            })
            .collect();
        let cpus = net
            .nodes()
            .iter()
            .map(|n| CpuModel::new(n.cpu_speed))
            .collect();
        World {
            engine: Engine::new(),
            state: State {
                net,
                links,
                cpus,
                instances: Vec::new(),
                envelopes: HashMap::new(),
                pending: HashMap::new(),
                next_msg: 0,
                next_req: 0,
                metrics: BTreeMap::new(),
                messages_sent: 0,
                route_cache: HashMap::new(),
            },
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Installs a tracer on the world (and its engine). Message traffic,
    /// forwards, drops, and request `invoke` spans flow into it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.engine.set_tracer(tracer);
    }

    /// The installed tracer (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        self.engine.tracer()
    }

    /// Publishes resource-occupancy gauges (per-direction link busy time,
    /// bytes carried, transmissions; per-node CPU busy time) into the
    /// tracer's registry. Call after (or during) a run; a no-op when
    /// tracing is disabled.
    pub fn publish_resource_metrics(&self) {
        let tracer = self.engine.tracer();
        if !tracer.enabled() {
            return;
        }
        for (i, directions) in self.state.links.iter().enumerate() {
            for (dir, link) in directions.iter().enumerate() {
                let prefix = format!("link.{i}.{dir}");
                tracer.gauge(
                    &format!("{prefix}.busy_ms"),
                    link.busy_time().as_millis_f64(),
                );
                tracer.gauge(&format!("{prefix}.bytes"), link.bytes_carried() as f64);
                tracer.gauge(
                    &format!("{prefix}.transmissions"),
                    link.transmissions() as f64,
                );
            }
        }
        for (i, cpu) in self.state.cpus.iter().enumerate() {
            tracer.gauge(&format!("cpu.{i}.busy_ms"), cpu.busy_time().as_millis_f64());
            tracer.gauge(&format!("cpu.{i}.jobs"), cpu.jobs() as f64);
        }
    }

    /// The network.
    pub fn network(&self) -> &Network {
        &self.state.net
    }

    /// Total messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.state.messages_sent
    }

    /// Instantiates a component on a node. Linkages are wired later via
    /// [`wire`](Self::wire); `on_start` fires at `start_at` (schedule the
    /// deployment engine computed).
    pub fn instantiate(
        &mut self,
        component: impl Into<String>,
        node: NodeId,
        factors: ResolvedBindings,
        behavior: Behavior,
        logic: Box<dyn ComponentLogic>,
        start_at: SimTime,
    ) -> InstanceId {
        let id = InstanceId(self.state.instances.len() as u32);
        self.state.instances.push(InstanceSlot {
            info: InstanceInfo {
                id,
                component: component.into(),
                node,
                factors,
                linkages: Vec::new(),
            },
            behavior,
            logic: Some(logic),
            forward: None,
            retired: false,
        });
        self.engine
            .schedule_at(start_at, Event::Start { instance: id });
        id
    }

    /// Wires `instance`'s required linkages to provider instances.
    pub fn wire(&mut self, instance: InstanceId, linkages: Vec<InstanceId>) {
        self.state.instances[instance.0 as usize].info.linkages = linkages;
    }

    /// Info for an instance.
    pub fn instance(&self, id: InstanceId) -> &InstanceInfo {
        &self.state.instances[id.0 as usize].info
    }

    /// Number of instances.
    pub fn instance_count(&self) -> usize {
        self.state.instances.len()
    }

    /// Whether any instance of `component` (whatever its configuration)
    /// runs on `node` — the node wrapper then already holds its code, so
    /// a further instantiation ships no blueprint.
    pub fn code_present(&self, component: &str, node: NodeId) -> bool {
        self.state
            .instances
            .iter()
            .any(|s| s.info.component == component && s.info.node == node)
    }

    /// Finds the first *live* instance of `component` on `node` with
    /// matching factors (used by the deployment engine to reuse
    /// replicas); retired instances never match.
    pub fn find_instance(
        &self,
        component: &str,
        node: NodeId,
        factors: &ResolvedBindings,
    ) -> Option<InstanceId> {
        self.state
            .instances
            .iter()
            .find(|s| {
                !s.retired
                    && s.info.component == component
                    && s.info.node == node
                    && &s.info.factors == factors
            })
            .map(|s| s.info.id)
    }

    /// Mutable access to an instance's logic, for test assertions and
    /// state inspection between runs.
    pub fn logic_mut(&mut self, id: InstanceId) -> &mut dyn ComponentLogic {
        self.state.instances[id.0 as usize]
            .logic
            .as_mut()
            .expect("logic present outside dispatch")
            .as_mut()
    }

    /// Records a measurement from outside component code (the harness).
    pub fn record_metric(&mut self, metric: &str, value: f64) {
        let entry = self
            .state
            .metrics
            .entry(metric.to_owned())
            .or_insert_with(|| (Summary::new(), Percentiles::new()));
        entry.0.record(value);
        entry.1.record(value);
    }

    /// Summary of a metric (empty summary when never recorded).
    pub fn metric(&self, name: &str) -> Summary {
        self.state
            .metrics
            .get(name)
            .map(|(s, _)| s.clone())
            .unwrap_or_default()
    }

    /// Percentile sampler for a metric.
    pub fn metric_percentiles(&mut self, name: &str) -> Option<&mut Percentiles> {
        self.state.metrics.get_mut(name).map(|(_, p)| p)
    }

    /// Names of all recorded metrics.
    pub fn metric_names(&self) -> Vec<String> {
        self.state.metrics.keys().cloned().collect()
    }

    /// Changes a link's conditions mid-run (the dynamic environment of
    /// Section 6): both the routing graph and the traffic-shaping models
    /// pick up the new latency and bandwidth; transmissions already in
    /// progress complete under the old parameters.
    pub fn update_link(
        &mut self,
        link: ps_net::LinkId,
        latency: ps_sim::SimDuration,
        bandwidth_bps: f64,
    ) {
        let l = self.state.net.link_mut(link);
        l.latency = latency;
        l.bandwidth_bps = bandwidth_bps;
        for direction in &mut self.state.links[link.0 as usize] {
            direction.latency = latency;
            direction.bandwidth_bps = bandwidth_bps;
        }
        self.state.route_cache.clear();
    }

    /// Changes a link's credentials mid-run (e.g. a secure leased line
    /// cut over to the public internet).
    pub fn update_link_credentials(
        &mut self,
        link: ps_net::LinkId,
        credentials: ps_net::Credentials,
    ) {
        self.state.net.link_mut(link).credentials = credentials;
        // Security credentials participate in the routing metric.
        self.state.route_cache.clear();
    }

    /// Changes a node's credentials mid-run (e.g. a trust revocation the
    /// monitoring layer reports).
    pub fn update_node_credentials(&mut self, node: NodeId, credentials: ps_net::Credentials) {
        self.state.net.node_mut(node).credentials = credentials;
    }

    /// Migrates an instance's state to a new instance on `to_node`
    /// (Section 6: redeployment "needs to preserve state compatibility
    /// ... and carefully consider the internal state of components as
    /// well as any partially processed requests").
    ///
    /// The component's state moves with its logic; the transfer is
    /// charged over the current route using the snapshot's size (the
    /// component's [`ComponentLogic::snapshot`] hook, 4 KiB when it does
    /// not implement one). Until and after the hand-off, traffic that
    /// still addresses the old instance — in-flight requests included —
    /// is forwarded to the new one, so partially processed exchanges
    /// complete. The old instance's linkages carry over; callers should
    /// [`wire`](Self::wire) differently if the move changes providers.
    ///
    /// Returns the new instance id and the time the new instance is
    /// live.
    pub fn migrate(&mut self, old: InstanceId, to_node: NodeId) -> (InstanceId, SimTime) {
        let slot = &mut self.state.instances[old.0 as usize];
        debug_assert!(!slot.retired, "cannot migrate a retired instance");
        let logic = slot.logic.take().expect("migrate outside dispatch");
        let state_bytes = logic.snapshot().map(|p| p.wire_bytes).unwrap_or(4096);
        let from_node = slot.info.node;
        let component = slot.info.component.clone();
        let factors = slot.info.factors.clone();
        let behavior = slot.behavior.clone();
        let linkages = slot.info.linkages.clone();

        let transfer = if from_node == to_node {
            ps_sim::SimDuration::ZERO
        } else {
            match shortest_route(&self.state.net, from_node, to_node) {
                Some(route) if !route.is_local() => {
                    route.latency
                        + ps_sim::SimDuration::from_secs_f64(
                            state_bytes as f64 * 8.0 / route.bottleneck_bps,
                        )
                }
                _ => ps_sim::SimDuration::ZERO,
            }
        };
        let live_at = self.now() + transfer;
        let new = self.instantiate(component, to_node, factors, behavior, logic, live_at);
        self.state.instances[new.0 as usize].info.linkages = linkages;
        let slot = &mut self.state.instances[old.0 as usize];
        slot.forward = Some(new);
        slot.retired = true;
        // Every consumer wired to the old instance now talks to the new
        // one directly (the forward covers messages already in flight).
        for s in &mut self.state.instances {
            for l in &mut s.info.linkages {
                if *l == old {
                    *l = new;
                }
            }
        }
        // Calls the old instance made whose responses are still pending
        // belong to the moved logic: re-point them so the responses are
        // dispatched at the new instance.
        for pending in self.state.pending.values_mut() {
            if pending.caller == old {
                pending.caller = new;
            }
        }
        (new, live_at)
    }

    /// Fails a node abruptly: every instance hosted there is retired
    /// *without* the graceful [`ComponentLogic::on_retire`] hook (a crash
    /// ships no state), and traffic addressed to those instances is
    /// dropped. Returns the retired instances. The node stays in the
    /// topology (links up, conditions unchanged) — modelling a host
    /// crash, not a partition; callers wanting the planner to avoid the
    /// node should also strip its credentials.
    pub fn fail_node(&mut self, node: NodeId) -> Vec<InstanceId> {
        let mut failed = Vec::new();
        for slot in &mut self.state.instances {
            if slot.info.node == node && !slot.retired {
                slot.retired = true;
                slot.forward = None;
                failed.push(slot.info.id);
            }
        }
        failed
    }

    /// Retires an instance: its [`ComponentLogic::on_retire`] hook runs
    /// first (so stateful components can flush upstream), then subsequent
    /// and in-flight messages to it are dropped. Used when a re-plan
    /// removes a component.
    pub fn retire(&mut self, instance: InstanceId) {
        if self.state.instances[instance.0 as usize].retired {
            return;
        }
        dispatch(&mut self.engine, &mut self.state, instance, |logic, out| {
            logic.on_retire(out)
        });
        let slot = &mut self.state.instances[instance.0 as usize];
        slot.retired = true;
        slot.forward = None;
    }

    /// Whether an instance has been retired (or migrated away).
    pub fn is_retired(&self, instance: InstanceId) -> bool {
        self.state.instances[instance.0 as usize].retired
    }

    /// Runs until the event queue drains.
    pub fn run(&mut self) {
        self.engine.run(&mut self.state, handle);
    }

    /// Runs until `deadline` (events after it stay queued).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.engine.run_until(deadline, &mut self.state, handle);
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.engine.processed()
    }
}

/// Event dispatch.
fn handle(engine: &mut Engine<Event>, state: &mut State, event: Event) {
    match event {
        Event::Start { instance } => {
            dispatch(engine, state, instance, |logic, out| logic.on_start(out));
        }
        Event::Timer { instance, tag } => {
            dispatch(engine, state, instance, |logic, out| {
                logic.on_timer(out, tag)
            });
        }
        Event::Hop { msg } => {
            let now = engine.now();
            let Some(((link, dir), bytes)) = state
                .envelopes
                .get(&msg)
                .map(|e| (e.hops[e.hop], e.payload.wire_bytes))
            else {
                return;
            };
            let arrival = state.links[link.0 as usize][dir as usize].transmit(now, bytes);
            let env = state.envelopes.get_mut(&msg).expect("envelope exists");
            env.hop += 1;
            let next = if env.hop == env.hops.len() {
                Event::Deliver { msg }
            } else {
                Event::Hop { msg }
            };
            engine.schedule_at(arrival, next);
        }
        Event::Deliver { msg } => {
            let now = engine.now();
            let Some((to, kind)) = state.envelopes.get(&msg).map(|e| (e.to, e.kind)) else {
                return;
            };
            // Migrated away? Forward the envelope along; retired with no
            // forwarding address? Drop it.
            let slot = &state.instances[to.0 as usize];
            if slot.retired {
                match slot.forward {
                    Some(target) => {
                        // Charge the forwarding hop from the *old*
                        // instance's node to the new one (`to` still
                        // names the old instance, whose node is intact).
                        let env = state.envelopes.remove(&msg).expect("present");
                        engine.tracer().count("world.forwards", 1);
                        engine.tracer().instant(
                            "smock.world",
                            "forward",
                            now.as_nanos(),
                            vec![
                                ("from", env.from.0.into()),
                                ("to", to.0.into()),
                                ("target", target.0.into()),
                            ],
                        );
                        send(engine, state, to, target, env.kind, env.payload);
                    }
                    None => {
                        let env = state.envelopes.remove(&msg).expect("present");
                        engine.tracer().count("world.drops", 1);
                        engine.tracer().instant(
                            "smock.world",
                            "drop",
                            now.as_nanos(),
                            vec![("from", env.from.0.into()), ("to", to.0.into())],
                        );
                    }
                }
                return;
            }
            // Requests and notifies charge the component's per-request
            // CPU; responses are charged to the caller implicitly via its
            // own follow-on work.
            let cpu_ms = match kind {
                Kind::Request { .. } | Kind::Notify => {
                    state.instances[to.0 as usize].behavior.cpu_per_request_ms
                }
                Kind::Response { .. } => 0.0,
            };
            let node = state.instances[to.0 as usize].info.node;
            let done = if cpu_ms > 0.0 {
                state.cpus[node.0 as usize].execute(now, cpu_ms)
            } else {
                now
            };
            engine.schedule_at(done, Event::Process { msg });
        }
        Event::Process { msg } => {
            let Some(env) = state.envelopes.remove(&msg) else {
                return;
            };
            let to = env.to;
            // The target may have migrated (or crashed) between this
            // message's CPU scheduling and now: forward or drop, exactly
            // as at delivery time.
            let slot = &state.instances[to.0 as usize];
            if slot.retired {
                match slot.forward {
                    Some(target) => {
                        engine.tracer().count("world.forwards", 1);
                        send(engine, state, to, target, env.kind, env.payload);
                    }
                    None => {
                        engine.tracer().count("world.drops", 1);
                        engine.tracer().instant(
                            "smock.world",
                            "drop",
                            engine.now().as_nanos(),
                            vec![("from", env.from.0.into()), ("to", to.0.into())],
                        );
                    }
                }
                return;
            }
            match env.kind {
                Kind::Request { req } => {
                    dispatch(engine, state, to, |logic, out| {
                        logic.on_request(out, RequestHandle(req), &env.payload)
                    });
                }
                Kind::Response { req } => {
                    if let Some(pending) = state.pending.remove(&req) {
                        debug_assert_eq!(pending.caller, to);
                        let token = pending.token;
                        engine.tracer().exit_span(
                            "smock.world",
                            "invoke",
                            pending.span,
                            engine.now().as_nanos(),
                            Vec::new(),
                        );
                        dispatch(engine, state, to, |logic, out| {
                            logic.on_response(out, token, &env.payload)
                        });
                    }
                }
                Kind::Notify => {
                    dispatch(engine, state, to, |logic, out| {
                        logic.on_notify(out, &env.payload)
                    });
                }
            }
        }
    }
}

/// Runs a handler on an instance's logic and applies the emitted actions.
fn dispatch(
    engine: &mut Engine<Event>,
    state: &mut State,
    instance: InstanceId,
    f: impl FnOnce(&mut dyn ComponentLogic, &mut Outbox),
) {
    let mut logic = state.instances[instance.0 as usize]
        .logic
        .take()
        .expect("no reentrant dispatch");
    let linkage_count = state.instances[instance.0 as usize].info.linkages.len();
    let mut out = Outbox::new(
        engine.now(),
        linkage_count,
        instance,
        engine.tracer().clone(),
    );
    f(logic.as_mut(), &mut out);
    state.instances[instance.0 as usize].logic = Some(logic);
    apply_actions(engine, state, instance, out.actions);
}

fn apply_actions(
    engine: &mut Engine<Event>,
    state: &mut State,
    instance: InstanceId,
    actions: Vec<Action>,
) {
    for action in actions {
        match action {
            Action::Reply { to, payload } => {
                let req = to.0;
                let Some(pending) = state.pending.get(&req) else {
                    continue;
                };
                let caller = pending.caller;
                send(
                    engine,
                    state,
                    instance,
                    caller,
                    Kind::Response { req },
                    payload,
                );
            }
            Action::Call {
                linkage,
                payload,
                token,
            } => {
                let provider = state.instances[instance.0 as usize].info.linkages[linkage];
                let req = state.next_req;
                state.next_req += 1;
                let span = engine.tracer().enter_span(
                    "smock.world",
                    "invoke",
                    engine.now().as_nanos(),
                    vec![
                        ("from", instance.0.into()),
                        ("to", provider.0.into()),
                        ("req", req.into()),
                    ],
                );
                state.pending.insert(
                    req,
                    PendingRequest {
                        caller: instance,
                        token,
                        span,
                    },
                );
                send(
                    engine,
                    state,
                    instance,
                    provider,
                    Kind::Request { req },
                    payload,
                );
            }
            Action::Notify { linkage, payload } => {
                let provider = state.instances[instance.0 as usize].info.linkages[linkage];
                send(engine, state, instance, provider, Kind::Notify, payload);
            }
            Action::NotifyInstance { to, payload } => {
                send(engine, state, instance, to, Kind::Notify, payload);
            }
            Action::Timer { delay, tag } => {
                engine.schedule(delay, Event::Timer { instance, tag });
            }
            Action::Measure { metric, value } => {
                let entry = state
                    .metrics
                    .entry(metric.to_owned())
                    .or_insert_with(|| (Summary::new(), Percentiles::new()));
                entry.0.record(value);
                entry.1.record(value);
            }
        }
    }
}

/// Enqueues a message from one instance to another; local (same node)
/// deliveries skip the network entirely.
fn send(
    engine: &mut Engine<Event>,
    state: &mut State,
    from: InstanceId,
    to: InstanceId,
    kind: Kind,
    payload: Payload,
) {
    state.messages_sent += 1;
    let from_node = state.instances[from.0 as usize].info.node;
    let to_node = state.instances[to.0 as usize].info.node;
    let hops = if from_node == to_node {
        Vec::new()
    } else {
        let cached = state
            .route_cache
            .entry((from_node.0, to_node.0))
            .or_insert_with(|| {
                shortest_route(&state.net, from_node, to_node).map(|route| {
                    // Annotate each link with its traversal direction so
                    // each direction of a full-duplex link queues
                    // independently.
                    let mut hops = Vec::with_capacity(route.links.len());
                    let mut at = from_node;
                    for &l in &route.links {
                        let link = state.net.link(l);
                        let dir = if link.a == at { 0u8 } else { 1u8 };
                        at = link.other(at).expect("route links are connected");
                        hops.push((l, dir));
                    }
                    hops
                })
            });
        match cached {
            Some(hops) => hops.clone(),
            None => {
                // Unreachable destination: message dropped.
                engine.tracer().count("world.drops", 1);
                engine.tracer().instant(
                    "smock.world",
                    "drop",
                    engine.now().as_nanos(),
                    vec![("from", from.0.into()), ("to", to.0.into())],
                );
                return;
            }
        }
    };
    engine.tracer().count("world.messages", 1);
    if !hops.is_empty() {
        engine.tracer().count("world.hops", hops.len() as u64);
    }
    let msg = state.next_msg;
    state.next_msg += 1;
    let first = if hops.is_empty() {
        Event::Deliver { msg }
    } else {
        Event::Hop { msg }
    };
    state.envelopes.insert(
        msg,
        Envelope {
            kind,
            from,
            to,
            hops,
            hop: 0,
            payload,
        },
    );
    // Local delivery costs a small constant (in-process invocation).
    let delay = if from_node == to_node {
        SimDuration::from_micros(20)
    } else {
        SimDuration::ZERO
    };
    engine.schedule(delay, first);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_net::Credentials;

    /// Echo server: replies with the request payload.
    struct Echo;
    impl ComponentLogic for Echo {
        fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, payload: &Payload) {
            out.reply(req, payload.clone());
        }
        fn on_response(&mut self, _out: &mut Outbox, _token: u64, _payload: &Payload) {}
    }

    /// Client: sends one request at start, records the round-trip.
    struct OneShot {
        sent_at: SimTime,
        pub rtt_ms: Option<f64>,
    }
    impl ComponentLogic for OneShot {
        fn on_start(&mut self, out: &mut Outbox) {
            self.sent_at = out.now();
            out.call(0, Payload::new((), 1_000_000), 1);
        }
        fn on_request(&mut self, _out: &mut Outbox, _req: RequestHandle, _p: &Payload) {}
        fn on_response(&mut self, out: &mut Outbox, token: u64, _p: &Payload) {
            assert_eq!(token, 1);
            let rtt = (out.now() - self.sent_at).as_millis_f64();
            self.rtt_ms = Some(rtt);
            out.measure("rtt_ms", rtt);
        }
    }

    fn two_node_world(latency_ms: u64, bw: f64) -> (World, InstanceId, InstanceId) {
        let mut net = Network::new();
        let a = net.add_node("a", "s", 1.0, Credentials::new());
        let b = net.add_node("b", "t", 1.0, Credentials::new());
        net.add_link(
            a,
            b,
            SimDuration::from_millis(latency_ms),
            bw,
            Credentials::new(),
        );
        let mut world = World::new(net);
        let server = world.instantiate(
            "Echo",
            b,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Echo),
            SimTime::ZERO,
        );
        let client = world.instantiate(
            "Client",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(OneShot {
                sent_at: SimTime::ZERO,
                rtt_ms: None,
            }),
            SimTime::ZERO,
        );
        world.wire(client, vec![server]);
        (world, client, server)
    }

    #[test]
    fn request_response_round_trip_times_are_physical() {
        // 1 MB over 8 Mb/s + 400 ms each way: 1s + 0.4s, both directions.
        let (mut world, _, _) = two_node_world(400, 8e6);
        world.run();
        let m = world.metric("rtt_ms");
        assert_eq!(m.count(), 1);
        assert!((m.mean() - 2800.0).abs() < 1.0, "rtt {}", m.mean());
    }

    #[test]
    fn cpu_cost_is_charged_for_requests() {
        let mut net = Network::new();
        let a = net.add_node("a", "s", 1.0, Credentials::new());
        let mut world = World::new(net);
        // Both instances on one node: only local delivery + CPU.
        let server = world.instantiate(
            "Echo",
            a,
            ResolvedBindings::new(),
            Behavior::new().cpu_per_request_ms(5.0),
            Box::new(Echo),
            SimTime::ZERO,
        );
        let client = world.instantiate(
            "Client",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(OneShot {
                sent_at: SimTime::ZERO,
                rtt_ms: None,
            }),
            SimTime::ZERO,
        );
        world.wire(client, vec![server]);
        world.run();
        let m = world.metric("rtt_ms");
        assert!(m.mean() >= 5.0, "rtt {} must include 5ms CPU", m.mean());
        assert!(m.mean() < 6.0);
    }

    #[test]
    fn concurrent_transfers_queue_on_the_link() {
        // Two clients sharing one 8 Mb/s link: second transfer queues.
        let mut net = Network::new();
        let a = net.add_node("a", "s", 1.0, Credentials::new());
        let b = net.add_node("b", "t", 1.0, Credentials::new());
        net.add_link(a, b, SimDuration::ZERO, 8e6, Credentials::new());
        let mut world = World::new(net);
        let server = world.instantiate(
            "Echo",
            b,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Echo),
            SimTime::ZERO,
        );
        for _ in 0..2 {
            let c = world.instantiate(
                "Client",
                a,
                ResolvedBindings::new(),
                Behavior::new(),
                Box::new(OneShot {
                    sent_at: SimTime::ZERO,
                    rtt_ms: None,
                }),
                SimTime::ZERO,
            );
            world.wire(c, vec![server]);
        }
        world.run();
        let mut p = world.metric_percentiles("rtt_ms").unwrap().clone();
        // First ~2s (1s each way), second queued behind: ~3s.
        let fast = p.quantile(0.0).unwrap();
        let slow = p.quantile(1.0).unwrap();
        assert!((fast - 2000.0).abs() < 50.0, "fast {fast}");
        assert!((slow - 3000.0).abs() < 50.0, "slow {slow}");
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let (mut world, _, _) = two_node_world(100, 1e7);
            world.run();
            (world.metric("rtt_ms").mean(), world.events_processed())
        };
        assert_eq!(run(), run());
    }
}

#[cfg(test)]
mod migration_tests {
    use super::*;
    use crate::component::{ComponentLogic, Outbox, Payload, RequestHandle};
    use ps_net::Credentials;

    /// A counter server whose state must survive migration.
    struct Counter {
        count: u64,
    }
    impl ComponentLogic for Counter {
        fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, _p: &Payload) {
            self.count += 1;
            out.reply(req, Payload::new(self.count, 8));
        }
        fn on_response(&mut self, _o: &mut Outbox, _t: u64, _p: &Payload) {}
        fn snapshot(&self) -> Option<Payload> {
            Some(Payload::new(self.count, 8192))
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    /// Issues `n` requests, waiting for each reply; records the replies.
    struct Caller {
        remaining: u32,
        pub replies: Vec<u64>,
    }
    impl ComponentLogic for Caller {
        fn on_start(&mut self, out: &mut Outbox) {
            out.call(0, Payload::new((), 64), 0);
        }
        fn on_request(&mut self, _o: &mut Outbox, _r: RequestHandle, _p: &Payload) {}
        fn on_response(&mut self, out: &mut Outbox, _t: u64, p: &Payload) {
            self.replies.push(*p.get::<u64>().expect("count"));
            self.remaining -= 1;
            if self.remaining > 0 {
                out.call(0, Payload::new((), 64), 0);
            }
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    fn three_node_world() -> (World, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node("a", "s1", 1.0, Credentials::new());
        let b = net.add_node("b", "s2", 1.0, Credentials::new());
        let c = net.add_node("c", "s3", 1.0, Credentials::new());
        let secure = || Credentials::new().with("Secure", true);
        net.add_link(a, b, SimDuration::from_millis(10), 1e8, secure());
        net.add_link(b, c, SimDuration::from_millis(10), 1e8, secure());
        net.add_link(a, c, SimDuration::from_millis(50), 1e7, secure());
        (World::new(net), a, b, c)
    }

    #[test]
    fn migration_preserves_state_and_reroutes_traffic() {
        let (mut world, a, b, c) = three_node_world();
        let server = world.instantiate(
            "Counter",
            c,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Counter { count: 0 }),
            SimTime::ZERO,
        );
        let caller = world.instantiate(
            "Caller",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Caller {
                remaining: 3,
                replies: Vec::new(),
            }),
            SimTime::ZERO,
        );
        world.wire(caller, vec![server]);
        world.run();

        // Migrate the counter from c to b; its count must carry over.
        let (new_server, live_at) = world.migrate(server, b);
        assert!(world.is_retired(server));
        assert!(live_at >= world.now());
        assert_eq!(world.instance(new_server).node, b);
        assert_eq!(
            world.instance(caller).linkages,
            vec![new_server],
            "consumers rewired"
        );

        // Three more calls land on the migrated instance.
        let now = world.now();
        let caller2 = world.instantiate(
            "Caller",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Caller {
                remaining: 3,
                replies: Vec::new(),
            }),
            now,
        );
        world.wire(caller2, vec![new_server]);
        world.run();

        let replies = &world
            .logic_mut(caller2)
            .as_any()
            .unwrap()
            .downcast_ref::<Caller>()
            .unwrap()
            .replies;
        assert_eq!(replies, &vec![4, 5, 6], "state survived the move");
    }

    #[test]
    fn in_flight_traffic_is_forwarded_after_migration() {
        let (mut world, a, b, c) = three_node_world();
        let server = world.instantiate(
            "Counter",
            c,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Counter { count: 0 }),
            SimTime::ZERO,
        );
        let caller = world.instantiate(
            "Caller",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Caller {
                remaining: 2,
                replies: Vec::new(),
            }),
            SimTime::ZERO,
        );
        world.wire(caller, vec![server]);
        // Let the first request get into flight (a->c is 50 ms; stop at
        // 20 ms, mid-flight), then migrate.
        world.run_until(SimTime::from_nanos(20_000_000));
        world.migrate(server, b);
        world.run();
        let replies = &world
            .logic_mut(caller)
            .as_any()
            .unwrap()
            .downcast_ref::<Caller>()
            .unwrap()
            .replies;
        assert_eq!(
            replies,
            &vec![1, 2],
            "the in-flight request completed via forwarding"
        );
    }

    #[test]
    fn retired_instances_drop_traffic() {
        let (mut world, a, _b, c) = three_node_world();
        let server = world.instantiate(
            "Counter",
            c,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Counter { count: 0 }),
            SimTime::ZERO,
        );
        let caller = world.instantiate(
            "Caller",
            a,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Caller {
                remaining: 5,
                replies: Vec::new(),
            }),
            SimTime::ZERO,
        );
        world.wire(caller, vec![server]);
        world.retire(server);
        world.run();
        let replies = &world
            .logic_mut(caller)
            .as_any()
            .unwrap()
            .downcast_ref::<Caller>()
            .unwrap()
            .replies;
        assert!(replies.is_empty(), "no replies from a retired instance");
    }

    #[test]
    fn local_migration_is_instant() {
        let (mut world, _a, _b, c) = three_node_world();
        let server = world.instantiate(
            "Counter",
            c,
            ResolvedBindings::new(),
            Behavior::new(),
            Box::new(Counter { count: 7 }),
            SimTime::ZERO,
        );
        world.run();
        let before = world.now();
        let (_new, live_at) = world.migrate(server, c);
        assert_eq!(live_at, before, "same-node migration costs nothing");
    }
}
