//! The deployment engine: realizes a [`Plan`] inside a [`World`]
//! (Figure 1, step 5).
//!
//! For every placement the engine either *reuses* an existing instance
//! (same component, node, and factored configuration — this is how two
//! client sites end up sharing one `ViewMailServer` replica), resolves a
//! *pinned* pre-existing instance (the primary server), or ships a
//! [`crate::registry::Blueprint`] to the node wrapper: the blueprint transfer is charged
//! on the simulated route from the code origin, and the instance starts
//! after a fixed startup delay. Linkages are wired exactly as the plan's
//! edges dictate.

use crate::component::InstanceId;
use crate::registry::{Blueprint, ComponentRegistry, FactoryArgs};
use crate::world::World;
use ps_net::{shortest_route, NodeId, PropertyTranslator};
use ps_planner::Plan;
use ps_sim::{SimDuration, SimTime};
use ps_spec::ServiceSpec;
use std::fmt;

/// Fixed per-instance startup delay (initialization, verification —
/// what the JVM spent installing and verifying downloaded classes).
pub const STARTUP_DELAY: SimDuration = SimDuration::from_millis(500);

/// Result of executing a plan.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Instance per linkage-graph node (same indexing as
    /// `plan.placements`).
    pub instances: Vec<InstanceId>,
    /// When every instance is started and wired.
    pub ready_at: SimTime,
    /// Instances newly created by this deployment.
    pub created: usize,
    /// Placements satisfied by reusing existing instances.
    pub reused: usize,
    /// Total blueprint bytes shipped.
    pub bytes_shipped: u64,
    /// The blueprints actually shipped to node wrappers (code already
    /// cached at the target is not re-shipped).
    pub blueprints: Vec<Blueprint>,
}

impl Deployment {
    /// The root (client-facing) instance.
    pub fn root(&self) -> InstanceId {
        self.instances[0]
    }
}

/// Why a deployment failed.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// No factory registered for a component the plan needs.
    UnknownComponent(String),
    /// A pinned component has no pre-existing instance on its node.
    MissingPinned {
        /// The component name.
        component: String,
        /// The node it was pinned to.
        node: NodeId,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::UnknownComponent(c) => {
                write!(f, "no factory registered for component `{c}`")
            }
            DeployError::MissingPinned { component, node } => write!(
                f,
                "pinned component `{component}` has no existing instance on {node}"
            ),
        }
    }
}

impl std::error::Error for DeployError {}

/// Executes `plan` in `world`, shipping blueprints from `origin`.
///
/// `translator` supplies the node environments handed to factories.
/// Returns the deployment handle with per-graph-node instances.
pub fn execute<T: PropertyTranslator + ?Sized>(
    world: &mut World,
    registry: &ComponentRegistry,
    translator: &T,
    spec: &ServiceSpec,
    plan: &Plan,
    origin: NodeId,
) -> Result<Deployment, DeployError> {
    let now = world.now();
    let n = plan.placements.len();
    let mut instances: Vec<Option<InstanceId>> = vec![None; n];
    let mut created = 0usize;
    let mut reused = 0usize;
    let mut bytes_shipped = 0u64;
    let mut blueprints = Vec::new();
    let mut ready_at = now;

    for placement in &plan.placements {
        let idx = placement.graph_index;
        // Pinned components must already run on their node.
        if placement.preexisting {
            let existing = world
                .find_instance(&placement.component, placement.node, &placement.factors)
                .ok_or_else(|| DeployError::MissingPinned {
                    component: placement.component.clone(),
                    node: placement.node,
                })?;
            instances[idx] = Some(existing);
            reused += 1;
            continue;
        }
        // Reuse an identical instance when one exists.
        if let Some(existing) =
            world.find_instance(&placement.component, placement.node, &placement.factors)
        {
            instances[idx] = Some(existing);
            reused += 1;
            continue;
        }
        // Ship a blueprint and instantiate. A node wrapper that already
        // holds the component's code (any configuration) skips the
        // transfer — only initialization remains.
        let behavior = spec.behavior_of(&placement.component);
        let cached = world.code_present(&placement.component, placement.node);
        let transfer = if cached {
            SimDuration::ZERO
        } else {
            bytes_shipped += behavior.code_size;
            blueprints.push(Blueprint {
                component: placement.component.clone(),
                factors: placement.factors.clone(),
                code_size: behavior.code_size,
            });
            blueprint_transfer_time(world, origin, placement.node, behavior.code_size)
        };
        let start_at = now + transfer + STARTUP_DELAY;
        ready_at = ready_at.max(start_at);

        let env = node_env(world, translator, placement.node);
        let args = FactoryArgs {
            component: &placement.component,
            node: placement.node,
            factors: &placement.factors,
            env: &env,
        };
        let logic = registry
            .create(&args)
            .ok_or_else(|| DeployError::UnknownComponent(placement.component.clone()))?;
        let id = world.instantiate(
            placement.component.clone(),
            placement.node,
            placement.factors.clone(),
            behavior,
            logic,
            start_at,
        );
        instances[idx] = Some(id);
        created += 1;
    }

    let instances: Vec<InstanceId> = instances.into_iter().map(Option::unwrap).collect();

    // Wire required linkages: children of each graph node, in order.
    for (idx, tree_node) in plan.graph.nodes.iter().enumerate() {
        let linkages = tree_node
            .children
            .iter()
            .map(|&(_, child)| instances[child])
            .collect();
        world.wire(instances[idx], linkages);
    }

    Ok(Deployment {
        instances,
        ready_at,
        created,
        reused,
        bytes_shipped,
        blueprints,
    })
}

fn node_env<T: PropertyTranslator + ?Sized>(
    world: &World,
    translator: &T,
    node: NodeId,
) -> ps_spec::Environment {
    translator.node_env(world.network().node(node))
}

/// Blueprint transfer time from `origin` to `node` over current routes
/// (latency + serialization at the bottleneck), zero when local.
pub fn blueprint_transfer_time(
    world: &World,
    origin: NodeId,
    node: NodeId,
    code_size: u64,
) -> SimDuration {
    if origin == node {
        return SimDuration::ZERO;
    }
    match shortest_route(world.network(), origin, node) {
        Some(route) if !route.is_local() => {
            let ser = SimDuration::from_secs_f64(code_size as f64 * 8.0 / route.bottleneck_bps);
            route.latency + ser
        }
        _ => SimDuration::ZERO,
    }
}
