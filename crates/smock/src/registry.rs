//! The component factory registry — the stand-in for Java dynamic class
//! loading.
//!
//! The paper's run-time downloads component *code* onto nodes and relies
//! on the JVM to verify and install it. Rust has no dynamic code
//! loading, so the registry holds a factory per component name; remote
//! deployment ships a [`Blueprint`] (name + factored configuration) and
//! the receiving node wrapper instantiates it from the registry, while
//! the simulated network still charges the declared code size for the
//! transfer. The observable costs and the per-node `Factors`
//! configuration — all the evaluation depends on — are preserved.

use crate::component::ComponentLogic;
use ps_net::NodeId;
use ps_spec::{Environment, ResolvedBindings};
use std::collections::BTreeMap;

/// What the deployment engine ships to a node wrapper.
#[derive(Debug, Clone, PartialEq)]
pub struct Blueprint {
    /// Component (specification) name.
    pub component: String,
    /// Resolved view factors for the target node.
    pub factors: ResolvedBindings,
    /// Code size charged for the transfer, bytes.
    pub code_size: u64,
}

/// Arguments handed to a component factory at instantiation time.
pub struct FactoryArgs<'a> {
    /// Component name being instantiated.
    pub component: &'a str,
    /// Hosting node.
    pub node: NodeId,
    /// Resolved factors (node-specific configuration).
    pub factors: &'a ResolvedBindings,
    /// The node's deployment environment.
    pub env: &'a Environment,
}

/// A component factory.
pub type Factory = Box<dyn Fn(&FactoryArgs<'_>) -> Box<dyn ComponentLogic>>;

/// Registry mapping component names to factories.
#[derive(Default)]
pub struct ComponentRegistry {
    factories: BTreeMap<String, Factory>,
}

impl ComponentRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a factory for `component`, replacing any previous one.
    pub fn register(
        &mut self,
        component: impl Into<String>,
        factory: impl Fn(&FactoryArgs<'_>) -> Box<dyn ComponentLogic> + 'static,
    ) {
        self.factories.insert(component.into(), Box::new(factory));
    }

    /// Whether a factory exists for `component`.
    pub fn knows(&self, component: &str) -> bool {
        self.factories.contains_key(component)
    }

    /// Instantiates `component`; `None` when unregistered.
    pub fn create(&self, args: &FactoryArgs<'_>) -> Option<Box<dyn ComponentLogic>> {
        self.factories.get(args.component).map(|f| f(args))
    }

    /// Registered component names.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }
}

impl std::fmt::Debug for ComponentRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComponentRegistry")
            .field("components", &self.factories.keys().collect::<Vec<_>>())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{Outbox, Payload, RequestHandle};

    struct Nop;
    impl ComponentLogic for Nop {
        fn on_request(&mut self, _o: &mut Outbox, _r: RequestHandle, _p: &Payload) {}
        fn on_response(&mut self, _o: &mut Outbox, _t: u64, _p: &Payload) {}
    }

    #[test]
    fn registry_creates_by_name() {
        let mut reg = ComponentRegistry::new();
        reg.register("Nop", |_| Box::new(Nop));
        assert!(reg.knows("Nop"));
        assert!(!reg.knows("Other"));
        let args = FactoryArgs {
            component: "Nop",
            node: NodeId(0),
            factors: &ResolvedBindings::new(),
            env: &Environment::new(),
        };
        assert!(reg.create(&args).is_some());
        let missing = FactoryArgs {
            component: "Other",
            ..args
        };
        assert!(reg.create(&missing).is_none());
    }
}
