//! The run-time component model.
//!
//! Deployed component instances exchange *payloads* over the simulated
//! network. Payloads are type-erased so the framework stays
//! application-agnostic (the paper's run-time moves opaque Java objects);
//! each service downcasts to its own payload types.

use ps_sim::{SimDuration, SimTime};
use ps_spec::ResolvedBindings;
use ps_trace::Tracer;
use std::any::Any;
use std::fmt;
use std::rc::Rc;

/// An opaque application payload plus its wire size.
#[derive(Clone)]
pub struct Payload {
    body: Rc<dyn Any>,
    /// Serialized size in bytes (drives link serialization time).
    pub wire_bytes: u64,
}

impl Payload {
    /// Wraps an application value.
    pub fn new<T: Any>(body: T, wire_bytes: u64) -> Self {
        Payload {
            body: Rc::new(body),
            wire_bytes,
        }
    }

    /// Downcasts to a concrete payload type.
    pub fn get<T: Any>(&self) -> Option<&T> {
        self.body.downcast_ref::<T>()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.wire_bytes)
    }
}

/// Identifies a deployed component instance in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A handle identifying an in-flight request that must eventually be
/// replied to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestHandle(pub u64);

/// Actions a component emits in response to an event. The world applies
/// them after the handler returns.
#[derive(Debug)]
pub enum Action {
    /// Reply to a pending request.
    Reply {
        /// The request being answered.
        to: RequestHandle,
        /// Response payload.
        payload: Payload,
    },
    /// Call the provider wired to required-linkage `linkage`; the
    /// response arrives via `on_response` with `token`.
    Call {
        /// Index into the instance's required linkages.
        linkage: usize,
        /// Request payload.
        payload: Payload,
        /// Correlation token returned with the response.
        token: u64,
    },
    /// One-way message along a required linkage (no response expected) —
    /// used by coherence flushes.
    Notify {
        /// Index into the instance's required linkages.
        linkage: usize,
        /// Message payload.
        payload: Payload,
    },
    /// One-way message to an explicit instance, outside the linkage
    /// wiring — the reverse channel a coherence directory uses to push
    /// invalidations to its registered replicas.
    NotifyInstance {
        /// Destination instance.
        to: InstanceId,
        /// Message payload.
        payload: Payload,
    },
    /// Request a timer callback after `delay` with `tag`.
    Timer {
        /// Delay before the callback.
        delay: SimDuration,
        /// Tag passed back to `on_timer`.
        tag: u64,
    },
    /// Record a named measurement (the harness collects these).
    Measure {
        /// Metric name.
        metric: &'static str,
        /// Observed value.
        value: f64,
    },
}

/// Context passed to component handlers; collects actions and exposes the
/// clock and instance wiring.
pub struct Outbox {
    pub(crate) now: SimTime,
    pub(crate) actions: Vec<Action>,
    pub(crate) linkage_count: usize,
    pub(crate) self_id: InstanceId,
    pub(crate) tracer: Tracer,
}

impl Outbox {
    pub(crate) fn new(
        now: SimTime,
        linkage_count: usize,
        self_id: InstanceId,
        tracer: Tracer,
    ) -> Self {
        Outbox {
            now,
            actions: Vec::new(),
            linkage_count,
            self_id,
            tracer,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The world's tracer, so component logic (coherence layers, data
    /// views) can emit events and count into the shared registry. The
    /// handle is the disabled tracer unless one was installed on the
    /// world.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The id of the instance this handler runs in (e.g. for replica
    /// registration with a coherence directory).
    pub fn self_id(&self) -> InstanceId {
        self.self_id
    }

    /// Number of required linkages wired to this instance.
    pub fn linkage_count(&self) -> usize {
        self.linkage_count
    }

    /// Replies to a pending request.
    pub fn reply(&mut self, to: RequestHandle, payload: Payload) {
        self.actions.push(Action::Reply { to, payload });
    }

    /// Calls upstream over required linkage `linkage`.
    pub fn call(&mut self, linkage: usize, payload: Payload, token: u64) {
        debug_assert!(linkage < self.linkage_count, "linkage out of range");
        self.actions.push(Action::Call {
            linkage,
            payload,
            token,
        });
    }

    /// Sends a one-way message upstream.
    pub fn notify(&mut self, linkage: usize, payload: Payload) {
        debug_assert!(linkage < self.linkage_count, "linkage out of range");
        self.actions.push(Action::Notify { linkage, payload });
    }

    /// Sends a one-way message to an explicit instance (directory
    /// reverse channel).
    pub fn notify_instance(&mut self, to: InstanceId, payload: Payload) {
        self.actions.push(Action::NotifyInstance { to, payload });
    }

    /// Schedules a timer callback.
    pub fn timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }

    /// Records a measurement.
    pub fn measure(&mut self, metric: &'static str, value: f64) {
        self.actions.push(Action::Measure { metric, value });
    }
}

/// Behaviour of a deployed component instance.
///
/// Handlers receive an [`Outbox`]; CPU costs are charged by the world
/// from the component's declared behaviour before the handler runs.
pub trait ComponentLogic {
    /// A request arrived (from a downstream client component).
    fn on_request(&mut self, out: &mut Outbox, req: RequestHandle, payload: &Payload);

    /// A response to an earlier [`Outbox::call`] arrived.
    fn on_response(&mut self, out: &mut Outbox, token: u64, payload: &Payload);

    /// An earlier [`Outbox::call`] failed for good: the world's
    /// [`RetryPolicy`](crate::fault::RetryPolicy) exhausted its attempts
    /// or deadline. `token` is the correlation token passed to `call`.
    /// Default: the failure is swallowed (matching the old silent-drop
    /// behaviour for components that do not opt in).
    fn on_error(&mut self, _out: &mut Outbox, _token: u64, _error: crate::fault::InvokeError) {}

    /// Peer instances were declared dead (a host crash detected by
    /// lease expiry, or an explicit `fail_node`). Components holding
    /// references to other instances — a coherence directory's replica
    /// set, for example — purge them here. Default: ignore.
    fn on_peers_retired(&mut self, _out: &mut Outbox, _peers: &[InstanceId]) {}

    /// A one-way message arrived.
    fn on_notify(&mut self, _out: &mut Outbox, _payload: &Payload) {}

    /// A timer fired.
    fn on_timer(&mut self, _out: &mut Outbox, _tag: u64) {}

    /// Called once when the instance is wired up and started.
    fn on_start(&mut self, _out: &mut Outbox) {}

    /// Called when the instance is being retired by a redeployment;
    /// last chance to push state upstream (a data view flushes its
    /// unpropagated updates here, preserving "state compatibility
    /// between the two configurations").
    fn on_retire(&mut self, _out: &mut Outbox) {}

    /// Snapshot of migratable state (size in bytes, opaque payload); used
    /// by the migration machinery. Default: stateless.
    fn snapshot(&self) -> Option<Payload> {
        None
    }

    /// Restores state from a snapshot taken by [`snapshot`](Self::snapshot).
    fn restore(&mut self, _snapshot: &Payload) {}

    /// Downcast hook for inspection (tests, examples, migration). Return
    /// `Some(self)` to opt in.
    fn as_any(&self) -> Option<&dyn Any> {
        None
    }

    /// Mutable downcast hook.
    fn as_any_mut(&mut self) -> Option<&mut dyn Any> {
        None
    }
}

/// Static description of a deployed instance.
#[derive(Debug, Clone)]
pub struct InstanceInfo {
    /// Instance id.
    pub id: InstanceId,
    /// Component (specification) name.
    pub component: String,
    /// Hosting network node.
    pub node: ps_net::NodeId,
    /// Resolved view factors for this configuration.
    pub factors: ResolvedBindings,
    /// Instances wired to this one's required linkages, in order.
    pub linkages: Vec<InstanceId>,
}
