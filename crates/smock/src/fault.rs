//! Fault-handling types for the run-time: retry policies, typed invoke
//! errors, lease-based liveness, and failure reports.
//!
//! The paper's Section 6 lists fault handling as a required integration
//! for a complete system; its Jini-style lookup service implies
//! lease-based liveness. This module supplies the vocabulary: a
//! [`RetryPolicy`] turns the silent message drops of a faulty network
//! into bounded retries with typed [`InvokeError`] outcomes, a
//! [`LeaseConfig`] bounds how long a crashed host can go undetected, and
//! [`LivenessEvent`]s carry what the leases detected to the monitoring
//! layer (which converts them into `NetworkChange`s for the replanner).

use crate::component::InstanceId;
use ps_net::{LinkId, NodeId};
use ps_sim::{SimDuration, SimTime};
use std::fmt;

/// Retry/timeout policy for the invoke path (`Outbox::call`).
///
/// With a policy installed, every outstanding request arms a virtual-time
/// timeout; an expired attempt is re-sent (re-resolving the provider
/// through the caller's *current* linkages, so retries issued after a
/// re-plan reach the replacement instance) with exponential backoff until
/// the attempt budget or the per-request deadline runs out, at which
/// point the caller's [`ComponentLogic::on_error`] hook fires with a
/// typed [`InvokeError`] instead of the request vanishing.
///
/// [`ComponentLogic::on_error`]: crate::component::ComponentLogic::on_error
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per logical request (1 = no retries).
    pub max_attempts: u32,
    /// Timeout armed on the first attempt.
    pub timeout: SimDuration,
    /// Each subsequent attempt's timeout is the previous one times this.
    pub backoff_multiplier: f64,
    /// Optional total budget per logical request, measured from the
    /// first send; checked when a timeout fires.
    pub deadline: Option<SimDuration>,
}

impl Default for RetryPolicy {
    /// Three attempts, 8 s initial timeout, doubling, no deadline. The
    /// initial timeout is sized for the paper's WAN case study, where a
    /// cross-country round trip with a 1 MB body takes several seconds.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            timeout: SimDuration::from_secs(8),
            backoff_multiplier: 2.0,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The timeout armed for `attempt` (1-based).
    pub fn timeout_for_attempt(&self, attempt: u32) -> SimDuration {
        self.timeout.mul_f64(
            self.backoff_multiplier
                .powi(attempt.saturating_sub(1) as i32),
        )
    }
}

/// Why an invoke failed (delivered to `ComponentLogic::on_error`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvokeError {
    /// Every attempt timed out.
    TimedOut {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The per-request deadline elapsed before a response arrived.
    DeadlineExceeded {
        /// Attempts made before the deadline cut the request off.
        attempts: u32,
    },
}

impl InvokeError {
    /// Attempts made before the failure.
    pub fn attempts(&self) -> u32 {
        match self {
            InvokeError::TimedOut { attempts } | InvokeError::DeadlineExceeded { attempts } => {
                *attempts
            }
        }
    }
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::TimedOut { attempts } => {
                write!(f, "timed out after {attempts} attempt(s)")
            }
            InvokeError::DeadlineExceeded { attempts } => {
                write!(f, "deadline exceeded after {attempts} attempt(s)")
            }
        }
    }
}

/// Lease parameters for instance liveness.
///
/// Instances implicitly renew their lease every `heartbeat` of virtual
/// time while their host is up; a crash stops renewal, so the failure is
/// detected when the last renewed lease expires — at most
/// `heartbeat + duration` after the crash, deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseConfig {
    /// How long a granted/renewed lease stays valid.
    pub duration: SimDuration,
    /// Renewal period while the host is up.
    pub heartbeat: SimDuration,
}

impl Default for LeaseConfig {
    /// 500 ms heartbeats, 2 s lease: worst-case detection 2.5 s.
    fn default() -> Self {
        LeaseConfig {
            duration: SimDuration::from_secs(2),
            heartbeat: SimDuration::from_millis(500),
        }
    }
}

impl LeaseConfig {
    /// Upper bound on crash-to-detection latency.
    pub fn max_detection_latency(&self) -> SimDuration {
        self.heartbeat + self.duration
    }
}

/// What a liveness event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessKind {
    /// An instance's lease expired (its host crashed).
    InstanceDown {
        /// The dead instance.
        instance: InstanceId,
        /// The node that hosted it.
        node: NodeId,
    },
    /// Every leased instance on the node has been declared dead — the
    /// node itself is considered down.
    NodeDown {
        /// The crashed node.
        node: NodeId,
    },
    /// A previously-crashed node restarted.
    NodeUp {
        /// The restarted node.
        node: NodeId,
    },
    /// A link stopped carrying traffic (visible to monitoring directly).
    LinkDown {
        /// The downed link.
        link: LinkId,
    },
    /// A previously-down link came back.
    LinkUp {
        /// The restored link.
        link: LinkId,
    },
}

/// A liveness/fault observation with its virtual detection time.
///
/// Drained from the world via `World::take_liveness_events`; the
/// framework layer converts these into `ps-monitor` `NetworkChange`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessEvent {
    /// When the condition was *detected* (lease expiry, not crash time).
    pub at: SimTime,
    /// What was detected.
    pub kind: LivenessKind,
}

/// How a node failure gets detected by the rest of the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectionMode {
    /// No lease config installed: the failure was reported to the
    /// liveness stream immediately.
    Immediate,
    /// Leases are active: detection completes when the last hosted
    /// instance's lease expires, no later than this.
    Leased {
        /// Upper bound on when every hosted instance is declared dead.
        detected_by: SimTime,
    },
}

/// Typed report returned by `World::fail_node` / `Framework::fail_node`.
#[derive(Debug, Clone)]
pub struct FailReport {
    /// The failed node.
    pub node: NodeId,
    /// Virtual time of the crash.
    pub at: SimTime,
    /// Instances retired by the crash (no graceful `on_retire`).
    pub retired: Vec<InstanceId>,
    /// How the failure reaches the liveness stream.
    pub detection: DetectionMode,
    /// Service registrations purged from the lookup service because they
    /// were homed on the failed node (filled by the framework layer; the
    /// world does not own the lookup service).
    pub lookup_purged: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially() {
        let policy = RetryPolicy {
            max_attempts: 4,
            timeout: SimDuration::from_millis(100),
            backoff_multiplier: 2.0,
            deadline: None,
        };
        assert_eq!(policy.timeout_for_attempt(1), SimDuration::from_millis(100));
        assert_eq!(policy.timeout_for_attempt(2), SimDuration::from_millis(200));
        assert_eq!(policy.timeout_for_attempt(3), SimDuration::from_millis(400));
    }

    #[test]
    fn lease_detection_bound_is_heartbeat_plus_duration() {
        let lease = LeaseConfig {
            duration: SimDuration::from_secs(2),
            heartbeat: SimDuration::from_millis(500),
        };
        assert_eq!(
            lease.max_detection_latency(),
            SimDuration::from_millis(2500)
        );
    }

    #[test]
    fn invoke_error_reports_attempts() {
        assert_eq!(InvokeError::TimedOut { attempts: 3 }.attempts(), 3);
        assert_eq!(
            InvokeError::DeadlineExceeded { attempts: 2 }.to_string(),
            "deadline exceeded after 2 attempt(s)"
        );
    }
}
