//! Integration tests: end-to-end determinism of the JSONL stream, span
//! reconstruction, and registry reporting.

use ps_trace::{breakdowns, JsonlSink, Tracer};
use std::sync::Arc;

/// One deterministic "run": a couple of request-shaped span trees plus
/// registry traffic.
fn simulate(tracer: &Tracer) {
    for conn in 0..3u64 {
        let base = conn * 10_000_000;
        let scope = format!("conn-{conn}");
        tracer.span_closed(
            "smock.server",
            "lookup",
            base,
            base + 400_000,
            vec![("scope", scope.clone().into())],
        );
        tracer.span_closed(
            "smock.server",
            "plan",
            base + 400_000,
            base + 400_000,
            vec![
                ("scope", scope.clone().into()),
                ("cache_hit", (conn > 0).into()),
            ],
        );
        tracer.span_closed(
            "smock.server",
            "deploy",
            base + 400_000,
            base + 900_000,
            vec![("scope", scope.clone().into())],
        );
        tracer.instant(
            "smock.world",
            "message",
            base + 1_000_000,
            vec![("bytes", 512u64.into())],
        );
        tracer.count("world.messages", 1);
        tracer.observe("server.lookup_ms", 0.4);
    }
}

#[test]
fn identical_runs_produce_byte_identical_jsonl() {
    let streams: Vec<String> = (0..2)
        .map(|_| {
            let (tracer, sink) = Tracer::memory();
            simulate(&tracer);
            sink.to_jsonl()
        })
        .collect();
    assert!(!streams[0].is_empty());
    assert_eq!(streams[0], streams[1]);
}

#[test]
fn jsonl_sink_matches_memory_sink_rendering() {
    let buf: Vec<u8> = Vec::new();
    let jsonl = Arc::new(JsonlSink::new(buf));
    // No accessor for the inner writer by design; compare via a memory
    // sink fed the same deterministic run.
    let tracer = Tracer::new(jsonl.clone());
    simulate(&tracer);
    let (mem_tracer, mem_sink) = Tracer::memory();
    simulate(&mem_tracer);
    // Both runs must at minimum agree on event count; rendering equality
    // is covered by the byte-identical test above.
    assert_eq!(
        mem_sink.len(),
        mem_sink.to_jsonl().lines().count(),
        "one JSON line per event"
    );
}

#[test]
fn breakdown_reconstruction_over_a_run() {
    let (tracer, sink) = Tracer::memory();
    simulate(&tracer);
    let events = sink.events();
    let all = breakdowns(&events);
    assert_eq!(all.len(), 3);
    for (i, b) in all.iter().enumerate() {
        assert_eq!(b.scope, format!("conn-{i}"));
        assert_eq!(b.phase_ns("lookup"), 400_000);
        assert_eq!(b.phase_ns("plan"), 0);
        assert_eq!(b.phase_ns("deploy"), 500_000);
        assert_eq!(b.total_ns(), 900_000);
    }
}

#[test]
fn registry_report_is_deterministic() {
    let (t1, _s1) = Tracer::memory();
    let (t2, _s2) = Tracer::memory();
    simulate(&t1);
    simulate(&t2);
    let r1 = t1.registry().unwrap();
    let r2 = t2.registry().unwrap();
    assert_eq!(r1.counter("world.messages"), 3);
    assert_eq!(r1.to_json(), r2.to_json());
    let h = r1.histogram("server.lookup_ms").unwrap();
    assert_eq!(h.count, 3);
}
