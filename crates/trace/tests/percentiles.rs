//! Property tests for the log-bucketed percentile histogram: across
//! seeds and distributions, every reported quantile must sit within the
//! documented relative-error bound of the exact sorted-sample
//! nearest-rank quantile, merging must be lossless, and bucket counts
//! must be independent of arrival order.

use ps_trace::Histogram;

/// xorshift64* — deterministic, dependency-free sample source.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Exact nearest-rank quantile over a sorted sample, matching
/// [`Histogram::quantile`]'s rank definition.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if q <= 0.0 {
        return sorted[0];
    }
    if q >= 1.0 {
        return sorted[sorted.len() - 1];
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Half a sub-bucket of relative error (2^-8 ≈ 0.4%) with headroom,
/// plus an absolute epsilon for the sub-microsecond exact buckets.
fn assert_close(approx: f64, exact: f64, context: &str) {
    let tolerance = 1e-6 + exact.abs() * 0.01;
    assert!(
        (approx - exact).abs() <= tolerance,
        "{context}: histogram said {approx}, exact sorted-sample quantile is {exact} \
         (tolerance {tolerance})"
    );
}

/// One distribution's samples for a given seed.
fn draw(seed: u64, dist: usize, n: usize) -> Vec<f64> {
    let mut rng = Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ dist as u64);
    (0..n)
        .map(|_| {
            let u = rng.f64();
            match dist {
                // Uniform latencies, 0..1000 ms.
                0 => u * 1000.0,
                // Exponential, mean 5 ms — a long-ish tail.
                1 => -(1.0 - u).ln() * 5.0,
                // Pareto-ish heavy tail, 1 ms floor.
                2 => 1.0 / (1.0 - u * 0.999).powf(1.5),
                // Sub-microsecond values exercising the exact buckets.
                3 => u * 1e-4,
                // Bimodal: fast path vs timeout spike.
                _ => {
                    if u < 0.9 {
                        1.0 + u
                    } else {
                        2000.0 + u * 100.0
                    }
                }
            }
        })
        .collect()
}

#[test]
fn quantiles_track_exact_sorted_sample_quantiles() {
    for seed in 1..=8u64 {
        for dist in 0..5usize {
            let samples = draw(seed, dist, 4000);
            let mut h = Histogram::default();
            for &v in &samples {
                h.record(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            for &q in &[0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0] {
                assert_close(
                    h.quantile(q),
                    exact_quantile(&sorted, q),
                    &format!("seed {seed} dist {dist} q {q}"),
                );
            }
            assert_eq!(h.count, sorted.len() as u64);
            assert_eq!(h.quantile(0.0), sorted[0], "p0 is the exact minimum");
            assert_eq!(
                h.quantile(1.0),
                sorted[sorted.len() - 1],
                "p100 is the exact maximum"
            );
        }
    }
}

#[test]
fn merged_shards_answer_like_one_histogram() {
    for seed in 1..=4u64 {
        let samples = draw(seed, 1, 3000);
        let mut whole = Histogram::default();
        let mut shards = vec![
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        ];
        for (i, &v) in samples.iter().enumerate() {
            whole.record(v);
            shards[i % 3].record(v);
        }
        let mut merged = Histogram::default();
        for shard in &shards {
            merged.merge(shard);
        }
        // Bucket counts, count, and extrema combine exactly; `sum` is
        // only equal up to float addition order across shards.
        assert_eq!(merged.buckets, whole.buckets, "seed {seed}: bucket counts");
        assert_eq!(merged.count, whole.count);
        assert_eq!(merged.min, whole.min);
        assert_eq!(merged.max, whole.max);
        assert!((merged.sum - whole.sum).abs() <= whole.sum.abs() * 1e-12);
        for &q in &[0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(
                merged.quantile(q),
                whole.quantile(q),
                "seed {seed}: quantile {q} after merge"
            );
        }
    }
}

#[test]
fn bucket_counts_ignore_arrival_order() {
    let samples = draw(9, 2, 2000);
    let mut forward = Histogram::default();
    for &v in &samples {
        forward.record(v);
    }
    let mut backward = Histogram::default();
    for &v in samples.iter().rev() {
        backward.record(v);
    }
    assert_eq!(forward, backward);
}
