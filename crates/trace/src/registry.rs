//! The metrics registry: named counters, gauges, and log-bucketed
//! percentile histograms.
//!
//! All metrics live behind one mutex in a `BTreeMap`, so snapshots and
//! renderings are deterministic in iteration order. Histograms use
//! log-linear integer bucketing (HDR-style): deterministic, mergeable,
//! order-independent, and queryable for p50/p90/p99/p999 with bounded
//! relative error — equal inputs always produce equal bucket counts and
//! equal quantile answers, regardless of arrival order.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Sub-bucket precision: each power-of-two block is split into
/// `2^PRECISION_BITS` linear sub-buckets, bounding quantile relative
/// error at `2^-(PRECISION_BITS+1)` (≈0.4%).
const PRECISION_BITS: u32 = 7;
const SUB_BUCKETS: u64 = 1 << PRECISION_BITS;

/// Values are scaled by `10^6` to integers before bucketing, so callers
/// recording milliseconds get nanosecond resolution and sub-microsecond
/// inputs keep bounded error down to `1e-6` units.
const VALUE_SCALE: f64 = 1e6;

/// A deterministic, mergeable log-bucketed percentile histogram.
///
/// Recording scales the (non-negative) value to an integer in `1e-6`
/// units and drops it into a log-linear bucket: values below
/// [`SUB_BUCKETS`] map to themselves; larger values map into one of 128
/// linear sub-buckets of their power-of-two block. Bucket membership is
/// a pure function of the value, so bucket counts are independent of
/// arrival order and two histograms can be [`merge`](Histogram::merge)d
/// by summing counts. Quantiles are answered from bucket midpoints with
/// relative error bounded by half a sub-bucket width (< 0.8%).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Histogram {
    /// Sparse per-bucket counts keyed by bucket index (see
    /// [`Histogram::bucket_index`]). Sparse storage keeps thousand-node
    /// registries small: only touched buckets occupy memory.
    pub buckets: BTreeMap<u16, u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (`0.0` when empty).
    pub min: f64,
    /// Largest recorded value (`0.0` when empty).
    pub max: f64,
}

impl Histogram {
    /// Maps a value to its bucket index. Total function: negatives and
    /// NaN clamp to bucket 0, `+inf` saturates into the top bucket.
    pub fn bucket_index(value: f64) -> u16 {
        let scaled = value * VALUE_SCALE;
        let v = if scaled.is_finite() && scaled > 0.0 {
            if scaled >= u64::MAX as f64 {
                u64::MAX
            } else {
                scaled as u64
            }
        } else {
            0
        };
        if v < SUB_BUCKETS {
            return v as u16;
        }
        let exp = 63 - v.leading_zeros(); // >= PRECISION_BITS
        let sub = (v >> (exp - PRECISION_BITS)) - SUB_BUCKETS;
        ((exp - PRECISION_BITS + 1) as u64 * SUB_BUCKETS + sub) as u16
    }

    /// The representative (midpoint) value of bucket `index`, in the
    /// caller's original units.
    pub fn bucket_value(index: u16) -> f64 {
        let block = (index as u64) >> PRECISION_BITS;
        let pos = (index as u64) & (SUB_BUCKETS - 1);
        if block == 0 {
            return pos as f64 / VALUE_SCALE;
        }
        let lo = (SUB_BUCKETS + pos) << (block - 1);
        let width = 1u64 << (block - 1);
        (lo as f64 + (width as f64 - 1.0) / 2.0) / VALUE_SCALE
    }

    /// Records one value.
    pub fn record(&mut self, value: f64) {
        *self.buckets.entry(Self::bucket_index(value)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Folds `other` into `self` (bucket-wise sum; min/max/sum/count
    /// combine exactly).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) by nearest rank over bucket
    /// midpoints, clamped into `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// One metric in the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Log-bucketed percentile histogram.
    Histogram(Histogram),
}

/// The metrics registry.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The metric table, recovering from mutex poisoning: telemetry must
    /// never escalate another thread's panic into a crashed heal pass,
    /// and the data under the lock stays internally consistent (single
    /// map writes).
    fn locked(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Increments counter `name` by `by` (creating it at zero).
    pub fn inc(&self, name: &str, by: u64) {
        let mut inner = self.locked();
        match inner.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += by,
            other => *other = Metric::Counter(by),
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.locked().insert(name.to_owned(), Metric::Gauge(value));
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.locked();
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.record(value),
            other => {
                let mut h = Histogram::default();
                h.record(value);
                *other = Metric::Histogram(h);
            }
        }
    }

    /// Current value of counter `name` (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.locked().get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.locked().get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.locked().get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Sorted snapshot of every metric.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.locked()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders every metric as a JSON object (sorted keys, deterministic
    /// for identical recorded values).
    pub fn to_json(&self) -> String {
        self.render_json(|_| true)
    }

    /// Like [`Registry::to_json`] but with wall-clock accounting metrics
    /// (names carrying the `_wall_` marker, see
    /// [`crate::wallclock::is_wall_metric`]) stripped, so two same-seed
    /// runs render byte-identical JSON.
    pub fn to_json_deterministic(&self) -> String {
        self.render_json(|name| !crate::wallclock::is_wall_metric(name))
    }

    fn render_json(&self, keep: impl Fn(&str) -> bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let kept: Vec<_> = self
            .snapshot()
            .into_iter()
            .filter(|(name, _)| keep(name))
            .collect();
        for (i, (name, metric)) in kept.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":");
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{g}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"mean\":{}",
                        h.count,
                        h.sum,
                        h.mean()
                    );
                    if h.count > 0 {
                        let _ = write!(
                            out,
                            ",\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}",
                            h.min,
                            h.max,
                            h.p50(),
                            h.p90(),
                            h.p99(),
                            h.p999()
                        );
                    }
                    // Sparse buckets: only touched indices are emitted.
                    out.push_str(",\"buckets\":[");
                    for (j, (idx, c)) in h.buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{idx},{c}]");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let r = Registry::new();
        r.inc("a.count", 2);
        r.inc("a.count", 3);
        r.set_gauge("b.gauge", 1.5);
        r.observe("c.ms", 0.5);
        r.observe("c.ms", 50.0);
        assert_eq!(r.counter("a.count"), 5);
        assert_eq!(r.gauge("b.gauge"), Some(1.5));
        let h = r.histogram("c.ms").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), 25.25);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 50.0);
        // Two distinct values occupy two distinct buckets.
        assert_eq!(h.buckets.len(), 2);
        assert_eq!(h.buckets.values().sum::<u64>(), 2);
    }

    #[test]
    fn histogram_buckets_are_order_independent() {
        let values = [0.002, 3.0, 120.0, 0.5, 2_000_000.0];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in values {
            a.record(v);
        }
        for v in values.iter().rev() {
            b.record(*v);
        }
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    #[test]
    fn bucket_round_trip_has_bounded_relative_error() {
        // The representative value of a bucket must sit within one
        // sub-bucket width of every value mapping into it.
        for &v in &[1e-6, 1e-3, 0.127, 0.1281, 1.0, 37.5, 1e4, 9.9e6] {
            let idx = Histogram::bucket_index(v);
            let rep = Histogram::bucket_value(idx);
            let rel = (rep - v).abs() / v;
            assert!(rel <= 1.0 / 128.0 + 1e-9, "v={v} rep={rep} rel={rel}");
        }
    }

    #[test]
    fn quantiles_match_exact_ranks_for_small_sets() {
        let mut h = Histogram::default();
        for v in 1..=100u32 {
            h.record(v as f64);
        }
        // Nearest-rank p50 of 1..=100 is 50, p90 is 90, p99 is 99.
        assert!((h.p50() - 50.0).abs() / 50.0 < 0.01);
        assert!((h.p90() - 90.0).abs() / 90.0 < 0.01);
        assert!((h.p99() - 99.0).abs() / 99.0 < 0.01);
        assert_eq!(h.quantile(1.0), 100.0);
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn merge_equals_bulk_record() {
        let values: Vec<f64> = (0..200).map(|i| 0.01 * (i * i) as f64 + 0.001).collect();
        let mut whole = Histogram::default();
        let mut left = Histogram::default();
        let mut right = Histogram::default();
        for (i, v) in values.iter().enumerate() {
            whole.record(*v);
            if i % 2 == 0 {
                left.record(*v);
            } else {
                right.record(*v);
            }
        }
        left.merge(&right);
        assert_eq!(left.buckets, whole.buckets);
        assert_eq!(left.count, whole.count);
        assert_eq!(left.min, whole.min);
        assert_eq!(left.max, whole.max);
        assert_eq!(left.quantile(0.99), whole.quantile(0.99));
    }

    #[test]
    fn deterministic_json_strips_wall_metrics() {
        let r = Registry::new();
        r.inc("server.connects", 2);
        r.observe("server.planning_wall_ms", 3.7);
        r.observe("planner.route_table_build_wall_us", 12.0);
        let full = r.to_json();
        assert!(full.contains("planning_wall_ms"));
        let stable = r.to_json_deterministic();
        assert!(!stable.contains("_wall_"));
        assert!(stable.contains("\"server.connects\":2"));
    }

    #[test]
    fn json_snapshot_is_sorted() {
        let r = Registry::new();
        r.inc("z", 1);
        r.inc("a", 1);
        let json = r.to_json();
        assert!(json.find("\"a\"").unwrap() < json.find("\"z\"").unwrap());
    }
}
