//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms.
//!
//! All metrics live behind one mutex in a `BTreeMap`, so snapshots and
//! renderings are deterministic in iteration order. Histograms use a
//! fixed exponential bucket ladder (decades from 1 µs-scale up), never
//! adapting to the data — equal inputs always produce equal bucket
//! counts, regardless of arrival order.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Fixed histogram bucket upper bounds. Unitless; callers conventionally
/// record milliseconds. Values above the last bound land in an overflow
/// bucket.
pub const HISTOGRAM_BOUNDS: [f64; 10] = [
    0.001,
    0.01,
    0.1,
    1.0,
    10.0,
    100.0,
    1_000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
];

/// A deterministic fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket counts; `counts[i]` counts values `<= HISTOGRAM_BOUNDS[i]`
    /// (and greater than the previous bound). The final slot is overflow.
    pub counts: [u64; HISTOGRAM_BOUNDS.len() + 1],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest recorded value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; HISTOGRAM_BOUNDS.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: f64) {
        let bucket = HISTOGRAM_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(HISTOGRAM_BOUNDS.len());
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One metric in the registry.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

/// The metrics registry.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by `by` (creating it at zero).
    pub fn inc(&self, name: &str, by: u64) {
        let mut inner = self.inner.lock().expect("registry");
        match inner.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += by,
            other => *other = Metric::Counter(by),
        }
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .expect("registry")
            .insert(name.to_owned(), Metric::Gauge(value));
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().expect("registry");
        match inner
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.record(value),
            other => {
                let mut h = Histogram::default();
                h.record(value);
                *other = Metric::Histogram(h);
            }
        }
    }

    /// Current value of counter `name` (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.inner.lock().expect("registry").get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.inner.lock().expect("registry").get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.inner.lock().expect("registry").get(name) {
            Some(Metric::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Sorted snapshot of every metric.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.inner
            .lock()
            .expect("registry")
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Renders every metric as a JSON object (sorted keys, deterministic
    /// for identical recorded values).
    pub fn to_json(&self) -> String {
        self.render_json(|_| true)
    }

    /// Like [`Registry::to_json`] but with wall-clock accounting metrics
    /// (names carrying the `_wall_` marker, see
    /// [`crate::wallclock::is_wall_metric`]) stripped, so two same-seed
    /// runs render byte-identical JSON.
    pub fn to_json_deterministic(&self) -> String {
        self.render_json(|name| !crate::wallclock::is_wall_metric(name))
    }

    fn render_json(&self, keep: impl Fn(&str) -> bool) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        let kept: Vec<_> = self
            .snapshot()
            .into_iter()
            .filter(|(name, _)| keep(name))
            .collect();
        for (i, (name, metric)) in kept.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":");
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{g}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"mean\":{}",
                        h.count,
                        h.sum,
                        h.mean()
                    );
                    if h.count > 0 {
                        let _ = write!(out, ",\"min\":{},\"max\":{}", h.min, h.max);
                    }
                    out.push_str(",\"buckets\":[");
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let r = Registry::new();
        r.inc("a.count", 2);
        r.inc("a.count", 3);
        r.set_gauge("b.gauge", 1.5);
        r.observe("c.ms", 0.5);
        r.observe("c.ms", 50.0);
        assert_eq!(r.counter("a.count"), 5);
        assert_eq!(r.gauge("b.gauge"), Some(1.5));
        let h = r.histogram("c.ms").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), 25.25);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 50.0);
        // 0.5 lands in the (0.1, 1.0] bucket, 50.0 in (10, 100].
        assert_eq!(h.counts[3], 1);
        assert_eq!(h.counts[5], 1);
    }

    #[test]
    fn histogram_buckets_are_order_independent() {
        let values = [0.002, 3.0, 120.0, 0.5, 2_000_000.0];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in values {
            a.record(v);
        }
        for v in values.iter().rev() {
            b.record(*v);
        }
        assert_eq!(a.counts, b.counts);
        // The huge value overflows into the final bucket.
        assert_eq!(a.counts[HISTOGRAM_BOUNDS.len()], 1);
    }

    #[test]
    fn deterministic_json_strips_wall_metrics() {
        let r = Registry::new();
        r.inc("server.connects", 2);
        r.observe("server.planning_wall_ms", 3.7);
        r.observe("planner.route_table_build_wall_us", 12.0);
        let full = r.to_json();
        assert!(full.contains("planning_wall_ms"));
        let stable = r.to_json_deterministic();
        assert!(!stable.contains("_wall_"));
        assert!(stable.contains("\"server.connects\":2"));
    }

    #[test]
    fn json_snapshot_is_sorted() {
        let r = Registry::new();
        r.inc("z", 1);
        r.inc("a", 1);
        let json = r.to_json();
        assert!(json.find("\"a\"").unwrap() < json.find("\"z\"").unwrap());
    }
}
