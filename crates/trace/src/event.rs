//! Structured trace events.
//!
//! An [`Event`] is one record in a run's event stream: a span boundary
//! (enter/exit) or an instantaneous observation, stamped with *virtual*
//! time (integer nanoseconds since simulation start) and a monotone
//! sequence number. Because both stamps are deterministic under a fixed
//! seed, two identical runs serialize to byte-identical streams — the
//! property the verification pipeline checks.
//!
//! Wall-clock durations (host time) must never appear in event fields;
//! they belong in the [`Registry`](crate::Registry), which is reported
//! separately and carries no determinism guarantee.

use std::fmt;

/// A field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (serialized via Rust's shortest-roundtrip `Display`, which
    /// is deterministic).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_owned())
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Ordered event fields (order is preserved in the serialized form).
pub type Fields = Vec<(&'static str, FieldValue)>;

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span was entered.
    Enter,
    /// A span was exited.
    Exit,
    /// An instantaneous observation.
    Instant,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Enter => "enter",
            EventKind::Exit => "exit",
            EventKind::Instant => "instant",
        }
    }
}

/// One record in the trace stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number (emission order).
    pub seq: u64,
    /// Virtual time, nanoseconds since simulation start.
    pub sim_ns: u64,
    /// Record kind.
    pub kind: EventKind,
    /// Emitting subsystem (e.g. `smock.server`).
    pub target: &'static str,
    /// Event or span name (e.g. `plan`, `invoke`).
    pub name: &'static str,
    /// Span correlation id pairing `Enter` with `Exit` (0 = none).
    pub span: u64,
    /// Attached fields, in emission order.
    pub fields: Fields,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// A field interpreted as u64 (also converts `I64`/`F64` values).
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.field(name)? {
            FieldValue::U64(v) => Some(*v),
            FieldValue::I64(v) => u64::try_from(*v).ok(),
            FieldValue::F64(v) => Some(*v as u64),
            _ => None,
        }
    }

    /// A string field.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        match self.field(name)? {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Serializes the event as one JSON line (no trailing newline). The
    /// rendering is deterministic: field order is emission order, floats
    /// use shortest-roundtrip formatting.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"t\":{},\"kind\":\"{}\",\"target\":\"{}\",\"name\":\"{}\",\"span\":{}",
            self.seq,
            self.sim_ns,
            self.kind.as_str(),
            self.target,
            self.name,
            self.span
        );
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":");
                match v {
                    FieldValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    FieldValue::I64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    FieldValue::F64(v) => {
                        if v.is_finite() {
                            let _ = write!(out, "{v}");
                        } else {
                            let _ = write!(out, "\"{v}\"");
                        }
                    }
                    FieldValue::Bool(v) => {
                        let _ = write!(out, "{v}");
                    }
                    FieldValue::Str(s) => {
                        out.push('"');
                        for c in s.chars() {
                            match c {
                                '"' => out.push_str("\\\""),
                                '\\' => out.push_str("\\\\"),
                                '\n' => out.push_str("\\n"),
                                '\r' => out.push_str("\\r"),
                                '\t' => out.push_str("\\t"),
                                c if (c as u32) < 0x20 => {
                                    let _ = write!(out, "\\u{:04x}", c as u32);
                                }
                                c => out.push(c),
                            }
                        }
                        out.push('"');
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let e = Event {
            seq: 3,
            sim_ns: 1_500_000,
            kind: EventKind::Instant,
            target: "test",
            name: "msg",
            span: 0,
            fields: vec![
                ("n", 7u64.into()),
                ("label", "a\"b\\c\n".into()),
                ("ok", true.into()),
                ("x", 2.5f64.into()),
            ],
        };
        assert_eq!(
            e.to_json(),
            "{\"seq\":3,\"t\":1500000,\"kind\":\"instant\",\"target\":\"test\",\"name\":\"msg\",\
             \"span\":0,\"fields\":{\"n\":7,\"label\":\"a\\\"b\\\\c\\n\",\"ok\":true,\"x\":2.5}}"
        );
    }

    #[test]
    fn field_accessors() {
        let e = Event {
            seq: 0,
            sim_ns: 0,
            kind: EventKind::Enter,
            target: "t",
            name: "n",
            span: 1,
            fields: vec![("a", 5u64.into()), ("s", "hi".into())],
        };
        assert_eq!(e.field_u64("a"), Some(5));
        assert_eq!(e.field_str("s"), Some("hi"));
        assert!(e.field("missing").is_none());
    }
}
