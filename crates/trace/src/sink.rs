//! Pluggable event sinks.
//!
//! A [`Sink`] receives every event a [`Tracer`](crate::Tracer) emits.
//! Three implementations cover the repo's needs: [`MemorySink`] for
//! tests and in-process analysis, [`JsonlSink`] for offline analysis of
//! a run's full stream, and [`NullSink`] when only the metrics registry
//! matters.

use crate::event::Event;
use std::io::Write;
use std::sync::{Mutex, PoisonError};

/// Receives emitted events. Implementations synchronize internally —
/// `record` takes `&self` so one sink can serve concurrent emitters.
pub trait Sink: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: &Event);
}

/// Collects events in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clones out the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every event as JSON lines (one event per line, trailing
    /// newline included). Byte-identical across identical runs.
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::with_capacity(events.len() * 96);
        for e in events.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// Streams events as JSON lines to a writer.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer, surfacing the IO error to the
    /// caller instead of silently dropping it.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .flush()
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().unwrap_or_else(PoisonError::into_inner);
        // Best-effort by contract: a full disk must not panic or abort the
        // simulation, so the stream is simply truncated. (`writeln!` drops
        // fall under ps-lint R001's fmt-macro exemption.)
        let _ = writeln!(w, "{}", event.to_json());
    }
}

/// Discards every event (registry-only tracing).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}
