//! Pluggable event sinks.
//!
//! A [`Sink`] receives every event a [`Tracer`](crate::Tracer) emits.
//! Three implementations cover the repo's needs: [`MemorySink`] for
//! tests and in-process analysis, [`JsonlSink`] for offline analysis of
//! a run's full stream, and [`NullSink`] when only the metrics registry
//! matters.

use crate::event::Event;
use std::io::Write;
use std::sync::Mutex;

/// Receives emitted events. Implementations synchronize internally —
/// `record` takes `&self` so one sink can serve concurrent emitters.
pub trait Sink: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: &Event);
}

/// Collects events in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clones out the recorded events.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("memory sink").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink").len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders every event as JSON lines (one event per line, trailing
    /// newline included). Byte-identical across identical runs.
    pub fn to_jsonl(&self) -> String {
        let events = self.events.lock().expect("memory sink");
        let mut out = String::with_capacity(events.len() * 96);
        for e in events.iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().expect("memory sink").push(event.clone());
    }
}

/// Streams events as JSON lines to a writer.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().expect("jsonl sink").flush();
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let mut w = self.writer.lock().expect("jsonl sink");
        let _ = writeln!(w, "{}", event.to_json());
    }
}

/// Discards every event (registry-only tracing).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}
