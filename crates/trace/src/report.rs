//! Human-readable report rendering.
//!
//! [`Report`] is the shared renderer the bench binaries use instead of
//! ad-hoc `println!` formatting: a title, optional sections, and aligned
//! key/value lines. Rendering is purely a function of what was added, so
//! reports are as deterministic as their inputs.

use std::fmt;

enum Item {
    Section(String),
    Line(String),
    Kv(String, String),
}

/// An accumulating plain-text report.
pub struct Report {
    title: String,
    items: Vec<Item>,
}

impl Report {
    /// Starts a report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            items: Vec::new(),
        }
    }

    /// Opens a named section.
    pub fn section(&mut self, name: impl Into<String>) -> &mut Self {
        self.items.push(Item::Section(name.into()));
        self
    }

    /// Adds a free-form line.
    pub fn line(&mut self, text: impl Into<String>) -> &mut Self {
        self.items.push(Item::Line(text.into()));
        self
    }

    /// Adds an aligned key/value line.
    pub fn kv(&mut self, key: impl Into<String>, value: impl fmt::Display) -> &mut Self {
        self.items.push(Item::Kv(key.into(), value.to_string()));
        self
    }

    /// Renders the report (keys aligned per contiguous key/value run).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let mut i = 0;
        while i < self.items.len() {
            match &self.items[i] {
                Item::Section(name) => {
                    let _ = writeln!(out, "\n--- {name} ---");
                    i += 1;
                }
                Item::Line(text) => {
                    let _ = writeln!(out, "{text}");
                    i += 1;
                }
                Item::Kv(..) => {
                    let run_end = self.items[i..]
                        .iter()
                        .position(|it| !matches!(it, Item::Kv(..)))
                        .map(|n| i + n)
                        .unwrap_or(self.items.len());
                    let width = self.items[i..run_end]
                        .iter()
                        .map(|it| match it {
                            Item::Kv(k, _) => k.len(),
                            _ => 0,
                        })
                        .max()
                        .unwrap_or(0);
                    for it in &self.items[i..run_end] {
                        if let Item::Kv(k, v) = it {
                            let _ = writeln!(out, "  {k:<width$}  {v}");
                        }
                    }
                    i = run_end;
                }
            }
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sections_and_aligned_kv() {
        let mut r = Report::new("demo");
        r.section("one");
        r.kv("short", 1);
        r.kv("a-longer-key", 2);
        r.line("done");
        let text = r.render();
        assert!(text.starts_with("=== demo ===\n"));
        assert!(text.contains("\n--- one ---\n"));
        assert!(text.contains("  short         1\n"));
        assert!(text.contains("  a-longer-key  2\n"));
        assert!(text.ends_with("done\n"));
    }
}
