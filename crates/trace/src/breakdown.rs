//! Per-request latency breakdowns reconstructed from the event stream.
//!
//! This is the Figure 7-style decomposition: given the events of a run,
//! pair every span's enter/exit, group spans by their `scope` field (one
//! scope per client request, e.g. `conn-0`), and aggregate each span
//! name into a phase total. The canonical phases for a connection are
//! `lookup`, `plan`, `transfer`, `deploy`, and `invoke`, but any span
//! name groups the same way.

use crate::event::{Event, EventKind, FieldValue, Fields};
use std::collections::BTreeMap;

/// One reconstructed (paired) span.
#[derive(Debug, Clone)]
pub struct ClosedSpan {
    /// Span name.
    pub name: &'static str,
    /// Emitting subsystem.
    pub target: &'static str,
    /// Span correlation id.
    pub span: u64,
    /// Virtual enter time (ns).
    pub enter_ns: u64,
    /// Virtual exit time (ns).
    pub exit_ns: u64,
    /// `scope` field from the enter event, if any.
    pub scope: Option<String>,
    /// All fields of the enter event.
    pub fields: Fields,
}

impl ClosedSpan {
    /// Span duration in virtual nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.exit_ns.saturating_sub(self.enter_ns)
    }

    /// An enter-event field interpreted as u64.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        match self.fields.iter().find(|(k, _)| *k == name)?.1 {
            FieldValue::U64(v) => Some(v),
            FieldValue::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }
}

/// Aggregate for one phase (span name) inside one scope.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Total virtual time spent in this phase.
    pub total_ns: u64,
    /// Number of spans aggregated.
    pub count: u64,
}

/// Latency breakdown for one scope (one request / connection).
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Scope label (`scope` field shared by the grouped spans).
    pub scope: String,
    /// Per-phase totals, keyed by span name (sorted).
    pub phases: BTreeMap<&'static str, PhaseAgg>,
}

impl Breakdown {
    /// Total virtual time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.phases.values().map(|p| p.total_ns).sum()
    }

    /// Total for one phase (0 when absent).
    pub fn phase_ns(&self, name: &str) -> u64 {
        self.phases.get(name).map(|p| p.total_ns).unwrap_or(0)
    }

    /// Renders the breakdown as a JSON object with phase totals in
    /// milliseconds: `{"scope":"conn-0","total_ms":..,"phases":{..}}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"scope\":\"{}\",\"total_ms\":{},\"phases\":{{",
            self.scope,
            ms(self.total_ns())
        );
        for (i, (name, agg)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{name}\":{{\"ms\":{},\"count\":{}}}",
                ms(agg.total_ns),
                agg.count
            );
        }
        out.push_str("}}");
        out
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1_000_000.0
}

/// Pairs enter/exit events into closed spans (emission order preserved).
/// Unmatched enters are dropped.
pub fn closed_spans(events: &[Event]) -> Vec<ClosedSpan> {
    let mut open: BTreeMap<u64, &Event> = BTreeMap::new();
    let mut spans = Vec::new();
    for event in events {
        match event.kind {
            EventKind::Enter => {
                open.insert(event.span, event);
            }
            EventKind::Exit => {
                if let Some(enter) = open.remove(&event.span) {
                    spans.push(ClosedSpan {
                        name: enter.name,
                        target: enter.target,
                        span: enter.span,
                        enter_ns: enter.sim_ns,
                        exit_ns: event.sim_ns,
                        scope: enter.field_str("scope").map(str::to_owned),
                        fields: enter.fields.clone(),
                    });
                }
            }
            EventKind::Instant => {}
        }
    }
    spans
}

/// Groups closed spans by scope and aggregates phases. Spans without a
/// `scope` field are ignored. Breakdowns come back sorted by scope.
pub fn breakdowns(events: &[Event]) -> Vec<Breakdown> {
    let mut by_scope: BTreeMap<String, BTreeMap<&'static str, PhaseAgg>> = BTreeMap::new();
    for span in closed_spans(events) {
        let Some(scope) = span.scope.clone() else {
            continue;
        };
        let agg = by_scope
            .entry(scope)
            .or_default()
            .entry(span.name)
            .or_default();
        agg.total_ns += span.duration_ns();
        agg.count += 1;
    }
    by_scope
        .into_iter()
        .map(|(scope, phases)| Breakdown { scope, phases })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn reconstructs_per_scope_phase_totals() {
        let (t, sink) = Tracer::memory();
        t.span_closed("s", "lookup", 0, 10, vec![("scope", "conn-0".into())]);
        t.span_closed("s", "plan", 10, 25, vec![("scope", "conn-0".into())]);
        t.span_closed("s", "lookup", 100, 140, vec![("scope", "conn-1".into())]);
        t.span_closed("w", "invoke", 200, 230, vec![("scope", "conn-0".into())]);
        t.span_closed("w", "invoke", 230, 260, vec![("scope", "conn-0".into())]);
        // No scope: ignored by the grouping.
        t.span_closed("s", "misc", 0, 5, Vec::new());
        let events = sink.events();
        let all = breakdowns(&events);
        assert_eq!(all.len(), 2);
        let c0 = &all[0];
        assert_eq!(c0.scope, "conn-0");
        assert_eq!(c0.phase_ns("lookup"), 10);
        assert_eq!(c0.phase_ns("plan"), 15);
        assert_eq!(c0.phase_ns("invoke"), 60);
        assert_eq!(c0.phases["invoke"].count, 2);
        assert_eq!(c0.total_ns(), 85);
        assert_eq!(all[1].scope, "conn-1");
        assert_eq!(all[1].phase_ns("lookup"), 40);
    }

    #[test]
    fn json_contains_phase_millis() {
        let (t, sink) = Tracer::memory();
        t.span_closed("s", "plan", 0, 2_000_000, vec![("scope", "conn-0".into())]);
        let events = sink.events();
        let all = breakdowns(&events);
        assert_eq!(
            all[0].to_json(),
            "{\"scope\":\"conn-0\",\"total_ms\":2,\"phases\":{\"plan\":{\"ms\":2,\"count\":1}}}"
        );
    }
}
