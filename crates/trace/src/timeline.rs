//! Heal-timeline reconstruction: detection → quarantine → repair →
//! redeploy phases recovered from the trace event stream.
//!
//! The fault pipeline leaves a deterministic trail of events:
//!
//! - `smock.world/crash` — a host halted (ground truth; fields `node`,
//!   `instances`),
//! - `smock.world/lease_expire` — a dead instance's lease ran out, the
//!   failure is *detected* (fields `instance`, `node`),
//! - `core/quarantine` — a heal pass acknowledged the detection and
//!   marked the node down (fields `node`, `detected`),
//! - `core/heal` — one heal pass's summary counts,
//! - `core/redeploy` — a span from a heal pass's virtual time to the
//!   recovered connection's `ready_at`.
//!
//! [`HealTimeline::reconstruct`] folds a run's events into per-node
//! [`Incident`]s and per-pass [`HealPass`] records, attributing virtual
//! time to each recovery phase. Wall-clock attribution (route repair,
//! re-planning) lives in the registry's `_wall_` histograms and is
//! reported separately — it never appears in the event stream.

use crate::breakdown::closed_spans;
use crate::event::{Event, EventKind};

/// One node failure and its recovery phases, in virtual nanoseconds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Incident {
    /// The crashed node.
    pub node: u64,
    /// When the host halted (the `crash` instant).
    pub crash_ns: Option<u64>,
    /// Instances killed by the crash.
    pub instances: u64,
    /// First lease expiry implicating the node — detection.
    pub detect_ns: Option<u64>,
    /// Heal pass that quarantined the node.
    pub quarantine_ns: Option<u64>,
    /// Redeployed connections usable again (last `redeploy` exit of the
    /// first recovering pass at/after quarantine).
    pub recovered_ns: Option<u64>,
}

impl Incident {
    /// Crash → detection (lease expiry latency).
    pub fn detection_ns(&self) -> Option<u64> {
        Some(self.detect_ns?.saturating_sub(self.crash_ns?))
    }

    /// Detection → quarantine (heal-pass scheduling latency).
    pub fn quarantine_lag_ns(&self) -> Option<u64> {
        Some(self.quarantine_ns?.saturating_sub(self.detect_ns?))
    }

    /// Quarantine → redeployed connections ready.
    pub fn redeploy_ns(&self) -> Option<u64> {
        Some(self.recovered_ns?.saturating_sub(self.quarantine_ns?))
    }

    /// Crash → fully recovered.
    pub fn recovery_ns(&self) -> Option<u64> {
        Some(self.recovered_ns?.saturating_sub(self.crash_ns?))
    }

    /// The phase ladder as `(phase, duration_ns)` pairs; phases whose
    /// boundary events are missing are omitted.
    pub fn phases(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        if let Some(d) = self.detection_ns() {
            out.push(("detection", d));
        }
        if let Some(d) = self.quarantine_lag_ns() {
            out.push(("quarantine", d));
        }
        if let Some(d) = self.redeploy_ns() {
            out.push(("redeploy", d));
        }
        out
    }
}

/// One heal pass's summary, parsed from its `core/heal` instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealPass {
    /// Virtual time of the pass.
    pub at_ns: u64,
    /// Liveness events drained.
    pub liveness: u64,
    /// Monitor changes observed.
    pub changes: u64,
    /// Nodes quarantined.
    pub quarantined: u64,
    /// Connections recovered.
    pub recovered: u64,
    /// Connections abandoned.
    pub abandoned: u64,
    /// Connections with no feasible plan.
    pub infeasible: u64,
    /// `(enter, exit)` of this pass's redeploy spans.
    pub redeploys: Vec<(u64, u64)>,
}

/// A run's reconstructed heal timeline.
#[derive(Debug, Clone, Default)]
pub struct HealTimeline {
    /// Per-node incidents, in crash order.
    pub incidents: Vec<Incident>,
    /// Heal passes, in time order (passes that did nothing are included
    /// only if the healer emitted their instant — it does not for
    /// no-op passes when tracing is disabled).
    pub passes: Vec<HealPass>,
}

impl HealTimeline {
    /// Folds an event stream into its heal timeline.
    pub fn reconstruct(events: &[Event]) -> Self {
        let mut timeline = HealTimeline::default();
        for event in events {
            if event.kind != EventKind::Instant {
                continue;
            }
            match (event.target, event.name) {
                ("smock.world", "crash") => {
                    timeline.incidents.push(Incident {
                        node: event.field_u64("node").unwrap_or(0),
                        crash_ns: Some(event.sim_ns),
                        instances: event.field_u64("instances").unwrap_or(0),
                        ..Incident::default()
                    });
                }
                ("smock.world", "lease_expire") => {
                    let node = event.field_u64("node").unwrap_or(0);
                    if let Some(incident) = timeline.open_incident(node) {
                        incident.detect_ns.get_or_insert(event.sim_ns);
                    }
                }
                ("core", "quarantine") => {
                    let node = event.field_u64("node").unwrap_or(0);
                    let detected = event.field_u64("detected");
                    match timeline.open_incident(node) {
                        Some(incident) => {
                            incident.detect_ns = incident.detect_ns.or(detected);
                            incident.quarantine_ns = Some(event.sim_ns);
                        }
                        None => {
                            // Quarantine without an observed crash (e.g.
                            // the crash predates the captured stream):
                            // synthesize the incident from what we know.
                            timeline.incidents.push(Incident {
                                node,
                                detect_ns: detected,
                                quarantine_ns: Some(event.sim_ns),
                                ..Incident::default()
                            });
                        }
                    }
                }
                ("core", "heal") => {
                    timeline.passes.push(HealPass {
                        at_ns: event.sim_ns,
                        liveness: event.field_u64("liveness").unwrap_or(0),
                        changes: event.field_u64("changes").unwrap_or(0),
                        quarantined: event.field_u64("quarantined").unwrap_or(0),
                        recovered: event.field_u64("recovered").unwrap_or(0),
                        abandoned: event.field_u64("abandoned").unwrap_or(0),
                        infeasible: event.field_u64("infeasible").unwrap_or(0),
                        redeploys: Vec::new(),
                    });
                }
                _ => {}
            }
        }
        // Redeploy spans attach to the pass they were emitted from
        // (their enter time is the pass's virtual time).
        for span in closed_spans(events) {
            if span.target != "core" || span.name != "redeploy" {
                continue;
            }
            if let Some(pass) = timeline
                .passes
                .iter_mut()
                .rev()
                .find(|p| p.at_ns == span.enter_ns)
            {
                pass.redeploys.push((span.enter_ns, span.exit_ns));
            }
        }
        // Recovery: the first pass at/after quarantine that redeployed
        // something marks the incident recovered when its last redeploy
        // is ready.
        for incident in &mut timeline.incidents {
            let Some(q) = incident.quarantine_ns else {
                continue;
            };
            if let Some(pass) = timeline
                .passes
                .iter()
                .find(|p| p.at_ns >= q && p.recovered > 0)
            {
                incident.recovered_ns = pass
                    .redeploys
                    .iter()
                    .map(|&(_, exit)| exit)
                    .max()
                    .or(Some(pass.at_ns));
            }
        }
        timeline
    }

    /// The most recent incident for `node` still awaiting quarantine.
    fn open_incident(&mut self, node: u64) -> Option<&mut Incident> {
        self.incidents
            .iter_mut()
            .rev()
            .find(|i| i.node == node && i.quarantine_ns.is_none())
    }

    /// Sums each phase across incidents: `(phase, total_ns, incidents)`.
    pub fn phase_totals(&self) -> Vec<(&'static str, u64, u64)> {
        let mut totals: [(&'static str, u64, u64); 3] = [
            ("detection", 0, 0),
            ("quarantine", 0, 0),
            ("redeploy", 0, 0),
        ];
        for incident in &self.incidents {
            for (phase, ns) in incident.phases() {
                for slot in &mut totals {
                    if slot.0 == phase {
                        slot.1 += ns;
                        slot.2 += 1;
                    }
                }
            }
        }
        totals.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    /// A crash at 1 s, detected at 3 s, quarantined at 3.5 s, redeployed
    /// and ready at 4.2 s.
    fn run() -> Vec<Event> {
        let (t, sink) = Tracer::memory();
        let s = 1_000_000_000u64;
        t.instant(
            "smock.world",
            "crash",
            s,
            vec![("node", 4u64.into()), ("instances", 2u64.into())],
        );
        t.instant(
            "smock.world",
            "lease_expire",
            3 * s,
            vec![("instance", 7u64.into()), ("node", 4u64.into())],
        );
        t.instant(
            "core",
            "quarantine",
            3 * s + s / 2,
            vec![("node", 4u64.into()), ("detected", (3 * s).into())],
        );
        t.span_closed(
            "core",
            "redeploy",
            3 * s + s / 2,
            4 * s + s / 5,
            vec![("conn", 0u64.into())],
        );
        t.instant(
            "core",
            "heal",
            3 * s + s / 2,
            vec![
                ("liveness", 3u64.into()),
                ("changes", 1u64.into()),
                ("quarantined", 1u64.into()),
                ("recovered", 1u64.into()),
                ("abandoned", 0u64.into()),
                ("infeasible", 0u64.into()),
            ],
        );
        sink.events()
    }

    #[test]
    fn phases_are_attributed() {
        let timeline = HealTimeline::reconstruct(&run());
        assert_eq!(timeline.incidents.len(), 1);
        let i = &timeline.incidents[0];
        assert_eq!(i.node, 4);
        assert_eq!(i.instances, 2);
        assert_eq!(i.detection_ns(), Some(2_000_000_000));
        assert_eq!(i.quarantine_lag_ns(), Some(500_000_000));
        assert_eq!(i.redeploy_ns(), Some(700_000_000));
        assert_eq!(i.recovery_ns(), Some(3_200_000_000));
        assert_eq!(
            i.phases(),
            vec![
                ("detection", 2_000_000_000),
                ("quarantine", 500_000_000),
                ("redeploy", 700_000_000),
            ]
        );
    }

    #[test]
    fn passes_carry_their_redeploys() {
        let timeline = HealTimeline::reconstruct(&run());
        assert_eq!(timeline.passes.len(), 1);
        let p = &timeline.passes[0];
        assert_eq!(p.recovered, 1);
        assert_eq!(p.redeploys, vec![(3_500_000_000, 4_200_000_000)]);
    }

    #[test]
    fn quarantine_without_crash_synthesizes_an_incident() {
        let (t, sink) = Tracer::memory();
        t.instant(
            "core",
            "quarantine",
            10,
            vec![("node", 2u64.into()), ("detected", 5u64.into())],
        );
        let timeline = HealTimeline::reconstruct(&sink.events());
        assert_eq!(timeline.incidents.len(), 1);
        let i = &timeline.incidents[0];
        assert_eq!(i.node, 2);
        assert_eq!(i.crash_ns, None);
        assert_eq!(i.detect_ns, Some(5));
        assert_eq!(i.quarantine_ns, Some(10));
        assert_eq!(i.detection_ns(), None, "no crash time, no detection phase");
    }

    #[test]
    fn phase_totals_aggregate_incidents() {
        let timeline = HealTimeline::reconstruct(&run());
        let totals = timeline.phase_totals();
        assert_eq!(totals[0], ("detection", 2_000_000_000, 1));
        assert_eq!(totals[1], ("quarantine", 500_000_000, 1));
        assert_eq!(totals[2], ("redeploy", 700_000_000, 1));
    }
}
