//! # ps-trace — deterministic, sim-time-aware tracing and metrics
//!
//! Observability for the partitionable-services reproduction. The crate
//! is deliberately zero-dependency (it sits *below* `ps-sim` in the
//! dependency graph) and carries virtual time as raw integer nanoseconds
//! (`sim_ns`), which callers obtain from `SimTime::as_nanos()`.
//!
//! Three pieces:
//!
//! - **Events** ([`Event`], [`Tracer`], [`Sink`]): structured span
//!   enter/exit and instant records stamped with virtual time and a
//!   monotone sequence number. Under a fixed seed, two identical runs
//!   serialize to byte-identical JSONL streams — wall-clock values are
//!   banned from event fields by convention.
//! - **Metrics** ([`Registry`]): named counters, gauges, and log-bucketed
//!   percentile histograms behind one handle. This is where *host*-time
//!   measurements (planning wall-clock, route-table build time) belong,
//!   since the registry is reported separately and makes no determinism
//!   promise.
//! - **Time series** ([`Sampler`]): ring-buffered, zero-suppressed
//!   virtual-time series sampled on a fixed cadence by the simulation
//!   host (link utilization, CPU busy, queue depth, live instances).
//! - **Analysis** ([`breakdown`], [`critical`], [`timeline`],
//!   [`Report`]): reconstruct per-request latency breakdowns (the
//!   paper's Figure 7 decomposition: lookup / plan / transfer / deploy /
//!   invoke), extract span-tree critical paths, audit heal timelines
//!   (detection → quarantine → redeploy), and render human-readable
//!   reports.
//!
//! The default [`Tracer`] is disabled — a `None` handle whose every call
//! is a single branch — so instrumented hot paths cost nothing when
//! observability is off.
//!
//! ```
//! use ps_trace::{breakdown, Tracer};
//!
//! let (tracer, sink) = Tracer::memory();
//! let span = tracer.enter("server", "plan", 0, vec![("scope", "conn-0".into())]);
//! span.exit(2_000_000); // exited at t = 2 ms (virtual)
//! tracer.count("server.plans", 1);
//!
//! let events = sink.events();
//! let all = breakdown::breakdowns(&events);
//! assert_eq!(all[0].phase_ns("plan"), 2_000_000);
//! assert_eq!(tracer.registry().unwrap().counter("server.plans"), 1);
//! ```

#![warn(missing_docs)]

pub mod breakdown;
pub mod critical;
pub mod event;
pub mod registry;
pub mod report;
pub mod sampler;
pub mod sink;
pub mod timeline;
pub mod tracer;
pub mod wallclock;

pub use breakdown::{breakdowns, closed_spans, Breakdown, ClosedSpan, PhaseAgg};
pub use critical::{critical_paths, scope_critical_path, CriticalPath, Segment};
pub use event::{Event, EventKind, FieldValue, Fields};
pub use registry::{Histogram, Metric, Registry};
pub use report::Report;
pub use sampler::{Sampler, SamplerConfig, Series, SeriesSummary};
pub use sink::{JsonlSink, MemorySink, NullSink, Sink};
pub use timeline::{HealPass, HealTimeline, Incident};
pub use tracer::{SpanGuard, Tracer};
pub use wallclock::WallTimer;

/// Glob-import convenience: `use ps_trace::prelude::*;`.
pub mod prelude {
    pub use crate::breakdown::{breakdowns, Breakdown};
    pub use crate::event::{Event, EventKind, FieldValue, Fields};
    pub use crate::registry::Registry;
    pub use crate::report::Report;
    pub use crate::sink::{JsonlSink, MemorySink, NullSink, Sink};
    pub use crate::tracer::{SpanGuard, Tracer};
}
