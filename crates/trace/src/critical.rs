//! Span-tree reconstruction and critical-path extraction.
//!
//! Spans in the event stream carry no explicit parent ids; within one
//! `scope` the tree is recovered structurally — each span's parent is
//! the *tightest* span strictly enclosing it in virtual time. The root
//! (the span enclosing everything else, e.g. `connect` for a
//! connection) is then swept from enter to exit and every nanosecond of
//! its interval is attributed to the deepest span covering it; gaps no
//! child covers are the covering span's own *self time*. The result is
//! a gap-free segmentation of the root interval — the blocking path —
//! from which the dominant phase falls out as the segment total with
//! the largest share.
//!
//! Overlapping siblings (possible when parallel work shares a scope)
//! are resolved earliest-enter-first: a later sibling is credited only
//! with the part of its interval the earlier one did not already cover,
//! which keeps the segmentation a partition.

use crate::breakdown::{closed_spans, ClosedSpan};
use crate::event::Event;
use std::collections::BTreeMap;

/// One segment of a critical path: `[start_ns, end_ns)` attributed to
/// the span named `name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Name of the span this segment is attributed to (the root's own
    /// name for self time).
    pub name: &'static str,
    /// Segment start, virtual ns.
    pub start_ns: u64,
    /// Segment end, virtual ns.
    pub end_ns: u64,
}

impl Segment {
    /// Segment length in virtual ns.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// The critical path of one scope's span tree.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Scope label shared by the grouped spans.
    pub scope: String,
    /// Root span name (e.g. `connect`).
    pub root: &'static str,
    /// Root interval length in virtual ns.
    pub total_ns: u64,
    /// Gap-free segmentation of the root interval, in time order.
    /// Zero-width child spans appear as zero-length segments so
    /// instantaneous phases (e.g. a cached `plan`) remain visible.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// Total nanoseconds attributed to segments named `name`.
    pub fn phase_ns(&self, name: &str) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.name == name)
            .map(Segment::duration_ns)
            .sum()
    }

    /// Per-name totals, sorted by name.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals = BTreeMap::new();
        for seg in &self.segments {
            *totals.entry(seg.name).or_insert(0) += seg.duration_ns();
        }
        totals
    }

    /// The phase carrying the most time on the path, with its total
    /// (ties broken by name order; `None` for an empty path).
    pub fn dominant(&self) -> Option<(&'static str, u64)> {
        self.phase_totals()
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(a.0)))
    }
}

/// Extracts the critical path of every scope in `events`, sorted by
/// scope. Scopes whose spans nest under a single root produce one path;
/// a scope with no spans produces none.
pub fn critical_paths(events: &[Event]) -> Vec<CriticalPath> {
    let spans = closed_spans(events);
    let mut by_scope: BTreeMap<String, Vec<&ClosedSpan>> = BTreeMap::new();
    for span in &spans {
        if let Some(scope) = &span.scope {
            by_scope.entry(scope.clone()).or_default().push(span);
        }
    }
    by_scope
        .into_iter()
        .filter_map(|(scope, spans)| scope_path(scope, spans))
        .collect()
}

/// Critical path for a single scope's spans (see [`critical_paths`]).
pub fn scope_critical_path(scope: &str, events: &[Event]) -> Option<CriticalPath> {
    let spans = closed_spans(events);
    let selected: Vec<&ClosedSpan> = spans
        .iter()
        .filter(|s| s.scope.as_deref() == Some(scope))
        .collect();
    scope_path(scope.to_owned(), selected)
}

fn scope_path(scope: String, mut spans: Vec<&ClosedSpan>) -> Option<CriticalPath> {
    if spans.is_empty() {
        return None;
    }
    // Stable order: by enter time, longer (enclosing) spans first, then
    // emission order — so parents precede children and ties resolve
    // deterministically.
    spans.sort_by(|a, b| {
        a.enter_ns
            .cmp(&b.enter_ns)
            .then(b.exit_ns.cmp(&a.exit_ns))
            .then(a.span.cmp(&b.span))
    });
    // Root: the span that encloses the whole scope interval. With the
    // sort above the first span enters earliest and, among those, exits
    // latest; anything it does not contain is treated as its sibling
    // and ignored for pathing (no single tree exists).
    let root = spans[0];
    // children[i] = indices of spans whose tightest enclosure is span i.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (i, span) in spans.iter().enumerate() {
        let mut parent: Option<usize> = None;
        for (j, cand) in spans.iter().enumerate() {
            if i == j {
                continue;
            }
            let encloses = cand.enter_ns <= span.enter_ns
                && cand.exit_ns >= span.exit_ns
                // A zero-width span cannot parent an identical interval
                // (avoids cycles between coincident instants).
                && (cand.duration_ns() > span.duration_ns()
                    || (cand.duration_ns() == span.duration_ns() && j < i));
            if encloses {
                parent = Some(match parent {
                    Some(p) if spans[p].duration_ns() <= cand.duration_ns() => p,
                    _ => j,
                });
            }
        }
        if let Some(p) = parent {
            children[p].push(i);
        }
    }
    let mut segments = Vec::new();
    attribute(
        &spans,
        &children,
        0,
        root.enter_ns,
        root.exit_ns,
        &mut segments,
    );
    Some(CriticalPath {
        scope,
        root: root.name,
        total_ns: root.duration_ns(),
        segments,
    })
}

/// Attributes `[from, to)` of span `idx`'s interval: child-covered
/// stretches recurse, uncovered gaps become `idx` self time.
fn attribute(
    spans: &[&ClosedSpan],
    children: &[Vec<usize>],
    idx: usize,
    from: u64,
    to: u64,
    out: &mut Vec<Segment>,
) {
    let mut cursor = from;
    for &c in &children[idx] {
        let child = spans[c];
        let start = child.enter_ns.max(cursor).min(to);
        let end = child.exit_ns.min(to);
        if start > cursor {
            out.push(Segment {
                name: spans[idx].name,
                start_ns: cursor,
                end_ns: start,
            });
            cursor = start;
        }
        if end > cursor || child.duration_ns() == 0 {
            attribute(spans, children, c, cursor.max(start), end.max(cursor), out);
            cursor = cursor.max(end);
        }
    }
    if cursor < to {
        out.push(Segment {
            name: spans[idx].name,
            start_ns: cursor,
            end_ns: to,
        });
    } else if from == to && children[idx].is_empty() {
        // Zero-width leaf: keep the phase visible.
        out.push(Segment {
            name: spans[idx].name,
            start_ns: from,
            end_ns: to,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    fn conn_events() -> Vec<Event> {
        // The connect shape the smock server emits: connect encloses
        // lookup, a zero-width plan, transfer, deploy; deploy overlaps
        // the tail of transfer.
        let (t, sink) = Tracer::memory();
        let scope = || ("scope", "conn-0".into());
        t.span_closed("s", "connect", 0, 1000, vec![scope()]);
        t.span_closed("s", "lookup", 0, 100, vec![scope()]);
        t.span_closed("s", "plan", 100, 100, vec![scope()]);
        t.span_closed("s", "transfer", 100, 600, vec![scope()]);
        t.span_closed("s", "deploy", 500, 1000, vec![scope()]);
        sink.events()
    }

    #[test]
    fn segments_partition_the_root_interval() {
        let paths = critical_paths(&conn_events());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.root, "connect");
        assert_eq!(p.total_ns, 1000);
        // Gap-free partition: segments abut and cover [0, 1000).
        let mut cursor = 0;
        for seg in &p.segments {
            assert_eq!(seg.start_ns, cursor);
            cursor = seg.end_ns;
        }
        assert_eq!(cursor, 1000);
        assert_eq!(p.phase_ns("lookup"), 100);
        assert_eq!(p.phase_ns("plan"), 0);
        // Earliest-enter-first: transfer keeps its whole interval,
        // deploy is credited only past transfer's exit.
        assert_eq!(p.phase_ns("transfer"), 500);
        assert_eq!(p.phase_ns("deploy"), 400);
        assert_eq!(p.phase_ns("connect"), 0);
        assert_eq!(p.dominant(), Some(("transfer", 500)));
    }

    #[test]
    fn self_time_fills_uncovered_gaps() {
        let (t, sink) = Tracer::memory();
        t.span_closed("s", "root", 0, 100, vec![("scope", "x".into())]);
        t.span_closed("s", "child", 20, 40, vec![("scope", "x".into())]);
        let paths = critical_paths(&sink.events());
        let p = &paths[0];
        assert_eq!(p.phase_ns("child"), 20);
        assert_eq!(p.phase_ns("root"), 80);
        assert_eq!(p.dominant(), Some(("root", 80)));
    }

    #[test]
    fn nested_grandchildren_attribute_to_the_deepest_span() {
        let (t, sink) = Tracer::memory();
        t.span_closed("s", "root", 0, 100, vec![("scope", "x".into())]);
        t.span_closed("s", "mid", 10, 90, vec![("scope", "x".into())]);
        t.span_closed("s", "leaf", 30, 50, vec![("scope", "x".into())]);
        let p = &critical_paths(&sink.events())[0];
        assert_eq!(p.phase_ns("root"), 20);
        assert_eq!(p.phase_ns("mid"), 60);
        assert_eq!(p.phase_ns("leaf"), 20);
        assert_eq!(p.total_ns, 100);
    }

    #[test]
    fn scopes_produce_independent_paths() {
        let (t, sink) = Tracer::memory();
        t.span_closed("s", "a", 0, 10, vec![("scope", "s1".into())]);
        t.span_closed("s", "b", 0, 20, vec![("scope", "s2".into())]);
        let paths = critical_paths(&sink.events());
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].scope, "s1");
        assert_eq!(paths[1].scope, "s2");
    }
}
