//! The single sanctioned wall-clock entry point.
//!
//! The determinism contract (DESIGN.md "Static analysis") bans direct
//! `std::time::Instant` / `SystemTime` access everywhere in the tree:
//! `ps-lint` rule **D002** and `clippy.toml`'s `disallowed-methods` both
//! fire on any call site outside this module. Code that legitimately
//! needs host time — planner wall-clock accounting, bench harness
//! timing — goes through [`WallTimer`] instead, which makes every
//! wall-clock read a named, greppable, auditable event.
//!
//! Two invariants keep wall time from corrupting the deterministic
//! artifacts:
//!
//! 1. Wall-clock durations may only be *recorded*, never *consumed*: no
//!    virtual-time schedule, planner decision, or trace event field may
//!    depend on a [`WallTimer`] reading. The readings flow into
//!    [`crate::Registry`] histograms and bench report columns only.
//! 2. Registry metrics fed from a [`WallTimer`] must carry a `_wall_`
//!    marker in their name (e.g. `server.planning_wall_ms`), so
//!    [`crate::Registry::to_json_deterministic`] can strip them when a
//!    byte-identical artifact is required. [`is_wall_metric`] is the
//!    shared predicate.

/// A started wall-clock measurement.
///
/// ```
/// use ps_trace::wallclock::WallTimer;
/// let t = WallTimer::start();
/// let _us: u64 = t.elapsed_micros(); // recorded, never scheduled
/// ```
#[derive(Debug)]
pub struct WallTimer {
    started: std::time::Instant,
}

impl WallTimer {
    /// Starts a timer. This is the only place in the workspace allowed
    /// to touch `Instant::now` (see module docs).
    #[allow(clippy::disallowed_methods)]
    pub fn start() -> Self {
        WallTimer {
            // ps-lint: allow(D002, N001): the sanctioned wall-clock boundary;
            // readings are recording-only, flow into _wall_-marked metrics and
            // bench wall columns only, and are stripped from deterministic
            // artifacts (see module docs) — taint stops here by declaration
            started: std::time::Instant::now(),
        }
    }

    /// Microseconds elapsed since [`WallTimer::start`].
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Milliseconds elapsed since [`WallTimer::start`], fractional.
    pub fn elapsed_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1000.0
    }
}

/// Runs `f`, returning its result plus the wall-clock microseconds it
/// took.
pub fn time_micros<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let timer = WallTimer::start();
    let out = f();
    (out, timer.elapsed_micros())
}

/// Whether a registry metric name is wall-clock accounting (carries the
/// `_wall_` marker) and therefore excluded from deterministic artifacts.
pub fn is_wall_metric(name: &str) -> bool {
    name.contains("_wall_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_is_monotone() {
        let t = WallTimer::start();
        let a = t.elapsed_micros();
        let b = t.elapsed_micros();
        assert!(b >= a);
        assert!(t.elapsed_ms() >= 0.0);
    }

    #[test]
    fn time_micros_returns_result() {
        let (v, us) = time_micros(|| 7);
        assert_eq!(v, 7);
        let _ = us; // any value is valid; only the plumbing is under test
    }

    #[test]
    fn wall_metric_convention() {
        assert!(is_wall_metric("server.planning_wall_ms"));
        assert!(is_wall_metric("planner.route_table_build_wall_us"));
        assert!(!is_wall_metric("server.connects"));
        assert!(!is_wall_metric("cpu.0.busy_ms"));
    }
}
