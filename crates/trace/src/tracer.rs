//! The tracer handle threaded through the stack.
//!
//! A [`Tracer`] is a cheaply clonable handle (an `Option<Arc<..>>`)
//! shared by every instrumented layer of one run. The *disabled* tracer
//! — [`Tracer::disabled`], also `Default` — carries no allocation and
//! turns every call into a single branch, which is what keeps the
//! instrumented hot paths within the repo's <5 % overhead budget when
//! observability is off.
//!
//! Span discipline: [`Tracer::enter`] returns a [`SpanGuard`] that must
//! be closed explicitly with [`SpanGuard::exit`] at the exit's virtual
//! time (the discrete-event engine's clock moves between enter and exit,
//! so `Drop` cannot know it). For spans whose duration is computed
//! analytically rather than simulated, [`Tracer::span_closed`] emits the
//! enter/exit pair in one call.

use crate::event::{Event, EventKind, Fields};
use crate::registry::Registry;
use crate::sink::{MemorySink, NullSink, Sink};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct Inner {
    seq: AtomicU64,
    spans: AtomicU64,
    sink: Arc<dyn Sink>,
    registry: Registry,
}

/// A shareable tracing handle (disabled by default).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer: every emission is a single branch.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer writing events to `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                seq: AtomicU64::new(0),
                spans: AtomicU64::new(0),
                sink,
                registry: Registry::new(),
            })),
        }
    }

    /// A tracer recording into a fresh in-memory sink; returns both.
    pub fn memory() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Tracer::new(sink.clone()), sink)
    }

    /// A tracer that keeps only the metrics registry (events discarded).
    pub fn null() -> Self {
        Tracer::new(Arc::new(NullSink))
    }

    /// Whether the tracer records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The metrics registry (None when disabled).
    pub fn registry(&self) -> Option<&Registry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Increments a registry counter.
    pub fn count(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.inc(name, by);
        }
    }

    /// Sets a registry gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.set_gauge(name, value);
        }
    }

    /// Records into a registry histogram.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.registry.observe(name, value);
        }
    }

    fn emit(
        &self,
        kind: EventKind,
        target: &'static str,
        name: &'static str,
        span: u64,
        sim_ns: u64,
        fields: Fields,
    ) {
        if let Some(inner) = &self.inner {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            inner.sink.record(&Event {
                seq,
                sim_ns,
                kind,
                target,
                name,
                span,
                fields,
            });
        }
    }

    /// Emits an instantaneous event.
    pub fn instant(&self, target: &'static str, name: &'static str, sim_ns: u64, fields: Fields) {
        self.emit(EventKind::Instant, target, name, 0, sim_ns, fields);
    }

    /// Emits a span-enter event, returning the span id for a later
    /// [`exit_span`](Self::exit_span) (0 when disabled). Prefer
    /// [`enter`](Self::enter) unless the exit happens in code that cannot
    /// hold a guard (e.g. across discrete-event handlers).
    pub fn enter_span(
        &self,
        target: &'static str,
        name: &'static str,
        sim_ns: u64,
        fields: Fields,
    ) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let span = inner.spans.fetch_add(1, Ordering::Relaxed) + 1;
        self.emit(EventKind::Enter, target, name, span, sim_ns, fields);
        span
    }

    /// Emits the matching span-exit event for an earlier
    /// [`enter_span`](Self::enter_span). Ignored for span id 0.
    pub fn exit_span(
        &self,
        target: &'static str,
        name: &'static str,
        span: u64,
        sim_ns: u64,
        fields: Fields,
    ) {
        if span != 0 {
            self.emit(EventKind::Exit, target, name, span, sim_ns, fields);
        }
    }

    /// Enters a span, returning an explicit guard.
    pub fn enter(
        &self,
        target: &'static str,
        name: &'static str,
        sim_ns: u64,
        fields: Fields,
    ) -> SpanGuard {
        let span = self.enter_span(target, name, sim_ns, fields);
        SpanGuard {
            tracer: self.clone(),
            target,
            name,
            span,
        }
    }

    /// Emits an already-closed span: enter at `enter_ns`, exit at
    /// `exit_ns`, fields attached to the enter event.
    pub fn span_closed(
        &self,
        target: &'static str,
        name: &'static str,
        enter_ns: u64,
        exit_ns: u64,
        fields: Fields,
    ) {
        let span = self.enter_span(target, name, enter_ns, fields);
        self.exit_span(target, name, span, exit_ns, Vec::new());
    }
}

/// An open span that must be closed explicitly with its exit time.
#[must_use = "exit the span with its virtual exit time"]
pub struct SpanGuard {
    tracer: Tracer,
    target: &'static str,
    name: &'static str,
    span: u64,
}

impl SpanGuard {
    /// The span id (0 when the tracer is disabled).
    pub fn id(&self) -> u64 {
        self.span
    }

    /// Exits the span at `sim_ns`.
    pub fn exit(self, sim_ns: u64) {
        self.exit_with(sim_ns, Vec::new());
    }

    /// Exits the span at `sim_ns` with extra fields on the exit event.
    pub fn exit_with(self, sim_ns: u64, fields: Fields) {
        self.tracer
            .exit_span(self.target, self.name, self.span, sim_ns, fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        t.count("x", 1);
        t.observe("y", 1.0);
        let g = t.enter("t", "s", 0, Vec::new());
        assert_eq!(g.id(), 0);
        g.exit(10);
        t.instant("t", "i", 5, Vec::new());
        assert!(t.registry().is_none());
    }

    #[test]
    fn spans_pair_by_id_and_seq_is_monotone() {
        let (t, sink) = Tracer::memory();
        let a = t.enter("t", "outer", 100, vec![("k", 1u64.into())]);
        let b = t.enter("t", "inner", 150, Vec::new());
        b.exit(200);
        a.exit(300);
        t.span_closed("t", "flat", 400, 450, Vec::new());
        let events = sink.events();
        assert_eq!(events.len(), 6);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[0].span, events[3].span);
        assert_eq!(events[1].span, events[2].span);
        assert_ne!(events[0].span, events[1].span);
        assert_eq!(events[4].sim_ns, 400);
        assert_eq!(events[5].sim_ns, 450);
    }

    #[test]
    fn registry_reachable_through_tracer() {
        let t = Tracer::null();
        t.count("c", 4);
        t.gauge("g", 2.0);
        let r = t.registry().unwrap();
        assert_eq!(r.counter("c"), 4);
        assert_eq!(r.gauge("g"), Some(2.0));
    }
}
