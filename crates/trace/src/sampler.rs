//! Virtual-time metric sampling into ring-buffered time series.
//!
//! A [`Sampler`] owns a set of named [`Series`] and a fixed virtual-time
//! cadence. The simulation host (the smock `World`) checks
//! [`Sampler::begin_tick`] as events dispatch and, when a cadence
//! boundary has passed, records one point per series. Storage is bounded
//! two ways so a thousand-node world cannot produce unbounded artifacts:
//!
//! - **Ring retention**: each series keeps at most `retention` points;
//!   older points are evicted (and counted) once the ring is full.
//! - **Zero suppression**: a point whose value is `0.0` is not stored
//!   when the previously stored point was also zero — long idle
//!   stretches collapse to a single leading zero, and the suppressed
//!   count preserves how many points the run actually produced.
//!
//! Cadence boundaries that pass while no event fires (event gaps larger
//! than the cadence) are *collapsed*: the next dispatched event triggers
//! exactly one sample and the due time realigns to the cadence grid, so
//! tick count is bounded by both elapsed virtual time and event count.
//!
//! Everything here is keyed and iterated through `BTreeMap`s, so series
//! snapshots and summaries are deterministic.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Sampler cadence and retention limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Virtual time between samples, in nanoseconds.
    pub cadence_ns: u64,
    /// Maximum stored points per series (ring buffer capacity).
    pub retention: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            // 100 ms of virtual time: fine enough to see a 2 s lease
            // expire, coarse enough that a 300 s chaos run stays small.
            cadence_ns: 100_000_000,
            retention: 4096,
        }
    }
}

/// One ring-buffered, zero-suppressed time series.
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: VecDeque<(u64, f64)>,
    capacity: usize,
    evicted: u64,
    suppressed: u64,
    last_value: Option<f64>,
}

impl Series {
    fn new(capacity: usize) -> Self {
        Series {
            points: VecDeque::new(),
            capacity,
            evicted: 0,
            suppressed: 0,
            last_value: None,
        }
    }

    fn push(&mut self, sim_ns: u64, value: f64) {
        if value == 0.0 && self.last_value == Some(0.0) {
            self.suppressed += 1;
            return;
        }
        self.last_value = Some(value);
        if self.points.len() == self.capacity && self.capacity > 0 {
            self.points.pop_front();
            self.evicted += 1;
        }
        self.points.push_back((sim_ns, value));
    }

    /// Stored points as `(sim_ns, value)` in time order.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points.iter().copied()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points are stored.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Points evicted from the ring after it filled.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Zero points elided by suppression.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Summary statistics over the *stored* points.
    pub fn summary(&self) -> SeriesSummary {
        let mut s = SeriesSummary {
            points: self.points.len() as u64,
            evicted: self.evicted,
            suppressed: self.suppressed,
            ..SeriesSummary::default()
        };
        for (i, &(t, v)) in self.points.iter().enumerate() {
            if i == 0 {
                s.first_ns = t;
                s.min = v;
                s.max = v;
            } else {
                s.min = s.min.min(v);
                s.max = s.max.max(v);
            }
            s.last_ns = t;
            s.last = v;
            s.sum += v;
        }
        s
    }
}

/// Aggregate statistics for one series (over stored points).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SeriesSummary {
    /// Stored point count.
    pub points: u64,
    /// Points evicted by the ring.
    pub evicted: u64,
    /// Zero points elided by suppression.
    pub suppressed: u64,
    /// Timestamp of the first stored point.
    pub first_ns: u64,
    /// Timestamp of the last stored point.
    pub last_ns: u64,
    /// Smallest stored value.
    pub min: f64,
    /// Largest stored value.
    pub max: f64,
    /// Sum of stored values.
    pub sum: f64,
    /// Value of the last stored point.
    pub last: f64,
}

impl SeriesSummary {
    /// Mean of stored values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.sum / self.points as f64
        }
    }
}

/// A virtual-time cadence sampler over named series.
#[derive(Debug, Default)]
pub struct Sampler {
    config: SamplerConfig,
    next_due_ns: u64,
    ticks: u64,
    series: BTreeMap<String, Series>,
}

impl Sampler {
    /// Creates a sampler; the first tick is due at one cadence.
    pub fn new(config: SamplerConfig) -> Self {
        Sampler {
            config,
            next_due_ns: config.cadence_ns,
            ticks: 0,
            series: BTreeMap::new(),
        }
    }

    /// The configured cadence and retention.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Whether a cadence boundary has been reached at `now_ns`.
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_due_ns
    }

    /// If a boundary has passed, consumes it (collapsing any boundaries
    /// skipped during event gaps, realigned to the cadence grid) and
    /// returns `true`: the caller should record one point per series at
    /// `now_ns`. Otherwise returns `false` and records nothing.
    pub fn begin_tick(&mut self, now_ns: u64) -> bool {
        if now_ns < self.next_due_ns {
            return false;
        }
        let cadence = self.config.cadence_ns.max(1);
        let missed = (now_ns - self.next_due_ns) / cadence;
        self.next_due_ns += (missed + 1) * cadence;
        self.ticks += 1;
        true
    }

    /// Number of ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Records one point into series `name` (created on first use).
    pub fn record(&mut self, name: &str, sim_ns: u64, value: f64) {
        let retention = self.config.retention;
        self.series
            .entry(name.to_owned())
            .or_insert_with(|| Series::new(retention))
            .push(sim_ns, value);
    }

    /// The series named `name`, if any points were ever recorded.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Sorted series names.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Sorted `(name, summary)` pairs for every series.
    pub fn summaries(&self) -> Vec<(String, SeriesSummary)> {
        self.series
            .iter()
            .map(|(name, series)| (name.clone(), series.summary()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler(cadence_ns: u64, retention: usize) -> Sampler {
        Sampler::new(SamplerConfig {
            cadence_ns,
            retention,
        })
    }

    #[test]
    fn ticks_fire_on_cadence_boundaries() {
        let mut s = sampler(100, 16);
        assert!(!s.begin_tick(50));
        assert!(s.begin_tick(100));
        assert!(!s.begin_tick(150));
        assert!(s.begin_tick(230));
        assert_eq!(s.ticks(), 2);
    }

    #[test]
    fn skipped_boundaries_collapse_to_one_tick() {
        let mut s = sampler(100, 16);
        // A long event gap passes 9 boundaries; only one tick fires and
        // the grid realigns so the next boundary is in the future.
        assert!(s.begin_tick(950));
        assert!(!s.begin_tick(990));
        assert!(s.begin_tick(1000));
        assert_eq!(s.ticks(), 2);
    }

    #[test]
    fn zero_runs_are_suppressed() {
        let mut s = sampler(100, 16);
        for (t, v) in [(100, 0.0), (200, 0.0), (300, 2.0), (400, 0.0), (500, 0.0)] {
            s.record("x", t, v);
        }
        let series = s.series("x").unwrap();
        let stored: Vec<_> = series.points().collect();
        // Leading zero kept, repeats dropped; zero after activity kept
        // once to mark the edge.
        assert_eq!(stored, vec![(100, 0.0), (300, 2.0), (400, 0.0)]);
        assert_eq!(series.suppressed(), 2);
    }

    #[test]
    fn ring_evicts_oldest_points() {
        let mut s = sampler(1, 3);
        for t in 0..5u64 {
            s.record("x", t, (t + 1) as f64);
        }
        let series = s.series("x").unwrap();
        let stored: Vec<_> = series.points().collect();
        assert_eq!(stored, vec![(2, 3.0), (3, 4.0), (4, 5.0)]);
        assert_eq!(series.evicted(), 2);
    }

    #[test]
    fn summaries_are_sorted_and_aggregated() {
        let mut s = sampler(1, 8);
        s.record("b", 10, 4.0);
        s.record("a", 10, 1.0);
        s.record("a", 20, 3.0);
        let summaries = s.summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].0, "a");
        let a = summaries[0].1;
        assert_eq!(a.points, 2);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.mean(), 2.0);
        assert_eq!(a.last, 3.0);
        assert_eq!(a.first_ns, 10);
        assert_eq!(a.last_ns, 20);
    }
}
