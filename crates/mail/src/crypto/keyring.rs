//! Per-(user, sensitivity-level) key management.
//!
//! The paper's mail service associates an encryption/decryption key pair
//! with each sensitivity level *per user*, generated at account setup.
//! Here keys are symmetric ChaCha20 keys deterministically derived from a
//! service master secret — a simulation-grade KDF (splitmix over an FNV
//! digest), not a production one; what matters for the reproduction is
//! that distinct (user, level) pairs get distinct keys and that every
//! encryption in the data path is real cipher work.

use super::chacha20::{Key, Nonce, KEY_LEN};
use crate::message::Sensitivity;

/// Derives keys for (user, level) pairs from a master secret.
#[derive(Debug, Clone)]
pub struct Keyring {
    master: u64,
}

impl Keyring {
    /// Creates a keyring from a master secret.
    pub fn new(master: u64) -> Self {
        Keyring { master }
    }

    /// The key for `user` at `level`.
    pub fn key(&self, user: &str, level: Sensitivity) -> Key {
        let mut seed = self.master ^ fnv(user) ^ (level.0 as u64).wrapping_mul(0x9E37_79B9);
        let mut bytes = [0u8; KEY_LEN];
        for chunk in bytes.chunks_mut(8) {
            seed = splitmix(seed);
            chunk.copy_from_slice(&seed.to_le_bytes()[..chunk.len()]);
        }
        Key(bytes)
    }

    /// The shared channel key an Encryptor/Decryptor pair uses.
    pub fn channel_key(&self, channel: &str) -> Key {
        self.key(channel, Sensitivity(0))
    }

    /// A per-message nonce derived from a message id.
    pub fn nonce(message_id: u64) -> Nonce {
        let mut n = [0u8; 12];
        n[..8].copy_from_slice(&message_id.to_le_bytes());
        Nonce(n)
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_users_and_levels_get_distinct_keys() {
        let kr = Keyring::new(42);
        let a1 = kr.key("alice", Sensitivity(1));
        let a2 = kr.key("alice", Sensitivity(2));
        let b1 = kr.key("bob", Sensitivity(1));
        assert_ne!(a1, a2);
        assert_ne!(a1, b1);
        assert_ne!(a2, b1);
    }

    #[test]
    fn keys_are_deterministic() {
        let kr = Keyring::new(7);
        assert_eq!(
            kr.key("alice", Sensitivity(3)),
            kr.key("alice", Sensitivity(3))
        );
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            Keyring::new(1).key("alice", Sensitivity(1)),
            Keyring::new(2).key("alice", Sensitivity(1))
        );
    }

    #[test]
    fn nonce_embeds_message_id() {
        assert_ne!(Keyring::nonce(1), Keyring::nonce(2));
    }
}
