//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! The paper's mail service used the Cryptix JCE provider for its
//! per-sensitivity-level encryption. This is the offline stand-in: a
//! real, test-vector-verified stream cipher, so the Encryptor/Decryptor
//! components do genuine transformation work on genuine bytes.

/// Key size in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce size in bytes.
pub const NONCE_LEN: usize = 12;

/// A 256-bit ChaCha20 key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Key(pub [u8; KEY_LEN]);

/// A 96-bit nonce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nonce(pub [u8; NONCE_LEN]);

/// Little-endian word `i` of `bytes`. Built from individual byte reads
/// rather than `try_into().expect(...)`: the block function sits on the
/// connect/heal hot path, where ps-lint P001 requires panic-free code.
#[inline(always)]
fn le_word(bytes: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([
        bytes[4 * i],
        bytes[4 * i + 1],
        bytes[4 * i + 2],
        bytes[4 * i + 3],
    ])
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha20 block function: 64 bytes of keystream for one counter.
pub fn block(key: &Key, counter: u32, nonce: &Nonce) -> [u8; 64] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = le_word(&key.0, i);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = le_word(&nonce.0, i);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts (or, identically, decrypts) `data` in place with the
/// keystream starting at block `initial_counter`.
pub fn apply_keystream(key: &Key, nonce: &Nonce, initial_counter: u32, data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(64).enumerate() {
        let ks = block(key, initial_counter.wrapping_add(block_idx as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Convenience: encrypt a copy of `data`.
pub fn encrypt(key: &Key, nonce: &Nonce, data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    apply_keystream(key, nonce, 1, &mut out);
    out
}

/// Convenience: decrypt a copy of `data` (XOR symmetry).
pub fn decrypt(key: &Key, nonce: &Nonce, data: &[u8]) -> Vec<u8> {
    encrypt(key, nonce, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> Key {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        Key(k)
    }

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 section 2.3.2.
        let key = rfc_key();
        let nonce = Nonce([0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0]);
        let out = block(&key, 1, &nonce);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // RFC 8439 section 2.4.2.
        let key = rfc_key();
        let nonce = Nonce([0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0]);
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let ciphertext = encrypt(&key, &nonce, plaintext);
        let expected_prefix: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&ciphertext[..16], &expected_prefix);
        assert_eq!(ciphertext.len(), plaintext.len());
    }

    #[test]
    fn roundtrip_restores_plaintext() {
        let key = rfc_key();
        let nonce = Nonce([7; 12]);
        let msg: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let ct = encrypt(&key, &nonce, &msg);
        assert_ne!(ct, msg);
        assert_eq!(decrypt(&key, &nonce, &ct), msg);
    }

    #[test]
    fn different_keys_differ() {
        let nonce = Nonce([0; 12]);
        let msg = [0u8; 64];
        let a = encrypt(&rfc_key(), &nonce, &msg);
        let b = encrypt(&Key([9u8; 32]), &nonce, &msg);
        assert_ne!(a, b);
    }

    #[test]
    fn counter_advances_across_blocks() {
        // 130 bytes spans three blocks; decrypting the tail alone with the
        // right starting counter must match.
        let key = rfc_key();
        let nonce = Nonce([3; 12]);
        let msg = [0xAAu8; 130];
        let ct = encrypt(&key, &nonce, &msg);
        let mut tail = ct[128..].to_vec();
        apply_keystream(&key, &nonce, 3, &mut tail); // blocks 1,2 then 3
        assert_eq!(tail, vec![0xAA; 2]);
    }
}
