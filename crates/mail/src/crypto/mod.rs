//! Cryptography for the mail case study: a from-scratch ChaCha20 stream
//! cipher and the per-(user, sensitivity) keyring.

pub mod chacha20;
pub mod keyring;

pub use chacha20::{Key, Nonce};
pub use keyring::Keyring;
