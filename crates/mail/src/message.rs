//! Mail messages and sensitivity levels.

use std::fmt;

/// A message sensitivity level (1 = least sensitive, 5 = most).
///
/// Each level maps to a per-user key (see
/// [`crate::crypto::keyring::Keyring`]); a `ViewMailServer` configured
/// with `TrustLevel = t` may store only messages with sensitivity ≤ `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sensitivity(pub u8);

impl Sensitivity {
    /// Lowest sensitivity.
    pub const MIN: Sensitivity = Sensitivity(1);
    /// Highest sensitivity.
    pub const MAX: Sensitivity = Sensitivity(5);

    /// Clamps into the valid 1..=5 range.
    pub fn clamped(level: u8) -> Self {
        Sensitivity(level.clamp(1, 5))
    }

    /// Whether a node of the given trust level may store this message.
    pub fn storable_at(&self, trust_level: i64) -> bool {
        i64::from(self.0) <= trust_level
    }
}

impl fmt::Display for Sensitivity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// A mail message as it travels and is stored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MailMessage {
    /// Globally unique id (assigned by the sending client).
    pub id: u64,
    /// Sender account name.
    pub from: String,
    /// Recipient account name.
    pub to: String,
    /// Subject line (plaintext metadata).
    pub subject: String,
    /// Body bytes. Encrypted in transit/storage; whether the current
    /// representation is ciphertext is tracked by `encrypted_for`.
    pub body: Vec<u8>,
    /// Sensitivity level governing key choice and cacheability.
    pub sensitivity: Sensitivity,
    /// Whose key currently encrypts `body`: `None` = plaintext,
    /// `Some(user)` = encrypted under `(user, sensitivity)`.
    pub encrypted_for: Option<String>,
}

impl MailMessage {
    /// Creates a plaintext message.
    pub fn new(
        id: u64,
        from: impl Into<String>,
        to: impl Into<String>,
        subject: impl Into<String>,
        body: Vec<u8>,
        sensitivity: Sensitivity,
    ) -> Self {
        MailMessage {
            id,
            from: from.into(),
            to: to.into(),
            subject: subject.into(),
            body,
            sensitivity,
            encrypted_for: None,
        }
    }

    /// Approximate wire size in bytes (headers + body).
    pub fn wire_bytes(&self) -> u64 {
        (self.from.len() + self.to.len() + self.subject.len() + self.body.len() + 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_storable_matches_trust() {
        assert!(Sensitivity(2).storable_at(3));
        assert!(Sensitivity(3).storable_at(3));
        assert!(!Sensitivity(4).storable_at(3));
    }

    #[test]
    fn clamping() {
        assert_eq!(Sensitivity::clamped(0), Sensitivity(1));
        assert_eq!(Sensitivity::clamped(9), Sensitivity(5));
        assert_eq!(Sensitivity::clamped(3), Sensitivity(3));
    }

    #[test]
    fn wire_bytes_include_body_and_headers() {
        let m = MailMessage::new(1, "a", "b", "hi", vec![0; 100], Sensitivity(1));
        assert_eq!(m.wire_bytes(), 1 + 1 + 2 + 100 + 64);
    }
}
